//! The view registry: named, pre-compiled transform views.
//!
//! A *view* is what the paper calls a transformed document `Qt(T)` that
//! is never materialized at rest: a security view (Example 1.1), a
//! policy view over a user group, or a what-if scenario ("the database
//! as it would look after these updates"). Registering a view parses
//! and NFA-compiles its transforms exactly once; every subsequent
//! request — from any thread — reuses the compiled artifacts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering}; // lint: atomic-ok (registration counters)
use std::sync::{Arc, RwLock};
use std::time::Instant;

use xust_analyze::{analyze_path, analyze_view, views_equivalent, ViewAnalysis};
use xust_core::{CompiledTransform, LabelSet, MultiTransformQuery, QueryCost, UpdateOp};
use xust_secview::Policy;
use xust_xpath::Path;

use crate::error::ServeError;

/// How a view transforms its base document.
pub enum ViewBody {
    /// A chain `Qtₖ(…Qt₁(T)…)` applied left to right — each link reads
    /// the previous link's output (what-if scenario stacking).
    Chain(Vec<Arc<CompiledTransform>>),
    /// A multi-update with snapshot semantics — every rule's path reads
    /// the *original* document (access-control policies).
    Multi(Box<MultiTransformQuery>),
}

/// A registered view.
pub struct ViewDef {
    /// Registry name (unique).
    pub name: String,
    /// The `doc("…")` name the view's transforms read.
    pub doc_name: String,
    /// The transformation body.
    pub body: ViewBody,
    /// Concrete syntax the view was registered from (for introspection).
    pub sources: Vec<String>,
    /// Static label footprint of the whole body (union over links/rules)
    /// — the view side of the write-path relevance test.
    pub alphabet: LabelSet,
    /// Registration generation (strictly increasing across the
    /// registry). Cached results are stamped with it so a result
    /// materialized under an old definition can never be served after a
    /// re-registration, even if it lands in the cache after the purge.
    pub generation: u64,
    /// The registration-time static analysis report: dead-view verdict,
    /// NFA liveness, qualifier folds, and the commutation footprint the
    /// write path consults per update shape.
    pub analysis: ViewAnalysis,
    /// Result-cache family key. Normally the view's own name; when
    /// registration proves this view equivalent to an already-registered
    /// one (same document, same rules up to path equivalence), the
    /// representative's key is adopted so both serve one cached body.
    pub cache_key: Arc<str>,
    /// The generation cached results are stamped with — the
    /// representative's when `cache_key` is adopted, else this view's
    /// own [`ViewDef::generation`].
    pub cache_generation: u64,
}

impl std::fmt::Debug for ViewDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewDef")
            .field("name", &self.name)
            .field("doc_name", &self.doc_name)
            .field(
                "links",
                &match &self.body {
                    ViewBody::Chain(c) => c.len(),
                    ViewBody::Multi(m) => m.updates.len(),
                },
            )
            .field("sources", &self.sources)
            .finish()
    }
}

impl ViewDef {
    /// The body as a flat `(path, op)` rule list — the form every
    /// static analysis consumes.
    pub fn rules(&self) -> Vec<(&Path, &UpdateOp)> {
        match &self.body {
            ViewBody::Chain(links) => links
                .iter()
                .map(|l| (&l.query().path, &l.query().op))
                .collect(),
            ViewBody::Multi(mq) => mq.updates.iter().map(|(p, o)| (p, o)).collect(),
        }
    }

    /// The single compiled transform of a one-link chain, if this view
    /// is one — the form the Compose Method accepts.
    pub fn single(&self) -> Option<&Arc<CompiledTransform>> {
        match &self.body {
            ViewBody::Chain(links) if links.len() == 1 => links.first(),
            _ => None,
        }
    }

    /// Aggregate cost hints across the body, for the planner: feature
    /// maxima over the links (the dominant link dominates the plan).
    pub fn cost(&self) -> QueryCost {
        let mut agg = QueryCost {
            steps: 0,
            path_size: 0,
            descendant_steps: 0,
            wildcard_steps: 0,
            qualifier_count: 0,
            max_qualifier_size: 0,
        };
        let mut fold = |c: &QueryCost| {
            agg.steps = agg.steps.max(c.steps);
            agg.path_size = agg.path_size.max(c.path_size);
            agg.descendant_steps = agg.descendant_steps.max(c.descendant_steps);
            agg.wildcard_steps = agg.wildcard_steps.max(c.wildcard_steps);
            agg.qualifier_count = agg.qualifier_count.max(c.qualifier_count);
            agg.max_qualifier_size = agg.max_qualifier_size.max(c.max_qualifier_size);
        };
        match &self.body {
            ViewBody::Chain(links) => {
                for l in links {
                    fold(l.cost());
                }
            }
            ViewBody::Multi(mq) => {
                for (path, _) in &mq.updates {
                    fold(&QueryCost::of_path(path));
                }
            }
        }
        agg
    }
}

/// Thread-safe name → [`ViewDef`] map.
#[derive(Default)]
pub struct ViewRegistry {
    views: RwLock<HashMap<String, Arc<ViewDef>>>,
    /// Transform compilations performed at registration time.
    compiles: AtomicU64,
    /// Registration events so far (source of [`ViewDef::generation`]).
    generations: AtomicU64,
}

impl ViewRegistry {
    /// An empty registry.
    pub fn new() -> ViewRegistry {
        ViewRegistry::default()
    }

    /// Registers (or replaces) a chain view from concrete transform
    /// syntax, one query per element. All links must read the same
    /// document name, which becomes the view's `doc_name`.
    pub fn register_chain(
        &self,
        name: impl Into<String>,
        queries: &[&str],
    ) -> Result<Arc<ViewDef>, ServeError> {
        let name = name.into();
        if queries.is_empty() {
            return Err(ServeError::InvalidView(format!(
                "view '{name}': a chain needs at least one transform"
            )));
        }
        let t0 = Instant::now();
        let mut links = Vec::with_capacity(queries.len());
        let mut doc_name: Option<String> = None;
        let mut folded = 0usize;
        for q in queries {
            let ct = CompiledTransform::parse(q)
                .map_err(|e| ServeError::Parse(format!("view '{name}': {e}")))?;
            self.compiles.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter, read only by STATS
            match &doc_name {
                None => doc_name = Some(ct.query().doc_name.clone()),
                Some(d) if *d != ct.query().doc_name => {
                    return Err(ServeError::InvalidView(format!(
                        "view '{name}': chain links read doc(\"{d}\") and doc(\"{}\")",
                        ct.query().doc_name
                    )));
                }
                Some(_) => {}
            }
            // Constant-fold qualifiers before the automata are built:
            // a simplified path selects the same nodes with smaller
            // NFAs and a tighter alphabet.
            let pa = analyze_path(&ct.query().path);
            let ct = if pa.folded > 0 && pa.satisfiable {
                folded += pa.folded;
                let mut query = ct.query().clone();
                query.path = pa.simplified;
                CompiledTransform::compile(query)
            } else {
                ct
            };
            links.push(Arc::new(ct));
        }
        let mut alphabet = LabelSet::new();
        for link in &links {
            alphabet.union_with(link.alphabet());
        }
        let mut analysis = analyze_view(links.iter().map(|l| (&l.query().path, &l.query().op)));
        analysis.folded_qualifiers += folded;
        analysis.micros = t0.elapsed().as_micros() as u64;
        // Generation is allocated and the definition installed under
        // one write-lock hold: drawn outside it, two racing
        // registrations of the same name could install the lower
        // generation last, breaking the strictly-increasing invariant
        // the result cache's generation guard depends on.
        let mut views = self.views.write().expect("registry lock poisoned");
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1; // relaxed: uniqueness comes from fetch_add; ordering from the write lock
        let doc_name = doc_name.expect("at least one link");
        let rules: Vec<(&Path, &UpdateOp)> = links
            .iter()
            .map(|l| (&l.query().path, &l.query().op))
            .collect();
        let (cache_key, cache_generation) =
            cache_family(&views, &name, &doc_name, &rules, generation);
        let def = Arc::new(ViewDef {
            name: name.clone(),
            doc_name,
            body: ViewBody::Chain(links),
            sources: queries.iter().map(|s| s.to_string()).collect(),
            alphabet,
            generation,
            analysis,
            cache_key,
            cache_generation,
        });
        views.insert(name, Arc::clone(&def));
        Ok(def)
    }

    /// Registers a single-transform view.
    pub fn register(
        &self,
        name: impl Into<String>,
        query: &str,
    ) -> Result<Arc<ViewDef>, ServeError> {
        self.register_chain(name, &[query])
    }

    /// Registers a [`Policy`] as a served view named after its user
    /// group. Single-rule policies become composable chain views;
    /// multi-rule policies keep their snapshot semantics.
    pub fn register_policy(&self, policy: &Policy) -> Result<Arc<ViewDef>, ServeError> {
        let t0 = Instant::now();
        let name = policy.group.clone();
        let sources: Vec<String> = policy
            .rules()
            .iter()
            .map(|r| format!("{}: {}", r.name, r.path))
            .collect();
        let mut alphabet = LabelSet::new();
        let mut folded = 0usize;
        let body = match policy.compile_single() {
            Some(q) => {
                self.compiles.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter, read only by STATS
                let pa = analyze_path(&q.path);
                let q = if pa.folded > 0 && pa.satisfiable {
                    folded += pa.folded;
                    let mut q = q;
                    q.path = pa.simplified;
                    q
                } else {
                    q
                };
                let ct = CompiledTransform::compile(q);
                alphabet.union_with(ct.alphabet());
                ViewBody::Chain(vec![Arc::new(ct)])
            }
            None => {
                let mut mq = policy.compile();
                if mq.updates.is_empty() {
                    return Err(ServeError::InvalidView(format!(
                        "policy '{name}' has no rules"
                    )));
                }
                for (path, _) in &mut mq.updates {
                    let pa = analyze_path(path);
                    if pa.folded > 0 && pa.satisfiable {
                        folded += pa.folded;
                        *path = pa.simplified;
                    }
                }
                for (path, op) in &mq.updates {
                    alphabet.union_with(&xust_core::update_alphabet(path, op));
                }
                ViewBody::Multi(Box::new(mq))
            }
        };
        let rules: Vec<(&Path, &UpdateOp)> = match &body {
            ViewBody::Chain(links) => links
                .iter()
                .map(|l| (&l.query().path, &l.query().op))
                .collect(),
            ViewBody::Multi(mq) => mq.updates.iter().map(|(p, o)| (p, o)).collect(),
        };
        let mut analysis = analyze_view(rules.iter().copied());
        analysis.folded_qualifiers += folded;
        analysis.micros = t0.elapsed().as_micros() as u64;
        // Same lock discipline as `register_chain`: generation and
        // install are atomic together.
        let mut views = self.views.write().expect("registry lock poisoned");
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1; // relaxed: uniqueness comes from fetch_add; ordering from the write lock
        let (cache_key, cache_generation) =
            cache_family(&views, &name, &policy.doc_name, &rules, generation);
        drop(rules);
        let def = Arc::new(ViewDef {
            name: name.clone(),
            doc_name: policy.doc_name.clone(),
            body,
            sources,
            alphabet,
            generation,
            analysis,
            cache_key,
            cache_generation,
        });
        views.insert(name, Arc::clone(&def));
        Ok(def)
    }

    /// Looks a view up.
    pub fn get(&self, name: &str) -> Option<Arc<ViewDef>> {
        self.views
            .read()
            .expect("registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Registered view names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .views
            .read()
            .expect("registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }

    /// Removes a view, returning its definition if it existed.
    pub fn remove(&self, name: &str) -> Option<Arc<ViewDef>> {
        self.views
            .write()
            .expect("registry lock poisoned")
            .remove(name)
    }

    /// Every registered definition (unordered).
    pub fn defs(&self) -> Vec<Arc<ViewDef>> {
        self.views
            .read()
            .expect("registry lock poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// True when some registered view stores its cached results under
    /// `key` — the guard a removal consults before purging a result
    /// family another definition may still serve from.
    pub fn family_in_use(&self, key: &str) -> bool {
        self.views
            .read()
            .expect("registry lock poisoned")
            .values()
            .any(|v| &*v.cache_key == key)
    }

    /// Registration events so far — moves exactly when a definition is
    /// installed, so memoized per-update commutation tables key their
    /// validity on it.
    pub fn watermark(&self) -> u64 {
        self.generations.load(Ordering::Relaxed) // relaxed: staleness check only; a late read just rebuilds a table
    }

    /// Registration-time compilations performed so far.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed) // relaxed: monotone counter, read only by STATS
    }
}

/// Picks the result-cache family for a view being registered: if some
/// already-registered view over the same document is statically
/// equivalent (rule-by-rule identical update effects over provably
/// equal selections), adopt its `(cache_key, cache_generation)` so both
/// definitions serve the same cached bodies. Re-registering a name with
/// an equivalent body adopts its own previous family, keeping warm
/// results valid across the re-registration. Otherwise the view starts
/// its own family keyed by its name and fresh generation.
fn cache_family(
    views: &HashMap<String, Arc<ViewDef>>,
    name: &str,
    doc_name: &str,
    rules: &[(&Path, &UpdateOp)],
    generation: u64,
) -> (Arc<str>, u64) {
    // Deterministic scan order so racing registrations of equivalent
    // views converge on one representative.
    let mut names: Vec<&String> = views.keys().collect();
    names.sort();
    for n in names {
        let v = &views[n];
        if v.doc_name == doc_name && views_equivalent(rules, &v.rules()) {
            return (Arc::clone(&v.cache_key), v.cache_generation);
        }
    }
    (Arc::from(name), generation)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEL: &str = r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;
    const REN: &str =
        r#"transform copy $a := doc("db") modify do rename $a//part as component return $a"#;

    #[test]
    fn chain_registration_compiles_once_per_link() {
        let r = ViewRegistry::new();
        let def = r.register_chain("scenario", &[DEL, REN]).unwrap();
        assert_eq!(r.compiles(), 2);
        assert_eq!(def.doc_name, "db");
        assert!(def.single().is_none());
        assert!(matches!(&def.body, ViewBody::Chain(c) if c.len() == 2));
        assert_eq!(r.names(), vec!["scenario".to_string()]);
        // Re-lookup shares the same Arc (no recompilation path at all).
        let again = r.get("scenario").unwrap();
        assert!(Arc::ptr_eq(&def, &again));
    }

    #[test]
    fn single_view_is_composable() {
        let r = ViewRegistry::new();
        let def = r.register("sec", DEL).unwrap();
        assert!(def.single().is_some());
        assert!(def.cost().has_descendant());
    }

    #[test]
    fn mixed_doc_names_rejected() {
        let r = ViewRegistry::new();
        let other = r#"transform copy $a := doc("other") modify do delete $a//x return $a"#;
        let err = r.register_chain("bad", &[DEL, other]).unwrap_err();
        assert!(err.to_string().contains("doc"));
        assert!(r.get("bad").is_none());
    }

    #[test]
    fn parse_errors_name_the_view() {
        let r = ViewRegistry::new();
        let err = r.register("broken", "garbage").unwrap_err();
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn policies_register_under_their_group() {
        let single = Policy::new("analysts", "db")
            .hide("prices", "//price")
            .unwrap();
        let multi = Policy::new("interns", "db")
            .hide("prices", "//price")
            .unwrap()
            .relabel("parts", "//part", "item")
            .unwrap();
        let r = ViewRegistry::new();
        let s = r.register_policy(&single).unwrap();
        let m = r.register_policy(&multi).unwrap();
        assert!(s.single().is_some());
        assert!(matches!(&m.body, ViewBody::Multi(_)));
        assert_eq!(
            r.names(),
            vec!["analysts".to_string(), "interns".to_string()]
        );
    }

    #[test]
    fn equivalent_views_share_a_cache_family() {
        let r = ViewRegistry::new();
        let a = r.register("a", DEL).unwrap();
        let b = r.register("b", DEL).unwrap();
        assert_eq!(&*b.cache_key, "a");
        assert_eq!(b.cache_generation, a.cache_generation);
        assert_ne!(b.generation, a.generation);
        // A different body starts its own family.
        let c = r.register("c", REN).unwrap();
        assert_eq!(&*c.cache_key, "c");
        assert_eq!(c.cache_generation, c.generation);
        // Re-registering an equivalent body keeps the family warm.
        let a2 = r.register("a", DEL).unwrap();
        assert_eq!(&*a2.cache_key, "a");
        assert_eq!(a2.cache_generation, a.cache_generation);
        assert!(a2.generation > a.generation);
    }

    #[test]
    fn dead_views_are_flagged_and_folding_shrinks_paths() {
        let r = ViewRegistry::new();
        let dead = r
            .register(
                "dead",
                r#"transform copy $a := doc("db") modify do delete $a/part[label() = price] return $a"#,
            )
            .unwrap();
        assert!(dead.analysis.dead);
        assert!(dead.analysis.sel_dead > 0);

        let folded = r
            .register(
                "folded",
                r#"transform copy $a := doc("db") modify do delete $a/part[label() = part] return $a"#,
            )
            .unwrap();
        assert!(!folded.analysis.dead);
        assert!(folded.analysis.folded_qualifiers > 0);
        // The tautology was dropped before compilation: the compiled
        // path carries no qualifier at all.
        let link = folded.single().unwrap();
        assert!(link
            .query()
            .path
            .steps
            .iter()
            .all(|s| s.qualifier.is_none()));

        let live = r.register("live", DEL).unwrap();
        assert!(!live.analysis.dead);
        assert!(live.analysis.footprint.structural.is_none());
    }

    #[test]
    fn rename_views_have_bounded_footprints() {
        let r = ViewRegistry::new();
        let def = r.register("ren", REN).unwrap();
        assert!(def.analysis.footprint.is_bounded());
        assert!(def
            .analysis
            .footprint
            .valued
            .as_ref()
            .is_some_and(|v| v.is_empty()));
    }

    #[test]
    fn remove_works() {
        let r = ViewRegistry::new();
        r.register("v", DEL).unwrap();
        assert!(r.remove("v").is_some());
        assert!(r.remove("v").is_none());
        assert!(r.get("v").is_none());
    }
}
