//! Pipelined, batched serving of the line protocol.
//!
//! The original connection loop was strictly one-request-one-reply:
//! read a line, evaluate, write, flush, read the next line. A client
//! pipelining N requests paid N full round trips of protocol latency
//! and the server evaluated them one at a time even when they could
//! have shared work. [`serve_pipelined`] replaces that loop with a
//! bounded reader/executor pair per connection:
//!
//! * a **reader thread** decodes request lines continuously (with a
//!   hard per-line length cap — an unbounded line replies `ERR` and
//!   resynchronizes at the next newline instead of growing the buffer
//!   until the server dies) and enqueues classified frames, in arrival
//!   order, onto a bounded channel;
//! * the **executor** drains the queue: consecutive read-only requests
//!   (`VIEW`/`QUERY`/`TRANSFORM`) — up to
//!   [`PipelineOptions::max_batch`] of them — ride the work-stealing
//!   [`Server::execute_batch`] entry point as *one* grouped batch, so
//!   co-resident views of one document coalesce into a single shared
//!   multi-view pass and the whole batch pins one store snapshot;
//!   replies are written back strictly in request order through one
//!   buffered writer, flushed once per batch instead of once per
//!   request.
//!
//! ## Pipelining semantics
//!
//! Replies always arrive in request order, whatever batching happened
//! behind the scenes. Write and admin verbs (`UPDATE`, `LOAD`,
//! `REMOVE`, `STREAM`, `STATS`, `METRICS`, …) are **barriers**: the
//! pending read batch executes and replies first, then the barrier
//! verb runs alone. A read pipelined after an `UPDATE` therefore
//! observes the update (read-your-writes per connection), and a read
//! pipelined *before* one is never contaminated by it.
//!
//! `QUIT` stops the reader immediately; lines already in flight behind
//! it are discarded unprocessed, matching the strict sequential loop.
//! A request line that is not valid UTF-8 gets `ERR` and the
//! connection survives (the old `lines()`-based loop killed it).

use std::io::{self, BufRead, BufWriter, Write};
use std::sync::mpsc::{self, SyncSender, TryRecvError};

use xust_sax::SaxParser;
use xust_tree::Document;

use crate::server::{Request, Response, Server};
use crate::ServeError;

/// Tuning knobs for [`serve_pipelined`]. The defaults serve well; they
/// exist so tests can exercise the edges (tiny caps, depth-1 queues).
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Hard cap on one request line, in bytes (default 1 MiB). Longer
    /// lines reply `ERR` and the reader resynchronizes at the next
    /// newline — the connection survives, the server's memory doesn't
    /// grow with the line.
    pub max_line: usize,
    /// Most read-only requests grouped into one executor batch
    /// (default 64).
    pub max_batch: usize,
    /// Bound on decoded-but-unexecuted frames (default 128): back
    /// pressure for a client that writes faster than the server
    /// evaluates.
    pub queue_depth: usize,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            max_line: 1 << 20,
            max_batch: 64,
            queue_depth: 128,
        }
    }
}

/// One decoded request line, classified by the reader thread.
enum Frame {
    /// A well-formed read-only request — batchable.
    Read(Request),
    /// Any other non-empty line (write verbs, admin verbs, malformed
    /// requests) — a barrier, dispatched alone.
    Line(String),
    /// A line that blew [`PipelineOptions::max_line`]; the reader
    /// already resynchronized at the next newline.
    TooLong,
    /// A line that was not valid UTF-8.
    BadUtf8,
    /// `QUIT` — stop serving; the reader has already stopped reading.
    Quit,
    /// The reader hit a transport error and stopped.
    Io(io::Error),
}

/// Drives one client connection of the line protocol with pipelining
/// and batching (see the module docs). Returns when the client sends
/// `QUIT`, closes the stream, or the transport fails.
///
/// The reader side runs on a scoped thread; `reader` must therefore be
/// `Send`. Replies go through an internal [`BufWriter`], flushed once
/// per executed batch and per barrier reply.
pub fn serve_pipelined<R, W>(
    server: &Server,
    reader: R,
    writer: W,
    opts: &PipelineOptions,
) -> io::Result<()>
where
    R: BufRead + Send,
    W: Write,
{
    let max_line = opts.max_line.max(64);
    let max_batch = opts.max_batch.max(1);
    let queue_depth = opts.queue_depth.max(1);
    let mut writer = BufWriter::new(writer);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::sync_channel(queue_depth);
        scope.spawn(move || reader_loop(reader, tx, max_line));
        // The executor runs here on the caller's thread; `rx` drops
        // with it, which unblocks a reader waiting on a full queue.
        let mut carry: Option<Frame> = None;
        loop {
            let frame = match carry.take() {
                Some(f) => f,
                None => match rx.recv() {
                    Ok(f) => f,
                    Err(_) => break, // reader done (EOF), queue drained
                },
            };
            match frame {
                Frame::Quit => break,
                Frame::Read(first) => {
                    // Greedy drain: take every already-decoded read in
                    // arrival order, stopping at a barrier (carried to
                    // the next turn), the batch cap, or an empty queue
                    // — an un-pipelined client degrades to batches of
                    // one with zero added latency.
                    let mut batch = vec![first];
                    while batch.len() < max_batch {
                        match rx.try_recv() {
                            Ok(Frame::Read(req)) => batch.push(req),
                            Ok(other) => {
                                carry = Some(other);
                                break;
                            }
                            Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
                        }
                    }
                    if batch.len() == 1 {
                        write_reply(&mut writer, server.handle(&batch[0]))?;
                    } else {
                        for result in server.execute_batch(batch) {
                            write_reply(&mut writer, result)?;
                        }
                    }
                    writer.flush()?;
                }
                Frame::Line(line) => {
                    dispatch_line(server, &line, &mut writer)?;
                    writer.flush()?;
                }
                Frame::TooLong => {
                    writeln!(writer, "ERR request line exceeds {max_line} bytes")?;
                    writer.flush()?;
                }
                Frame::BadUtf8 => {
                    writeln!(writer, "ERR request line is not valid UTF-8")?;
                    writer.flush()?;
                }
                Frame::Io(e) => return Err(e),
            }
        }
        writer.flush()
    })
}

/// The reader half: decodes capped lines, classifies them, and feeds
/// the executor until EOF, `QUIT`, a transport error, or the executor
/// hanging up (a send failure means the connection is being torn down).
fn reader_loop<R: BufRead>(mut reader: R, tx: SyncSender<Frame>, max_line: usize) {
    loop {
        let frame = match read_line_capped(&mut reader, max_line) {
            Ok(LineOutcome::Eof) => return,
            Ok(LineOutcome::TooLong) => Frame::TooLong,
            Ok(LineOutcome::Line(bytes)) => match String::from_utf8(bytes) {
                Ok(line) => {
                    let line = line.trim();
                    if line.is_empty() {
                        continue;
                    }
                    let mut parts = line.splitn(2, ' ');
                    let verb = parts.next().unwrap_or("");
                    let rest = parts.next().unwrap_or("").trim();
                    if verb == "QUIT" {
                        // Stop *reading*, not just executing: lines the
                        // client already pipelined behind QUIT must
                        // never be processed.
                        let _ = tx.send(Frame::Quit);
                        return;
                    }
                    match classify_read(verb, rest) {
                        Some(req) => Frame::Read(req),
                        None => Frame::Line(line.to_string()),
                    }
                }
                Err(_) => Frame::BadUtf8,
            },
            Err(e) => {
                let _ = tx.send(Frame::Io(e));
                return;
            }
        };
        if tx.send(frame).is_err() {
            return;
        }
    }
}

/// A well-formed read-only request, if this line is one. Malformed
/// reads (wrong arity) fall through to [`dispatch_line`], which owns
/// the usage-error replies.
fn classify_read(verb: &str, rest: &str) -> Option<Request> {
    match verb {
        "VIEW" => rest.split_once(' ').map(|(view, doc)| Request::View {
            view: view.trim().into(),
            doc: doc.trim().into(),
        }),
        "QUERY" => {
            let mut p = rest.splitn(3, ' ');
            match (p.next(), p.next(), p.next()) {
                (Some(view), Some(doc), Some(query)) => Some(Request::Query {
                    view: view.into(),
                    doc: doc.into(),
                    query: query.into(),
                }),
                _ => None,
            }
        }
        "TRANSFORM" => rest.split_once(' ').map(|(doc, query)| Request::Transform {
            doc: doc.trim().into(),
            query: query.into(),
        }),
        _ => None,
    }
}

enum LineOutcome {
    /// One complete line, without its newline.
    Line(Vec<u8>),
    /// The line exceeded the cap; input is resynchronized at the byte
    /// after its newline (or EOF).
    TooLong,
    /// Clean end of stream with no pending bytes.
    Eof,
}

/// Reads one `\n`-terminated line of at most `cap` bytes without ever
/// buffering more than `cap` bytes — the OOM fix for `reader.lines()`.
fn read_line_capped<R: BufRead>(reader: &mut R, cap: usize) -> io::Result<LineOutcome> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                LineOutcome::Eof
            } else {
                // Final unterminated line: serve it like `lines()` did.
                LineOutcome::Line(line)
            });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > cap {
                    reader.consume(pos + 1);
                    return Ok(LineOutcome::TooLong);
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                return Ok(LineOutcome::Line(line));
            }
            None => {
                let n = buf.len();
                if line.len() + n > cap {
                    reader.consume(n);
                    discard_to_newline(reader)?;
                    return Ok(LineOutcome::TooLong);
                }
                line.extend_from_slice(buf);
                reader.consume(n);
            }
        }
    }
}

/// Discards input through the next newline (or EOF) in buffer-sized
/// steps — the resynchronization half of the line cap.
fn discard_to_newline<R: BufRead>(reader: &mut R) -> io::Result<()> {
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            return Ok(());
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                reader.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = buf.len();
                reader.consume(n);
            }
        }
    }
}

/// Frames one request result: `OK <len>\n<body>\n`, or `ERR <msg>\n`
/// with embedded newlines flattened.
fn write_reply<W: Write>(writer: &mut W, result: Result<Response, ServeError>) -> io::Result<()> {
    match result {
        Ok(resp) => {
            writeln!(writer, "OK {}", resp.body.len())?;
            writer.write_all(resp.body.as_bytes())?;
            writer.write_all(b"\n")
        }
        Err(e) => writeln!(writer, "ERR {}", e.to_string().replace('\n', " ")),
    }
}

/// Executes one non-batchable line — write verbs, admin verbs, and
/// malformed reads — and writes its reply. `STREAM` frames its own
/// incremental output.
fn dispatch_line<W: Write>(server: &Server, line: &str, writer: &mut W) -> io::Result<()> {
    let mut parts = line.splitn(2, ' ');
    let verb = parts.next().unwrap_or("");
    let rest = parts.next().unwrap_or("").trim();
    let reply: Result<String, String> = match verb {
        "STATS" => Ok(server.stats().to_string()),
        "METRICS" => Ok(server.metrics()),
        "TRACE" => match rest {
            "" => Ok(server.traces(8)),
            n => n
                .parse::<usize>()
                .map(|n| server.traces(n))
                .map_err(|_| "TRACE [n]".to_string()),
        },
        "EXPLAIN" => match rest.split_once(' ') {
            Some((view, doc)) => server
                .explain(view.trim(), doc.trim())
                .map(|e| e.to_string())
                .map_err(|e| e.to_string()),
            None => Err("EXPLAIN <view> <doc>".into()),
        },
        "ANALYZE" => {
            let view = rest.trim();
            if view.is_empty() {
                Err("ANALYZE <view>".into())
            } else {
                server
                    .analyze(view)
                    .map(|a| a.to_string())
                    .map_err(|e| e.to_string())
            }
        }
        "LIST" => Ok(format!(
            "docs: {}\nviews: {}",
            server.doc_names().join(","),
            server.view_names().join(",")
        )),
        // Well-formed reads never reach here (the reader classified
        // them); these arms own the wrong-arity usage errors.
        "VIEW" => Err("VIEW <view> <doc>".into()),
        "QUERY" => Err("QUERY <view> <doc> <xquery…>".into()),
        "TRANSFORM" => Err("TRANSFORM <doc> <transform…>".into()),
        "UPDATE" => match rest.split_once(' ') {
            Some((doc, update)) => server
                .handle(&Request::Update {
                    doc: doc.trim().into(),
                    update: update.into(),
                })
                .map(|r| r.body)
                .map_err(|e| e.to_string()),
            None => Err("UPDATE <doc> <transform…>".into()),
        },
        "LOAD" => match rest.split_once(' ') {
            // (Re)load from a server-side file. A reload is an
            // unbounded delta: the server purges exactly this
            // document's cached view results (neighbours keep theirs)
            // and retires its old version. With a WAL attached, the
            // record is appended before the install — an append
            // failure replies ERR and installs nothing.
            Some((doc, path)) => {
                let doc = doc.trim();
                let path = path.trim();
                Document::parse_file(path)
                    .map_err(|e| format!("{path}: {e}"))
                    .and_then(|parsed| {
                        server
                            .try_load_doc(doc, parsed)
                            // The stamp's version is exactly the one
                            // this content was installed at; re-reading
                            // the store here would race other writers.
                            .map(|stamp| format!("loaded {doc} version={}", stamp.version))
                            .map_err(|e| e.to_string())
                    })
            }
            None => Err("LOAD <doc> <path>".into()),
        },
        "REMOVE" => {
            let doc = rest.trim();
            if doc.is_empty() {
                Err("REMOVE <doc>".into())
            } else {
                match server.try_remove_doc(doc) {
                    Ok(true) => Ok(format!("removed {doc}")),
                    Ok(false) => Err(format!("unknown document '{doc}'")),
                    Err(e) => Err(e.to_string()),
                }
            }
        }
        "STREAM" => match rest.split_once(' ') {
            Some((doc, query)) => {
                // Incremental framing: output leaves as it is produced,
                // so the reply is written here instead of through the
                // one-shot OK/ERR path below.
                match stream_to_client(server, doc.trim(), query, writer) {
                    Ok(()) => return Ok(()),
                    Err(StreamFailure::Client(e)) => return Err(e),
                    Err(StreamFailure::Request(msg)) => Err(msg),
                }
            }
            None => Err("STREAM <doc> <transform…>".into()),
        },
        other => Err(format!("unknown verb '{other}'")),
    };
    match reply {
        Ok(body) => {
            writeln!(writer, "OK {}", body.len())?;
            writer.write_all(body.as_bytes())?;
            writer.write_all(b"\n")
        }
        Err(msg) => writeln!(writer, "ERR {}", msg.replace('\n', " ")),
    }
}

/// How a `STREAM` request can fail: a request-level problem is reported
/// to the client as `ERR`; a client I/O problem tears the connection
/// down (there is no one left to report to).
enum StreamFailure {
    Request(String),
    Client(io::Error),
}

impl From<io::Error> for StreamFailure {
    fn from(e: io::Error) -> StreamFailure {
        StreamFailure::Client(e)
    }
}

/// Runs one `STREAM <doc> <transform…>` request: streams a file-backed
/// document through a [`crate::StreamingSession`] and ships the
/// transformed output incrementally as `OUT <len>` frames (each
/// followed by exactly `len` raw bytes and a newline), ending with
/// `DONE <total>`. The server never materializes the document; each
/// frame is flushed so the client reads output while the input is
/// still being parsed.
fn stream_to_client(
    server: &Server,
    doc: &str,
    query: &str,
    writer: &mut impl Write,
) -> Result<(), StreamFailure> {
    let path = match server.doc_path(doc) {
        Some(p) => p,
        None => {
            return Err(StreamFailure::Request(format!(
                "STREAM needs a file-backed document; '{doc}' is not one"
            )))
        }
    };
    let fail = |e: &dyn std::fmt::Display| StreamFailure::Request(e.to_string());
    let mut session = server.begin_stream(query).map_err(|e| fail(&e))?;
    let mut parser = SaxParser::from_file(&path).map_err(|e| fail(&e))?;
    while let Some(ev) = parser.next_event().map_err(|e| fail(&e))? {
        session.feed(ev).map_err(|e| fail(&e))?;
    }
    session.begin_replay().map_err(|e| fail(&e))?;

    // Accumulate output into ≥4 KiB frames: incremental enough for the
    // client to overlap reading with our parsing, without paying frame
    // overhead per SAX event.
    const FRAME: usize = 4096;
    let mut total = 0usize;
    let mut pending: Vec<u8> = Vec::with_capacity(2 * FRAME);
    let mut parser = SaxParser::from_file(&path).map_err(|e| fail(&e))?;
    let mut ship = |writer: &mut dyn Write, pending: &mut Vec<u8>| -> Result<(), StreamFailure> {
        if pending.is_empty() {
            return Ok(());
        }
        total += pending.len();
        writeln!(writer, "OUT {}", pending.len())?;
        writer.write_all(pending)?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        pending.clear();
        Ok(())
    };
    while let Some(ev) = parser.next_event().map_err(|e| fail(&e))? {
        pending.extend(session.replay(ev).map_err(|e| fail(&e))?);
        if pending.len() >= FRAME {
            ship(writer, &mut pending)?;
        }
    }
    let (tail, _) = session.finish().map_err(|e| fail(&e))?;
    pending.extend(tail);
    ship(writer, &mut pending)?;
    writeln!(writer, "DONE {total}")?;
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn test_server() -> Server {
        let server = Server::builder().threads(2).build();
        server
            .load_doc_str("db", "<db><part><price>9</price><n>kb</n></part></db>")
            .unwrap();
        server
            .register_view(
                "public",
                r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            )
            .unwrap();
        server
    }

    fn run(server: &Server, input: &str, opts: &PipelineOptions) -> String {
        let mut out = Vec::new();
        serve_pipelined(server, Cursor::new(input.to_string()), &mut out, opts).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn pipelined_reads_reply_in_request_order() {
        let server = test_server();
        // Everything is written before any reply is read (Cursor input
        // — the whole pipeline is in flight at once).
        let mut input = String::new();
        for _ in 0..16 {
            input.push_str("VIEW public db\n");
            input.push_str(
                "QUERY public db <out>{ for $x in doc(\"db\")/db/part return $x }</out>\n",
            );
        }
        input.push_str("QUIT\n");
        let text = run(&server, &input, &PipelineOptions::default());
        let view_body = "<db><part><n>kb</n></part></db>";
        let query_body = "<out><part><n>kb</n></part></out>";
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 16 * 4, "two framed replies per round");
        for i in 0..16 {
            assert_eq!(lines[4 * i], format!("OK {}", view_body.len()));
            assert_eq!(lines[4 * i + 1], view_body);
            assert_eq!(lines[4 * i + 2], format!("OK {}", query_body.len()));
            assert_eq!(lines[4 * i + 3], query_body);
        }
    }

    #[test]
    fn oversized_line_replies_err_and_resyncs() {
        let server = test_server();
        let opts = PipelineOptions {
            max_line: 64,
            ..PipelineOptions::default()
        };
        let long = "TRANSFORM db ".to_string() + &"x".repeat(500);
        let input = format!("{long}\nVIEW public db\nQUIT\n");
        let text = run(&server, &input, &opts);
        assert!(
            text.contains("ERR request line exceeds 64 bytes"),
            "missing cap error: {text}"
        );
        // The connection survived and the next request served normally.
        assert!(text.contains("<db><part><n>kb</n></part></db>"));
    }

    #[test]
    fn invalid_utf8_replies_err_and_continues() {
        let server = test_server();
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(b"VIEW public \xFF\xFE\n");
        input.extend_from_slice(b"VIEW public db\nQUIT\n");
        let mut out = Vec::new();
        serve_pipelined(
            &server,
            Cursor::new(input),
            &mut out,
            &PipelineOptions::default(),
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("ERR request line is not valid UTF-8"));
        assert!(text.contains("<db><part><n>kb</n></part></db>"));
    }

    #[test]
    fn updates_are_barriers_with_read_your_writes() {
        let server = test_server();
        let input = concat!(
            "VIEW public db\n",
            "UPDATE db transform copy $a := doc(\"db\") modify do insert <spare/> into $a//n return $a\n",
            "VIEW public db\n",
            "QUIT\n",
        );
        let text = run(&server, input, &PipelineOptions::default());
        let lines: Vec<&str> = text.lines().collect();
        // Pre-update read, update report, post-update read — in order.
        assert_eq!(lines[1], "<db><part><n>kb</n></part></db>");
        assert!(lines[3].starts_with("updated db"), "got {}", lines[3]);
        assert_eq!(lines[5], "<db><part><n>kb<spare/></n></part></db>");
    }

    #[test]
    fn quit_discards_pipelined_followers() {
        let server = test_server();
        let text = run(
            &server,
            "VIEW public db\nQUIT\nVIEW public db\n",
            &PipelineOptions::default(),
        );
        let body = "<db><part><n>kb</n></part></db>";
        assert_eq!(text.matches(body).count(), 1, "one reply only: {text}");
    }

    #[test]
    fn tiny_queue_and_batch_caps_still_serve_everything() {
        let server = test_server();
        let opts = PipelineOptions {
            max_line: 1 << 20,
            max_batch: 2,
            queue_depth: 1,
        };
        let mut input = String::new();
        for _ in 0..9 {
            input.push_str("VIEW public db\n");
        }
        input.push_str("QUIT\n");
        let text = run(&server, &input, &opts);
        let body = "<db><part><n>kb</n></part></db>";
        assert_eq!(text.matches(body).count(), 9);
    }

    #[test]
    fn capped_reader_handles_boundary_lines() {
        // Exactly-at-cap lines pass; one byte over fails; the final
        // unterminated line is served like `lines()` served it.
        let mut cur = Cursor::new(b"abcd\nabcde\nab".to_vec());
        match read_line_capped(&mut cur, 4).unwrap() {
            LineOutcome::Line(l) => assert_eq!(l, b"abcd"),
            _ => panic!("at-cap line must pass"),
        }
        assert!(matches!(
            read_line_capped(&mut cur, 4).unwrap(),
            LineOutcome::TooLong
        ));
        match read_line_capped(&mut cur, 4).unwrap() {
            LineOutcome::Line(l) => assert_eq!(l, b"ab"),
            _ => panic!("unterminated tail must be served"),
        }
        assert!(matches!(
            read_line_capped(&mut cur, 4).unwrap(),
            LineOutcome::Eof
        ));
    }
}
