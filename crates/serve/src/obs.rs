//! Request observability: lock-free latency histograms, per-request
//! phase traces, and the ring/slow-log buffers behind the `METRICS` and
//! `TRACE` protocol verbs.
//!
//! The EWMA cells in [`stats`](crate::stats) answer "what is the
//! smoothed mean" — useful for the planner, useless for tail latency.
//! This module keeps the *distribution*: every recorded duration lands
//! in a fixed array of power-of-√2 buckets via one relaxed
//! `fetch_add`, so p50/p90/p99/max are available per verb, per view,
//! and per evaluation method at any time, with no locks on the record
//! path and no allocation after startup (view histograms are created
//! once per view name, like the stats cells).
//!
//! ## Bucketing
//!
//! [`LatencyHistogram`] has 64 buckets; bucket `i` covers
//! `[2^(i/2), 2^((i+1)/2))` microseconds, so consecutive bucket bounds
//! differ by a factor of √2 (≈ ±41% relative error per bucket). Bucket
//! 0 also absorbs sub-microsecond samples and the last bucket absorbs
//! everything from ~50 minutes up, which comfortably brackets the
//! 1µs–60s range a request can plausibly take. Quantiles walk the
//! cumulative counts and report the bucket's upper bound, clamped to
//! the exact observed maximum.
//!
//! ## Traces
//!
//! A [`Trace`] is threaded through one request's dispatch; when tracing
//! is disabled it is a `None` and every recording call is a branch on a
//! dead option — the overhead budget for the enabled path is ≤ 3% of
//! `bench_smoke serve_mixed` (gated in CI via the `obs_overhead` row).
//! Completed traces become immutable [`RequestTrace`]s pushed into a
//! bounded ring of recent requests (atomic head reservation + per-slot
//! pointer swap; pushers never contend on a shared lock, only on their
//! own slot) and offered to a slowest-N log whose admission fast path
//! is a single relaxed load of the current threshold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use std::collections::HashMap;

use xust_core::Method;

use crate::stats::Verb;

/// Number of histogram buckets (fixed; see the module docs).
pub const HIST_BUCKETS: usize = 64;

/// Upper bound on distinct phases per trace (≥ the number of [`Phase`]
/// variants): phase timings are merged into a fixed inline array at
/// record time, so a trace never allocates for its breakdown.
const MAX_PHASES: usize = 8;

const N_METHODS: usize = Method::ALL.len();
const N_VERBS: usize = Verb::ALL.len();

fn method_index(m: Method) -> usize {
    Method::ALL
        .iter()
        .position(|&x| x == m)
        .expect("Method::ALL is exhaustive")
}

/// A lock-free log-bucketed latency histogram (microsecond samples).
///
/// Recording is four relaxed atomic ops (bucket, count, sum, max);
/// concurrent recorders never lose a sample — the conservation law
/// `count == Σ buckets` and `sum == Σ samples` holds under any
/// interleaving and is asserted by the concurrency tests.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// A point-in-time digest of one [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (µs).
    pub sum: u64,
    /// Largest sample (µs).
    pub max: u64,
    /// Median estimate (µs).
    pub p50: u64,
    /// 90th percentile estimate (µs).
    pub p90: u64,
    /// 99th percentile estimate (µs).
    pub p99: u64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The bucket index for a sample of `micros`: `⌊2·log₂(v)⌋`,
    /// computed in integer arithmetic (`v ≥ 2^(k+½)` iff
    /// `v² ≥ 2^(2k+1)`), clamped into the fixed bucket range.
    pub fn bucket_index(micros: u64) -> usize {
        let v = micros.max(1);
        let log2 = 63 - v.leading_zeros() as usize;
        let upper_half = (v as u128) * (v as u128) >= (1u128 << (2 * log2 + 1));
        (2 * log2 + usize::from(upper_half)).min(HIST_BUCKETS - 1)
    }

    /// The exclusive upper bound of bucket `i` in microseconds:
    /// `⌈2^((i+1)/2)⌉`.
    pub fn bucket_upper(i: usize) -> u64 {
        debug_assert!(i < HIST_BUCKETS);
        2f64.powf((i as f64 + 1.0) / 2.0).ceil() as u64
    }

    /// Records one sample. Lock-free; relaxed ordering throughout (the
    /// histogram is observability data, not synchronization).
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket_index(micros)].fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
        self.sum.fetch_add(micros, Ordering::Relaxed); // relaxed: monotone counter; no data published
        self.max.fetch_max(micros, Ordering::Relaxed); // relaxed: monotone max; no data published
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Sum of all samples (µs).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Largest sample (µs); 0 when empty.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as the upper bound of the bucket
    /// holding the rank-`⌈q·count⌉` sample, clamped to the observed
    /// maximum; 0 when empty. Error is bounded by one bucket (√2).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: [u64; HIST_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)); // relaxed: point-in-time read; staleness is fine
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).min(self.max().max(1));
            }
        }
        self.max()
    }

    /// A consistent-enough digest for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

/// One phase of a request's service time (see [`Trace::phase`] call
/// sites in `server.rs` for exactly what each covers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Request/query text parsing (incl. file→DOM parses).
    Parse,
    /// Planner method choice.
    Plan,
    /// Prepared-query / view-result cache lookups.
    Cache,
    /// Document store snapshot/version acquisition.
    Snapshot,
    /// Query/transform evaluation.
    Eval,
    /// Delta-aware view-result maintenance (write path).
    Maintain,
    /// In-place fragment patching of cached results (write path).
    Patch,
    /// Result serialization + cache install.
    Serialize,
}

impl Phase {
    /// Lower-case phase name, as rendered in `TRACE` output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Plan => "plan",
            Phase::Cache => "cache",
            Phase::Snapshot => "snapshot",
            Phase::Eval => "eval",
            Phase::Maintain => "maintain",
            Phase::Patch => "patch",
            Phase::Serialize => "serialize",
        }
    }
}

/// A completed, immutable request trace (what `TRACE` renders).
#[derive(Debug, Clone)]
pub struct RequestTrace {
    /// Monotonic sequence number of the traced request.
    pub seq: u64,
    /// The request's verb.
    pub verb: Verb,
    /// What the request addressed (`view/doc` or `doc`).
    pub target: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Total service time (µs).
    pub micros: u64,
    /// Per-phase timings, merged by phase at record time into a fixed
    /// inline array (first-seen order); see [`RequestTrace::phases`].
    phases: [(Phase, u64); MAX_PHASES],
    nphases: u8,
    /// The evaluation method that produced the response, if one ran.
    pub method: Option<Method>,
    /// Prepared-cache outcome, when the request consulted it.
    pub prepared_hit: Option<bool>,
    /// View-result-cache outcome, when the request consulted it.
    pub result_hit: Option<bool>,
    /// Planner decision inputs, one entry per planned link.
    pub plan: Vec<String>,
}

impl RequestTrace {
    /// Per-phase timings (µs), merged by phase, in first-seen order.
    /// Phases cover the instrumented sections only, so their sum is a
    /// lower bound on `micros` (dispatch glue is uninstrumented).
    pub fn phases(&self) -> &[(Phase, u64)] {
        &self.phases[..self.nphases as usize]
    }

    /// One-line rendering with the phase breakdown, as shipped by the
    /// `TRACE` verb.
    pub fn render(&self) -> String {
        let mut s = format!(
            "#{} {} {} {} total={}µs",
            self.seq,
            if self.ok { "ok" } else { "err" },
            self.verb.name(),
            self.target,
            self.micros
        );
        if let Some(m) = self.method {
            s.push_str(&format!(" method={m}"));
        }
        if let Some(hit) = self.prepared_hit {
            s.push_str(if hit {
                " prepared=hit"
            } else {
                " prepared=miss"
            });
        }
        if let Some(hit) = self.result_hit {
            s.push_str(if hit { " result=hit" } else { " result=miss" });
        }
        s.push_str(" phases[");
        for (i, (p, us)) in self.phases().iter().enumerate() {
            if i > 0 {
                s.push(' ');
            }
            s.push_str(&format!("{}={us}µs", p.name()));
        }
        s.push(']');
        if !self.plan.is_empty() {
            s.push_str(&format!(" plan[{}]", self.plan.join("; ")));
        }
        s
    }
}

#[derive(Debug)]
struct TraceBuf {
    verb: Verb,
    target: String,
    phases: [(Phase, u64); MAX_PHASES],
    nphases: u8,
    method: Option<Method>,
    prepared_hit: Option<bool>,
    result_hit: Option<bool>,
    plan: Vec<String>,
}

impl TraceBuf {
    /// Attributes `us` to `phase`, merging into an existing entry or
    /// claiming the next inline slot. No allocation.
    fn push_phase(&mut self, phase: Phase, us: u64) {
        let n = self.nphases as usize;
        match self.phases[..n].iter_mut().find(|(p, _)| *p == phase) {
            Some((_, total)) => *total += us,
            None => {
                self.phases[n] = (phase, us);
                self.nphases = n as u8 + 1;
            }
        }
    }
}

/// A per-request trace builder, cheap when tracing is off.
///
/// Handlers call the recording methods unconditionally; with tracing
/// disabled the inner buffer is `None` and every call is a branch on a
/// dead option — no timestamps, no allocation.
#[derive(Debug)]
pub struct Trace {
    buf: Option<Box<TraceBuf>>,
}

impl Trace {
    /// A disabled trace (records nothing).
    pub fn off() -> Trace {
        Trace { buf: None }
    }

    /// True when this trace is recording.
    pub fn is_on(&self) -> bool {
        self.buf.is_some()
    }

    /// Starts timing a phase: `Some(now)` when recording, else `None`.
    /// Pair with [`Trace::phase`].
    pub fn start(&self) -> Option<Instant> {
        self.buf.as_ref().map(|_| Instant::now())
    }

    /// Ends a phase started by [`Trace::start`], attributing the
    /// elapsed time to `phase`.
    pub fn phase(&mut self, phase: Phase, started: Option<Instant>) {
        if let (Some(buf), Some(t)) = (self.buf.as_deref_mut(), started) {
            buf.push_phase(phase, t.elapsed().as_micros() as u64);
        }
    }

    /// Attributes an externally measured duration to `phase` (for
    /// sections that already time themselves for planner feedback).
    pub fn phase_micros(&mut self, phase: Phase, micros: u64) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.push_phase(phase, micros);
        }
    }

    /// Notes the evaluation method that produced the response.
    pub fn set_method(&mut self, method: Method) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.method = Some(method);
        }
    }

    /// Notes a prepared-cache outcome.
    pub fn note_prepared(&mut self, hit: bool) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.prepared_hit = Some(hit);
        }
    }

    /// Notes a view-result-cache outcome.
    pub fn note_result(&mut self, hit: bool) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.result_hit = Some(hit);
        }
    }

    /// Appends one planner-decision note; `f` runs (and allocates) only
    /// when the trace is recording.
    pub fn note_plan(&mut self, f: impl FnOnce() -> String) {
        if let Some(buf) = self.buf.as_deref_mut() {
            buf.plan.push(f());
        }
    }
}

/// Bounded ring of the most recent completed traces. Pushing reserves
/// a slot with one atomic `fetch_add` on the head counter, then swaps
/// the trace pointer into that slot; two pushers contend only if they
/// wrap onto the same slot (ring-capacity pushes apart).
struct TraceRing {
    slots: Box<[Mutex<Option<Arc<RequestTrace>>>]>,
    head: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> TraceRing {
        TraceRing {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            head: AtomicU64::new(0),
        }
    }

    fn push(&self, trace: Arc<RequestTrace>) {
        let i = self.head.fetch_add(1, Ordering::Relaxed) as usize % self.slots.len(); // relaxed: monotone counter; no data published
        *self.slots[i].lock().expect("trace ring slot poisoned") = Some(trace);
    }

    fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Up to `n` most recent traces, newest first. Best-effort under
    /// concurrent pushes (a slot may hold a newer trace than the head
    /// we read — fine for an operator view).
    fn recent(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        let head = self.pushed();
        let len = self.slots.len() as u64;
        let mut out = Vec::with_capacity(n.min(self.slots.len()));
        let floor = head.saturating_sub(len);
        let mut at = head;
        while at > floor && out.len() < n {
            at -= 1;
            let slot = self.slots[(at % len) as usize]
                .lock()
                .expect("trace ring slot poisoned");
            if let Some(t) = slot.as_ref() {
                out.push(Arc::clone(t));
            }
        }
        out
    }
}

/// The slowest-N log: a small sorted vector behind a mutex, with a
/// lock-free admission check — a request faster than the current
/// N-th-slowest threshold never takes the lock.
struct SlowLog {
    capacity: usize,
    /// Admission floor (µs): 0 until the log fills, then the smallest
    /// resident total. Monotonically non-decreasing.
    floor: AtomicU64,
    entries: Mutex<Vec<Arc<RequestTrace>>>,
}

impl SlowLog {
    fn new(capacity: usize) -> SlowLog {
        SlowLog {
            capacity: capacity.max(1),
            floor: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    fn offer(&self, trace: &Arc<RequestTrace>) {
        // relaxed: point-in-time read; staleness is fine
        if trace.micros < self.floor.load(Ordering::Relaxed) {
            return; // fast path: provably not among the slowest N
        }
        let mut entries = self.entries.lock().expect("slow log poisoned");
        let pos = entries.partition_point(|e| e.micros >= trace.micros);
        entries.insert(pos, Arc::clone(trace));
        if entries.len() > self.capacity {
            entries.pop();
        }
        if entries.len() == self.capacity {
            let floor = entries.last().expect("non-empty at capacity").micros;
            self.floor.store(floor, Ordering::Relaxed); // relaxed: advisory value; racy readers re-check or tolerate staleness
        }
    }

    fn slowest(&self) -> Vec<Arc<RequestTrace>> {
        self.entries.lock().expect("slow log poisoned").clone()
    }
}

/// Capacity of the recent-trace ring.
const RING_CAPACITY: usize = 128;
/// Capacity of the slowest-N log.
const SLOW_CAPACITY: usize = 16;

/// The server's observability state: histograms keyed by verb, view,
/// and method, plus the trace ring and slow log. One per server,
/// shared by all request threads.
pub struct Obs {
    /// Runtime-togglable so one server can be compared against itself
    /// with instrumentation on and off (`bench_smoke`'s `obs_overhead`
    /// row) — two separate processes would differ in heap layout by
    /// more than the instrumentation costs.
    enabled: AtomicBool,
    seq: AtomicU64,
    verb_hist: [LatencyHistogram; N_VERBS],
    method_hist: [LatencyHistogram; N_METHODS],
    /// Per-view histograms; read-mostly, same discipline as the stats
    /// cells (a view's histogram is created once, then only its atomics
    /// move).
    view_hist: RwLock<HashMap<String, Arc<LatencyHistogram>>>,
    ring: TraceRing,
    slow: SlowLog,
}

impl Obs {
    /// Creates the observability state; `enabled == false` turns every
    /// recording path into a no-op (the `--no-trace` mode benched by
    /// `obs_overhead`).
    pub fn new(enabled: bool) -> Obs {
        Obs {
            enabled: AtomicBool::new(enabled),
            seq: AtomicU64::new(0),
            verb_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            method_hist: std::array::from_fn(|_| LatencyHistogram::new()),
            view_hist: RwLock::new(HashMap::new()),
            ring: TraceRing::new(RING_CAPACITY),
            slow: SlowLog::new(SLOW_CAPACITY),
        }
    }

    /// True when recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed) // relaxed: point-in-time read; staleness is fine
    }

    /// Switches tracing on or off at runtime. Already-recorded traces
    /// and histograms are kept either way; only future requests are
    /// affected.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed); // relaxed: advisory value; racy readers re-check or tolerate staleness
    }

    /// Begins a trace for one request; `target` is rendered lazily (it
    /// never allocates when tracing is off).
    pub fn begin(&self, verb: Verb, target: impl FnOnce() -> String) -> Trace {
        if !self.is_enabled() {
            return Trace::off();
        }
        Trace {
            buf: Some(Box::new(TraceBuf {
                verb,
                target: target(),
                phases: [(Phase::Parse, 0); MAX_PHASES],
                nphases: 0,
                method: None,
                prepared_hit: None,
                result_hit: None,
                plan: Vec::new(),
            })),
        }
    }

    /// Completes a trace: records the verb (and, when given, view)
    /// latency histograms and publishes the trace to the ring and slow
    /// log. No-op for disabled traces.
    pub fn finish(&self, trace: Trace, micros: u64, ok: bool, view: Option<&str>) {
        let Some(buf) = trace.buf else { return };
        self.verb_hist[buf.verb.index()].record(micros);
        if let Some(view) = view {
            self.view_histogram(view).record(micros);
        }
        let trace = Arc::new(RequestTrace {
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1, // relaxed: monotone counter; no data published
            verb: buf.verb,
            target: buf.target,
            ok,
            micros,
            phases: buf.phases,
            nphases: buf.nphases,
            method: buf.method,
            prepared_hit: buf.prepared_hit,
            result_hit: buf.result_hit,
            plan: buf.plan,
        });
        self.slow.offer(&trace);
        self.ring.push(trace);
    }

    /// Records one evaluation's duration against its method — called at
    /// the evaluation sites (same place planner feedback is recorded),
    /// so method histograms measure *evaluation* time, not whole
    /// requests.
    pub fn record_method(&self, method: Method, micros: u64) {
        if self.is_enabled() {
            self.method_hist[method_index(method)].record(micros);
        }
    }

    /// The latency histogram for `verb`.
    pub fn verb_histogram(&self, verb: Verb) -> &LatencyHistogram {
        &self.verb_hist[verb.index()]
    }

    /// The evaluation-latency histogram for `method`.
    pub fn method_histogram(&self, method: Method) -> &LatencyHistogram {
        &self.method_hist[method_index(method)]
    }

    /// The latency histogram for `view`, created on first use.
    pub fn view_histogram(&self, view: &str) -> Arc<LatencyHistogram> {
        if let Some(h) = self.view_hist.read().expect("obs lock poisoned").get(view) {
            return Arc::clone(h);
        }
        let mut map = self.view_hist.write().expect("obs lock poisoned");
        Arc::clone(map.entry(view.to_string()).or_default())
    }

    /// Digests of every non-empty per-view histogram, sorted by view.
    pub fn view_histograms(&self) -> Vec<(String, HistogramSnapshot)> {
        let map = self.view_hist.read().expect("obs lock poisoned");
        let mut out: Vec<(String, HistogramSnapshot)> = map
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .filter(|(_, s)| s.count > 0)
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Total requests traced (pushed into the ring) so far.
    pub fn requests_traced(&self) -> u64 {
        self.ring.pushed()
    }

    /// The `n` most recent completed traces, newest first.
    pub fn recent_traces(&self, n: usize) -> Vec<Arc<RequestTrace>> {
        self.ring.recent(n)
    }

    /// The slowest traces seen so far, slowest first.
    pub fn slowest_traces(&self) -> Vec<Arc<RequestTrace>> {
        self.slow.slowest()
    }

    /// Renders the `TRACE [n]` reply: the last `n` traces plus the slow
    /// log, one line each.
    pub fn render_traces(&self, n: usize) -> String {
        if !self.is_enabled() {
            return "tracing disabled (--no-trace)".to_string();
        }
        let recent = self.recent_traces(n);
        let mut s = format!(
            "traced={} recent={}\n",
            self.requests_traced(),
            recent.len()
        );
        for t in &recent {
            s.push_str(&t.render());
            s.push('\n');
        }
        s.push_str("slowest:\n");
        for t in self.slowest_traces() {
            s.push_str(&t.render());
            s.push('\n');
        }
        s.pop();
        s
    }

    /// Appends the Prometheus-style `xust_latency_micros` summary
    /// family for every non-empty histogram (scope ∈ verb/view/method).
    pub fn render_histograms(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# TYPE xust_latency_micros summary");
        let mut emit = |scope: &str, key: &str, s: HistogramSnapshot| {
            if s.count == 0 {
                return;
            }
            let label = format!("scope=\"{scope}\",key=\"{key}\"");
            let _ = writeln!(out, "xust_latency_micros_count{{{label}}} {}", s.count);
            let _ = writeln!(out, "xust_latency_micros_sum{{{label}}} {}", s.sum);
            let _ = writeln!(out, "xust_latency_micros_max{{{label}}} {}", s.max);
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(
                    out,
                    "xust_latency_micros{{scope=\"{scope}\",key=\"{key}\",quantile=\"{q}\"}} {v}"
                );
            }
        };
        for v in Verb::ALL {
            emit("verb", v.name(), self.verb_histogram(v).snapshot());
        }
        for (view, snap) in self.view_histograms() {
            emit("view", &view, snap);
        }
        for m in Method::ALL {
            emit(
                "method",
                &m.to_string(),
                self.method_histogram(m).snapshot(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_sqrt2_spaced() {
        let mut last = 0;
        for v in 1..100_000u64 {
            let i = LatencyHistogram::bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            last = i;
            // v sits strictly below its bucket's upper bound.
            assert!(
                v < LatencyHistogram::bucket_upper(i) + 1,
                "{v} outside bucket {i}"
            );
        }
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // 60 s = 6·10⁷ µs lands comfortably inside the bucket range.
        assert!(LatencyHistogram::bucket_index(60_000_000) < HIST_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.max(), 1000);
        // A √2-bucketed quantile is within one bucket of the truth.
        let p50 = h.quantile(0.5);
        assert!((500..=1000).contains(&p50), "p50={p50}");
        assert!(p50 <= 500 * 2, "p50={p50} more than one bucket off");
        assert_eq!(h.quantile(1.0), 1000, "p100 clamps to the exact max");
        assert_eq!(LatencyHistogram::new().quantile(0.5), 0, "empty → 0");
    }

    #[test]
    fn concurrent_records_conserve_count_and_sum() {
        use std::sync::Barrier;
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 5_000;
        let concurrent = Arc::new(LatencyHistogram::new());
        let reference = LatencyHistogram::new();
        let barrier = Arc::new(Barrier::new(THREADS));
        let workers: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&concurrent);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    for i in 0..PER_THREAD {
                        h.record((t as u64 * 31 + i * 7) % 10_000 + 1);
                    }
                })
            })
            .collect();
        for t in 0..THREADS as u64 {
            for i in 0..PER_THREAD {
                reference.record((t * 31 + i * 7) % 10_000 + 1);
            }
        }
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(concurrent.count(), THREADS as u64 * PER_THREAD);
        assert_eq!(concurrent.count(), reference.count());
        assert_eq!(concurrent.sum(), reference.sum());
        assert_eq!(concurrent.max(), reference.max());
        // Same multiset of samples → same buckets → quantiles within
        // one bucket (here: exactly equal) of the single-threaded run.
        for q in [0.5, 0.9, 0.99] {
            let (a, b) = (concurrent.quantile(q), reference.quantile(q));
            let (ba, bb) = (
                LatencyHistogram::bucket_index(a),
                LatencyHistogram::bucket_index(b),
            );
            assert!(ba.abs_diff(bb) <= 1, "q={q}: {a} vs {b}");
        }
    }

    fn trace_of(seq: u64, micros: u64) -> Arc<RequestTrace> {
        Arc::new(RequestTrace {
            seq,
            verb: Verb::View,
            target: "v/d".into(),
            ok: true,
            micros,
            phases: [(Phase::Eval, micros); MAX_PHASES],
            nphases: 1,
            method: None,
            prepared_hit: None,
            result_hit: None,
            plan: Vec::new(),
        })
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let ring = TraceRing::new(4);
        for i in 1..=10 {
            ring.push(trace_of(i, i));
        }
        assert_eq!(ring.pushed(), 10);
        let recent = ring.recent(3);
        let seqs: Vec<u64> = recent.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![10, 9, 8]);
        assert_eq!(ring.recent(100).len(), 4, "bounded by capacity");
    }

    #[test]
    fn slow_log_keeps_top_n_sorted() {
        let log = SlowLog::new(3);
        for (seq, micros) in [(1, 50), (2, 500), (3, 10), (4, 300), (5, 700), (6, 20)] {
            log.offer(&trace_of(seq, micros));
        }
        let slow: Vec<u64> = log.slowest().iter().map(|t| t.micros).collect();
        assert_eq!(slow, vec![700, 500, 300]);
        // Below-floor offers take the fast path and change nothing.
        log.offer(&trace_of(7, 5));
        assert_eq!(log.slowest().len(), 3);
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = Obs::new(false);
        let trace = obs.begin(Verb::View, || unreachable!("lazy target must not run"));
        assert!(!trace.is_on());
        obs.finish(trace, 1000, true, Some("v"));
        obs.record_method(Method::TopDown, 1000);
        assert_eq!(obs.verb_histogram(Verb::View).count(), 0);
        assert_eq!(obs.method_histogram(Method::TopDown).count(), 0);
        assert_eq!(obs.requests_traced(), 0);
        assert!(obs.render_traces(4).contains("tracing disabled"));
    }

    #[test]
    fn finish_merges_phases_and_feeds_histograms() {
        let obs = Obs::new(true);
        let mut trace = obs.begin(Verb::Query, || "v/d".into());
        assert!(trace.is_on());
        trace.phase_micros(Phase::Eval, 30);
        trace.phase_micros(Phase::Cache, 5);
        trace.phase_micros(Phase::Eval, 20);
        trace.note_prepared(true);
        obs.finish(trace, 60, true, Some("v"));
        let t = &obs.recent_traces(1)[0];
        assert_eq!(t.phases(), &[(Phase::Eval, 50), (Phase::Cache, 5)]);
        assert_eq!(t.prepared_hit, Some(true));
        assert_eq!(obs.verb_histogram(Verb::Query).count(), 1);
        assert_eq!(obs.view_histogram("v").count(), 1);
        let rendered = t.render();
        assert!(rendered.contains("eval=50µs"), "{rendered}");
        assert!(rendered.contains("prepared=hit"), "{rendered}");
    }
}
