#![warn(missing_docs)]
//! `xust-xquery` — an XQuery subset engine.
//!
//! The paper implements its portable algorithms (Naive, topDown,
//! twoPass) *in XQuery* on top of Qizx/Galax, and its composition
//! algorithm (Section 4) emits composed queries in standard XQuery.
//! There is no mature XQuery engine in the Rust ecosystem, so this crate
//! provides the substrate: a from-scratch parser and interpreter for the
//! slice of XQuery 1.0 those algorithms need —
//!
//! * FLWOR (`for`/`let`/`where`/`return`, multi-binding clauses),
//! * `if/then/else`, `some … satisfies`, `and`/`or`,
//! * general comparisons and the node-identity operator `is`,
//! * path expressions over the X fragment (predicates re-use
//!   `xust-xpath`'s grammar) and attribute access,
//! * direct (`<r>{…}</r>`) and computed (`element {n} {c}`) constructors,
//! * recursive user-defined functions (`declare function local:f…`),
//! * a native-function hook used to inline `topDown` in composed queries.
//!
//! # Example
//!
//! ```
//! use xust_tree::Document;
//! use xust_xquery::Engine;
//!
//! let mut engine = Engine::new();
//! engine.load_doc("parts", Document::parse(
//!     "<db><part><pname>keyboard</pname></part><part><pname>mouse</pname></part></db>",
//! ).unwrap());
//! let v = engine.eval_str(
//!     "for $p in doc(\"parts\")/db/part where $p/pname = 'mouse' return $p"
//! ).unwrap();
//! assert_eq!(engine.serialize_value(&v), "<part><pname>mouse</pname></part>");
//! ```

mod ast;
mod error;
mod eval;
mod functions;
mod lexer;
mod parser;
mod value;

pub use ast::{CompOp, Expr, FunctionDecl, Module};
pub use error::QueryError;
pub use eval::{Engine, NativeFn};
pub use parser::{parse_expr, parse_module, QParseError};
pub use value::{effective_boolean, format_num, string_value, DocId, Item, Store, Value};
