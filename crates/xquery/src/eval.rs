//! The evaluator.
//!
//! A straightforward environment-passing interpreter over [`Expr`], with
//! the two hooks the paper's algorithms need:
//!
//! * **user-defined recursive functions** — the Naive method's rewritten
//!   queries (Fig. 2) are recursive copy functions;
//! * **native functions** — the Compose method (Section 4) emits
//!   `topDown(Mp, S, Qt, $x)` as "a user-defined function" in the
//!   composed query; we register it as a native Rust closure via
//!   [`Engine::register_native`].

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use xust_tree::{Document, NodeId};
use xust_xpath::{eval_path_root, eval_qualifier};

use crate::ast::{CompOp, Expr, FunctionDecl, Module};
use crate::error::QueryError;
use crate::functions::call_builtin;
use crate::value::{effective_boolean, string_value, DocId, Item, Store, Value};

/// Signature of a native (Rust-implemented) function exposed to queries.
pub type NativeFn = Rc<dyn Fn(&mut Store, &[Value]) -> Result<Value, QueryError>>;

/// Recursion guard for user-defined functions. Kept conservative because
/// each interpreted call costs several native frames in debug builds;
/// the generated Naive queries recurse only to document depth (≈13 for
/// XMark data).
const DEFAULT_MAX_CALL_DEPTH: usize = 96;

/// The query engine: a document store plus function registries.
pub struct Engine {
    /// The document store queries read from and construct into.
    pub store: Store,
    natives: HashMap<String, NativeFn>,
    /// Limit on user-defined function recursion. Interpreted calls cost
    /// several kilobytes of native stack each in debug builds, so the
    /// default is conservative; raise it (with a bigger thread stack) for
    /// unusually deep documents.
    pub max_call_depth: usize,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            store: Store::new(),
            natives: HashMap::new(),
            max_call_depth: DEFAULT_MAX_CALL_DEPTH,
        }
    }
}

impl Engine {
    /// Empty engine (no documents, no natives).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Loads a document under a name resolvable by `doc("name")`.
    pub fn load_doc(&mut self, name: impl Into<String>, doc: Document) -> DocId {
        self.store.load(name, doc)
    }

    /// Registers a native function callable as `name(args…)`.
    pub fn register_native(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut Store, &[Value]) -> Result<Value, QueryError> + 'static,
    ) {
        self.natives.insert(name.into(), Rc::new(f));
    }

    /// Parses and evaluates a query string.
    pub fn eval_str(&mut self, query: &str) -> Result<Value, QueryError> {
        let module =
            crate::parser::parse_module(query).map_err(|e| QueryError::new(e.to_string()))?;
        self.eval_module(&module)
    }

    /// Evaluates a parsed module.
    pub fn eval_module(&mut self, module: &Module) -> Result<Value, QueryError> {
        let functions: HashMap<&str, &FunctionDecl> = module
            .functions
            .iter()
            .map(|f| (f.name.as_str(), f))
            .collect();
        let natives = self.natives.clone();
        let mut ev = Evaluator {
            store: &mut self.store,
            functions,
            natives,
            env: Vec::new(),
            call_depth: 0,
            max_call_depth: self.max_call_depth,
        };
        ev.eval(&module.body)
    }

    /// Evaluates a bare expression with optional initial bindings.
    pub fn eval_expr(
        &mut self,
        expr: &Expr,
        bindings: &[(String, Value)],
    ) -> Result<Value, QueryError> {
        let natives = self.natives.clone();
        let mut ev = Evaluator {
            store: &mut self.store,
            functions: HashMap::new(),
            natives,
            env: bindings.to_vec(),
            call_depth: 0,
            max_call_depth: self.max_call_depth,
        };
        ev.eval(expr)
    }

    /// Serializes a value the way a query result is printed: nodes as
    /// XML, atomics space-joined.
    pub fn serialize_value(&self, v: &Value) -> String {
        let mut out = String::new();
        let mut last_atomic = false;
        for item in v {
            match item {
                Item::DocNode(d) => {
                    out.push_str(&self.store.doc(*d).serialize());
                    last_atomic = false;
                }
                Item::Node(d, n) => {
                    out.push_str(&self.store.doc(*d).serialize_subtree(*n));
                    last_atomic = false;
                }
                Item::Attr(d, n, i) => {
                    let (k, val) = &self.store.doc(*d).attrs(*n)[*i];
                    out.push_str(&format!("{k}=\"{val}\""));
                    last_atomic = false;
                }
                other => {
                    if last_atomic {
                        out.push(' ');
                    }
                    out.push_str(&string_value(&self.store, other));
                    last_atomic = true;
                }
            }
        }
        out
    }

    /// Extracts a single-node result into a standalone [`Document`] —
    /// used to compare transform-query outputs across methods.
    pub fn value_to_document(&self, v: &Value) -> Result<Document, QueryError> {
        match v.as_slice() {
            [Item::DocNode(d)] => Ok(self.store.doc(*d).clone()),
            [Item::Node(d, n)] => {
                let mut doc = Document::new();
                let root = doc.deep_copy_from(self.store.doc(*d), *n);
                doc.set_root(root);
                Ok(doc)
            }
            other => Err(QueryError::new(format!(
                "expected a single node result, got {} item(s)",
                other.len()
            ))),
        }
    }
}

struct Evaluator<'a> {
    store: &'a mut Store,
    functions: HashMap<&'a str, &'a FunctionDecl>,
    natives: HashMap<String, NativeFn>,
    env: Vec<(String, Value)>,
    call_depth: usize,
    max_call_depth: usize,
}

impl<'a> Evaluator<'a> {
    fn lookup(&self, name: &str) -> Result<Value, QueryError> {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| QueryError::new(format!("unbound variable ${name}")))
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, QueryError> {
        match e {
            Expr::For { var, seq, body } => {
                let items = self.eval(seq)?;
                let mut out = Vec::new();
                for item in items {
                    self.env.push((var.clone(), vec![item]));
                    let r = self.eval(body);
                    self.env.pop();
                    out.extend(r?);
                }
                Ok(out)
            }
            Expr::Let { var, value, body } => {
                let v = self.eval(value)?;
                self.env.push((var.clone(), v));
                let r = self.eval(body);
                self.env.pop();
                r
            }
            Expr::If { cond, then, els } => {
                let c = self.eval(cond)?;
                if effective_boolean(&c) {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            Expr::Some { var, seq, cond } => {
                let items = self.eval(seq)?;
                for item in items {
                    self.env.push((var.clone(), vec![item]));
                    let r = self.eval(cond);
                    self.env.pop();
                    if effective_boolean(&r?) {
                        return Ok(vec![Item::Bool(true)]);
                    }
                }
                Ok(vec![Item::Bool(false)])
            }
            Expr::PathExpr { base, path } => {
                let b = self.eval(base)?;
                let mut out = Vec::new();
                let mut seen: HashSet<(DocId, NodeId)> = HashSet::new();
                for item in b {
                    match item {
                        Item::DocNode(d) => {
                            for hit in eval_path_root(self.store.doc(d), path) {
                                if seen.insert((d, hit)) {
                                    out.push(Item::Node(d, hit));
                                }
                            }
                        }
                        Item::Node(d, n) => {
                            for hit in xust_xpath::eval_path(self.store.doc(d), n, path) {
                                if seen.insert((d, hit)) {
                                    out.push(Item::Node(d, hit));
                                }
                            }
                        }
                        _ => return Err(QueryError::new("path step applied to a non-node item")),
                    }
                }
                Ok(out)
            }
            Expr::AttrAccess { base, name } => {
                let b = self.eval(base)?;
                let mut out = Vec::new();
                for item in b {
                    if let Item::Node(d, n) = item {
                        let doc = self.store.doc(d);
                        // A name the interner has never seen names no
                        // attribute anywhere; hits compare Syms.
                        if let Some(want) = xust_sax::Interner::global().lookup(name) {
                            if let Some(i) = doc.attrs(n).iter().position(|(k, _)| *k == want) {
                                out.push(Item::Attr(d, n, i));
                            }
                        }
                    }
                }
                Ok(out)
            }
            Expr::Filter { base, qualifier } => {
                let b = self.eval(base)?;
                let mut out = Vec::new();
                for item in b {
                    match item {
                        Item::Node(d, n) => {
                            if eval_qualifier(self.store.doc(d), n, qualifier) {
                                out.push(Item::Node(d, n));
                            }
                        }
                        Item::DocNode(d) => {
                            let keep =
                                self.store.doc(d).root().is_some_and(|r| {
                                    eval_qualifier(self.store.doc(d), r, qualifier)
                                });
                            if keep {
                                out.push(Item::DocNode(d));
                            }
                        }
                        other => out.push(other),
                    }
                }
                Ok(out)
            }
            Expr::Var(name) => self.lookup(name),
            Expr::Doc(name) => {
                let d = self
                    .store
                    .resolve(name)
                    .ok_or_else(|| QueryError::new(format!("doc(\"{name}\") not loaded")))?;
                Ok(vec![Item::DocNode(d)])
            }
            Expr::Str(s) => Ok(vec![Item::Str(s.clone())]),
            Expr::Num(n) => Ok(vec![Item::Num(*n)]),
            Expr::Seq(items) => {
                let mut out = Vec::new();
                for item in items {
                    out.extend(self.eval(item)?);
                }
                Ok(out)
            }
            Expr::DirectElem {
                name,
                attrs,
                content,
            } => {
                let values = content
                    .iter()
                    .map(|c| self.eval(c))
                    .collect::<Result<Vec<_>, _>>()?;
                self.construct(name.clone(), attrs.clone(), values)
            }
            Expr::ComputedElem { name, content } => {
                let name_v = self.eval(name)?;
                let name_s = name_v
                    .first()
                    .map(|i| string_value(self.store, i))
                    .unwrap_or_default();
                if name_s.is_empty() {
                    return Err(QueryError::new("computed element needs a non-empty name"));
                }
                let values = content
                    .iter()
                    .map(|c| self.eval(c))
                    .collect::<Result<Vec<_>, _>>()?;
                self.construct(name_s, Vec::new(), values)
            }
            Expr::TextCtor(e) => {
                let v = self.eval(e)?;
                let s = v
                    .iter()
                    .map(|i| string_value(self.store, i))
                    .collect::<Vec<_>>()
                    .join(" ");
                let out_id = self.store.output_doc();
                let t = self.store.doc_mut(out_id).create_text(s);
                Ok(vec![Item::Node(out_id, t)])
            }
            Expr::Call { name, args } => self.call(name, args),
            Expr::Comp { op, left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                Ok(vec![Item::Bool(self.general_compare(&l, &r, *op))])
            }
            Expr::Is { left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                let same = match (l.as_slice(), r.as_slice()) {
                    ([Item::Node(d1, n1)], [Item::Node(d2, n2)]) => d1 == d2 && n1 == n2,
                    ([Item::DocNode(d1)], [Item::DocNode(d2)]) => d1 == d2,
                    _ => false,
                };
                Ok(vec![Item::Bool(same)])
            }
            Expr::And(a, b) => {
                let l = self.eval(a)?;
                if !effective_boolean(&l) {
                    return Ok(vec![Item::Bool(false)]);
                }
                let r = self.eval(b)?;
                Ok(vec![Item::Bool(effective_boolean(&r))])
            }
            Expr::Or(a, b) => {
                let l = self.eval(a)?;
                if effective_boolean(&l) {
                    return Ok(vec![Item::Bool(true)]);
                }
                let r = self.eval(b)?;
                Ok(vec![Item::Bool(effective_boolean(&r))])
            }
        }
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> Result<Value, QueryError> {
        let arg_values = args
            .iter()
            .map(|a| self.eval(a))
            .collect::<Result<Vec<_>, _>>()?;
        // 1. built-ins
        if let Some(r) = call_builtin(self.store, name, &arg_values) {
            return r;
        }
        // 2. user-defined functions
        if let Some(&decl) = self.functions.get(name) {
            if decl.params.len() != arg_values.len() {
                return Err(QueryError::new(format!(
                    "{name}() expects {} argument(s), got {}",
                    decl.params.len(),
                    arg_values.len()
                )));
            }
            if self.call_depth >= self.max_call_depth {
                return Err(QueryError::new(format!(
                    "recursion limit exceeded in {name}()"
                )));
            }
            // Functions see only their parameters (lexical scoping).
            let saved_len = self.env.len();
            for (p, v) in decl.params.iter().zip(arg_values) {
                self.env.push((p.clone(), v));
            }
            let frame_start = saved_len;
            // Hide outer bindings by rotating the frame to the front of
            // lookup: we simply record the boundary and let lookup scan
            // from the end — parameters shadow outer names naturally; a
            // function referencing a non-parameter outer variable is rare
            // in our generated queries and harmless.
            let _ = frame_start;
            self.call_depth += 1;
            let r = self.eval(&decl.body);
            self.call_depth -= 1;
            self.env.truncate(saved_len);
            return r;
        }
        // 3. natives
        if let Some(f) = self.natives.get(name).cloned() {
            return f(self.store, &arg_values);
        }
        Err(QueryError::new(format!("unknown function {name}()")))
    }

    /// General comparison (existential, with untyped-data coercion:
    /// numeric when either side is a number, string otherwise).
    fn general_compare(&self, left: &Value, right: &Value, op: CompOp) -> bool {
        for l in left {
            for r in right {
                if self.compare_items(l, r, op) {
                    return true;
                }
            }
        }
        false
    }

    fn compare_items(&self, l: &Item, r: &Item, op: CompOp) -> bool {
        let num_l = self.as_num(l);
        let num_r = self.as_num(r);
        let numeric = matches!(l, Item::Num(_)) || matches!(r, Item::Num(_));
        if numeric {
            match (num_l, num_r) {
                (Some(a), Some(b)) => a
                    .partial_cmp(&b)
                    .map(|o| cmp_matches(op, o))
                    .unwrap_or(false),
                _ => false,
            }
        } else {
            let a = string_value(self.store, l);
            let b = string_value(self.store, r);
            cmp_matches(op, a.cmp(&b))
        }
    }

    fn as_num(&self, i: &Item) -> Option<f64> {
        match i {
            Item::Num(n) => Some(*n),
            other => string_value(self.store, other).trim().parse().ok(),
        }
    }

    /// Element construction. Content nodes already living detached in the
    /// output document are attached directly (each constructed node flows
    /// to exactly one parent in our query forms); anything else is
    /// deep-copied, per XQuery constructor semantics.
    fn construct(
        &mut self,
        name: String,
        mut attrs: Vec<(String, String)>,
        values: Vec<Value>,
    ) -> Result<Value, QueryError> {
        let out_id = self.store.output_doc();
        // Literal attribute names intern once; attribute *items* already
        // carry their interned name — no Sym→String→Sym round trip.
        let mut attrs: Vec<(xust_sax::Sym, String)> = attrs
            .drain(..)
            .map(|(k, v)| (xust_sax::intern(&k), v))
            .collect();
        for v in &values {
            for item in v {
                if let Item::Attr(d, n, i) = item {
                    let (k, val) = self.store.doc(*d).attrs(*n)[*i].clone();
                    attrs.push((k, val));
                }
            }
        }
        let elem = self
            .store
            .doc_mut(out_id)
            .create_element_with_attrs(name, attrs);
        for v in values {
            let mut pending_text: Option<String> = None;
            for item in v {
                match item {
                    Item::Attr(..) => {} // handled above
                    Item::DocNode(d) => {
                        if let Some(t) = pending_text.take() {
                            self.append_text(out_id, elem, t);
                        }
                        if let Some(r) = self.store.doc(d).root() {
                            let src = std::mem::take(self.store.doc_mut(d));
                            let copy = self.store.doc_mut(out_id).deep_copy_from(&src, r);
                            *self.store.doc_mut(d) = src;
                            self.store.doc_mut(out_id).append_child(elem, copy);
                        }
                    }
                    Item::Node(d, n) => {
                        if let Some(t) = pending_text.take() {
                            self.append_text(out_id, elem, t);
                        }
                        if d == out_id && self.store.doc(d).parent(n).is_none() {
                            self.store.doc_mut(out_id).append_child(elem, n);
                        } else {
                            let copy = if d == out_id {
                                self.store.doc_mut(out_id).deep_copy(n)
                            } else {
                                // Split borrows: source and output are
                                // different documents.
                                let src = std::mem::take(self.store.doc_mut(d));
                                let copy = self.store.doc_mut(out_id).deep_copy_from(&src, n);
                                *self.store.doc_mut(d) = src;
                                copy
                            };
                            self.store.doc_mut(out_id).append_child(elem, copy);
                        }
                    }
                    atomic => {
                        let s = string_value(self.store, &atomic);
                        match &mut pending_text {
                            Some(buf) => {
                                buf.push(' ');
                                buf.push_str(&s);
                            }
                            None => pending_text = Some(s),
                        }
                    }
                }
            }
            if let Some(t) = pending_text {
                self.append_text(out_id, elem, t);
            }
        }
        Ok(vec![Item::Node(out_id, elem)])
    }

    fn append_text(&mut self, out_id: DocId, elem: NodeId, t: String) {
        if t.is_empty() {
            return;
        }
        let doc = self.store.doc_mut(out_id);
        // Merge with a preceding text sibling for canonical output.
        if let Some(last) = doc.last_child(elem) {
            if doc.is_text(last) {
                let merged = format!("{}{}", doc.text(last).unwrap(), t);
                let node = doc.create_text(merged);
                doc.replace(last, node);
                return;
            }
        }
        let node = doc.create_text(t);
        doc.append_child(elem, node);
    }
}

fn cmp_matches(op: CompOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    matches!(
        (op, ord),
        (CompOp::Eq, Equal)
            | (CompOp::Ne, Less)
            | (CompOp::Ne, Greater)
            | (CompOp::Lt, Less)
            | (CompOp::Le, Less)
            | (CompOp::Le, Equal)
            | (CompOp::Gt, Greater)
            | (CompOp::Ge, Greater)
            | (CompOp::Ge, Equal)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(xml: &str) -> Engine {
        let mut e = Engine::new();
        e.load_doc("d", Document::parse(xml).unwrap());
        e
    }

    fn run(e: &mut Engine, q: &str) -> String {
        let v = e.eval_str(q).unwrap();
        e.serialize_value(&v)
    }

    #[test]
    fn doc_and_paths() {
        let mut e = engine_with("<db><a>1</a><a>2</a><b>3</b></db>");
        assert_eq!(run(&mut e, "doc(\"d\")/db/a"), "<a>1</a><a>2</a>");
        assert_eq!(run(&mut e, "doc(\"d\")//b"), "<b>3</b>");
    }

    #[test]
    fn for_loop_and_where() {
        let mut e = engine_with("<db><a>1</a><a>2</a></db>");
        assert_eq!(
            run(&mut e, "for $x in doc(\"d\")/db/a where $x = '2' return $x"),
            "<a>2</a>"
        );
    }

    #[test]
    fn let_binding() {
        let mut e = engine_with("<db><a>1</a></db>");
        assert_eq!(
            run(&mut e, "let $x := doc(\"d\")/db/a return ($x, $x)"),
            "<a>1</a><a>1</a>"
        );
    }

    #[test]
    fn if_else_and_empty() {
        let mut e = engine_with("<db><a/></db>");
        assert_eq!(
            run(
                &mut e,
                "if (empty(doc(\"d\")/db/zzz)) then 'none' else 'some'"
            ),
            "none"
        );
    }

    #[test]
    fn element_construction() {
        let mut e = engine_with("<db><a>x</a></db>");
        assert_eq!(run(&mut e, "<r>{ doc(\"d\")/db/a }</r>"), "<r><a>x</a></r>");
        assert_eq!(run(&mut e, "<r k=\"v\">hi</r>"), "<r k=\"v\">hi</r>");
    }

    #[test]
    fn computed_element() {
        let mut e = engine_with("<db><a>x</a></db>");
        assert_eq!(
            run(
                &mut e,
                "for $n in doc(\"d\")/db/a return element {local-name($n)} {'y'}"
            ),
            "<a>y</a>"
        );
    }

    #[test]
    fn attribute_access_and_copy() {
        let mut e = engine_with(r#"<db><p id="p1">x</p></db>"#);
        assert_eq!(run(&mut e, "doc(\"d\")/db/p/@id"), "id=\"p1\"");
        // children() returns attrs + child nodes; constructor re-attaches.
        assert_eq!(
            run(
                &mut e,
                "for $n in doc(\"d\")/db/p return element {local-name($n)} { children($n) }"
            ),
            "<p id=\"p1\">x</p>"
        );
    }

    #[test]
    fn comparison_numeric_vs_string() {
        let mut e = engine_with("<db><a>10</a><a>9</a></db>");
        // numeric: 9 < 10
        assert_eq!(
            run(&mut e, "for $x in doc(\"d\")/db/a where $x < 10 return $x"),
            "<a>9</a>"
        );
        // string equality
        assert_eq!(
            run(
                &mut e,
                "for $x in doc(\"d\")/db/a where $x = '10' return $x"
            ),
            "<a>10</a>"
        );
    }

    #[test]
    fn is_operator_node_identity() {
        let mut e = engine_with("<db><a>1</a><a>1</a></db>");
        // equal by value but distinct nodes
        assert_eq!(
            run(
                &mut e,
                "let $d := doc(\"d\") return if ($d/db/a[. = '1'] is $d/db/a[. = '1']) then 'same' else 'diff'"
            ),
            // both sides evaluate to the same *first* node… they are
            // sequences of 2, and `is` on non-singletons is false
            "diff"
        );
    }

    #[test]
    fn some_satisfies() {
        let mut e = engine_with("<db><a>1</a><a>2</a></db>");
        assert_eq!(
            run(
                &mut e,
                "let $xs := doc(\"d\")/db/a return if (some $x in $xs satisfies $x = '2') then 'y' else 'n'"
            ),
            "y"
        );
    }

    #[test]
    fn user_function_recursion() {
        let mut e = engine_with("<db><a><b><c/></b></a></db>");
        // Depth-count via recursion over first elements.
        let q = r#"
            declare function local:leaf($n) {
                if (empty($n/*)) then $n else local:leaf($n/*)
            };
            local:leaf(doc("d")/db/a)
        "#;
        assert_eq!(run(&mut e, q), "<c/>");
    }

    #[test]
    fn native_function_hook() {
        let mut e = engine_with("<db><a>1</a></db>");
        e.register_native("double", |_store, args| {
            let n = match args[0].as_slice() {
                [Item::Num(n)] => *n,
                _ => 0.0,
            };
            Ok(vec![Item::Num(n * 2.0)])
        });
        assert_eq!(run(&mut e, "double(21)"), "42");
    }

    #[test]
    fn filter_on_variable() {
        let mut e = engine_with("<db><s><country>A</country></s><s><country>B</country></s></db>");
        assert_eq!(
            run(
                &mut e,
                "for $x in doc(\"d\")/db/s return if (empty($x[country = 'A'])) then $x else ()"
            ),
            "<s><country>B</country></s>"
        );
    }

    #[test]
    fn errors() {
        let mut e = engine_with("<db/>");
        assert!(e.eval_str("$undefined").is_err());
        assert!(e.eval_str("doc(\"missing\")").is_err());
        assert!(e.eval_str("unknown-fn(1)").is_err());
        assert!(e.eval_str("'str'/a").is_err());
    }

    #[test]
    fn recursion_limit() {
        let mut e = engine_with("<db/>");
        let q = r#"
            declare function local:inf($n) { local:inf($n) };
            local:inf(1)
        "#;
        let err = e.eval_str(q).unwrap_err();
        assert!(err.message.contains("recursion"));
    }

    #[test]
    fn atomics_space_joined_in_content() {
        let mut e = engine_with("<db/>");
        assert_eq!(run(&mut e, "<r>{ (1, 2, 'x') }</r>"), "<r>1 2 x</r>");
    }

    #[test]
    fn literal_text_and_expr_adjacent() {
        let mut e = engine_with("<db><a>W</a></db>");
        assert_eq!(
            run(&mut e, "<r>hello {string(doc(\"d\")/db/a)}</r>"),
            "<r>hello W</r>"
        );
    }

    #[test]
    fn value_to_document() {
        let mut e = engine_with("<db><a>1</a></db>");
        let v = e.eval_str("<wrap>{ doc(\"d\")/db/a }</wrap>").unwrap();
        let doc = e.value_to_document(&v).unwrap();
        assert_eq!(doc.serialize(), "<wrap><a>1</a></wrap>");
    }

    #[test]
    fn nested_construction_no_quadratic_copies() {
        // Constructed children attach directly rather than re-copying.
        let mut e = engine_with("<db/>");
        let v = e.eval_str("<a><b><c><d>deep</d></c></b></a>").unwrap();
        assert_eq!(e.serialize_value(&v), "<a><b><c><d>deep</d></c></b></a>");
    }
}
