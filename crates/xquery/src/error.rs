use std::fmt;

/// Runtime error during query evaluation.
#[derive(Debug, Clone)]
pub struct QueryError {
    /// Human-readable description.
    pub message: String,
}

impl QueryError {
    /// Wraps a message.
    pub fn new(message: impl Into<String>) -> QueryError {
        QueryError {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery evaluation error: {}", self.message)
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = QueryError::new("boom");
        assert!(e.to_string().contains("boom"));
    }
}
