//! AST for the XQuery subset.
//!
//! The subset is scoped to what the paper needs:
//!
//! * Section 3.1 (the Naive method) rewrites transform queries into
//!   standard XQuery using `let`, `document {…}`, recursive user-defined
//!   functions, `if/then/else`, `some … satisfies`, and the node-identity
//!   operator `is` (Fig. 2);
//! * Section 4 (composition) produces queries with nested `for`/`let`/
//!   `where`/`return`, `empty(…)` tests, and element constructors;
//! * user queries are `for $x in ρ where … return exp(…)`.

use std::fmt;

use xust_xpath::Path;

/// A query module: optional function declarations plus a body expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Declared user functions, in declaration order.
    pub functions: Vec<FunctionDecl>,
    /// The main expression.
    pub body: Expr,
}

/// `declare function local:name($a, $b) { body };`
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDecl {
    /// Function name (with its `local:` prefix).
    pub name: String,
    /// Parameter names (without `$`).
    pub params: Vec<String>,
    /// The function body.
    pub body: Expr,
}

/// Comparison operators (general comparisons, existential semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompOp {
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CompOp::Eq => "=",
            CompOp::Ne => "!=",
            CompOp::Lt => "<",
            CompOp::Le => "<=",
            CompOp::Gt => ">",
            CompOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Expressions of the subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `for $var in seq return body` (a `where` clause desugars into an
    /// `If` around the body).
    For {
        /// Bound variable (without `$`).
        var: String,
        /// The iterated sequence.
        seq: Box<Expr>,
        /// Evaluated once per binding.
        body: Box<Expr>,
    },
    /// `let $var := value return body`
    Let {
        /// Bound variable (without `$`).
        var: String,
        /// The bound value.
        value: Box<Expr>,
        /// Scope of the binding.
        body: Box<Expr>,
    },
    /// `if (cond) then t else e`
    If {
        /// Condition (effective boolean value).
        cond: Box<Expr>,
        /// Taken when true.
        then: Box<Expr>,
        /// Taken when false.
        els: Box<Expr>,
    },
    /// `some $var in seq satisfies cond`
    Some {
        /// Bound variable (without `$`).
        var: String,
        /// The quantified sequence.
        seq: Box<Expr>,
        /// The satisfaction test.
        cond: Box<Expr>,
    },
    /// `base/path` — an X path applied to every node of `base`.
    PathExpr {
        /// Context sequence.
        base: Box<Expr>,
        /// The applied path.
        path: Path,
    },
    /// `base/@name` — attribute access.
    AttrAccess {
        /// Context sequence.
        base: Box<Expr>,
        /// Attribute name.
        name: String,
    },
    /// `base[qualifier]` — an X qualifier filtering a node sequence
    /// (e.g. `$x[country = 'A']` in the paper's Example 4.2).
    Filter {
        /// Context sequence.
        base: Box<Expr>,
        /// The filtering qualifier.
        qualifier: xust_xpath::Qualifier,
    },
    /// `$name`
    Var(String),
    /// `doc("name")`
    Doc(String),
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
    /// `(e1, e2, …)` — sequence construction; `()` is the empty sequence.
    Seq(Vec<Expr>),
    /// Direct constructor `<name attr="v">{…}</name>`.
    DirectElem {
        /// Element name.
        name: String,
        /// Literal attributes.
        attrs: Vec<(String, String)>,
        /// Child content expressions.
        content: Vec<Expr>,
    },
    /// Computed constructor `element {name-expr} {content}`.
    ComputedElem {
        /// Expression yielding the element name.
        name: Box<Expr>,
        /// Child content expressions.
        content: Vec<Expr>,
    },
    /// `text {e}`
    TextCtor(Box<Expr>),
    /// Function call `fn:name(args)` / `local:name(args)` / builtin.
    Call {
        /// Function name (with prefix).
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// General comparison `left op right`.
    Comp {
        /// The comparison operator.
        op: CompOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Node identity `left is right`.
    Is {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Empty sequence `()`.
    pub fn empty() -> Expr {
        Expr::Seq(Vec::new())
    }

    /// Convenience: `for $var in seq return body`.
    pub fn for_in(var: impl Into<String>, seq: Expr, body: Expr) -> Expr {
        Expr::For {
            var: var.into(),
            seq: Box::new(seq),
            body: Box::new(body),
        }
    }

    /// Convenience: `let $var := value return body`.
    pub fn let_in(var: impl Into<String>, value: Expr, body: Expr) -> Expr {
        Expr::Let {
            var: var.into(),
            value: Box::new(value),
            body: Box::new(body),
        }
    }

    /// Convenience: `if (cond) then t else e`.
    pub fn if_then_else(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        }
    }

    /// Convenience: `empty(e)`.
    pub fn empty_call(e: Expr) -> Expr {
        Expr::Call {
            name: "empty".into(),
            args: vec![e],
        }
    }

    /// Convenience: `$name`.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience: path applied to an expression.
    pub fn path(base: Expr, path: Path) -> Expr {
        Expr::PathExpr {
            base: Box::new(base),
            path,
        }
    }

    /// Size of the expression tree (used to check the paper's claim that
    /// composed queries are linear in |Q| + |Qt|).
    pub fn size(&self) -> usize {
        1 + match self {
            Expr::For { seq, body, .. } => seq.size() + body.size(),
            Expr::Let { value, body, .. } => value.size() + body.size(),
            Expr::If { cond, then, els } => cond.size() + then.size() + els.size(),
            Expr::Some { seq, cond, .. } => seq.size() + cond.size(),
            Expr::PathExpr { base, path } => base.size() + path.size(),
            Expr::AttrAccess { base, .. } => base.size(),
            Expr::Filter { base, .. } => base.size() + 1,
            Expr::Var(_) | Expr::Doc(_) | Expr::Str(_) | Expr::Num(_) => 0,
            Expr::Seq(es) => es.iter().map(Expr::size).sum(),
            Expr::DirectElem { content, .. } => content.iter().map(Expr::size).sum(),
            Expr::ComputedElem { name, content } => {
                name.size() + content.iter().map(Expr::size).sum::<usize>()
            }
            Expr::TextCtor(e) => e.size(),
            Expr::Call { args, .. } => args.iter().map(Expr::size).sum(),
            Expr::Comp { left, right, .. } | Expr::Is { left, right } => left.size() + right.size(),
            Expr::And(a, b) | Expr::Or(a, b) => a.size() + b.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let e = Expr::for_in(
            "x",
            Expr::Doc("f".into()),
            Expr::if_then_else(
                Expr::empty_call(Expr::var("x")),
                Expr::empty(),
                Expr::var("x"),
            ),
        );
        assert!(e.size() > 4);
        match e {
            Expr::For { var, .. } => assert_eq!(var, "x"),
            _ => panic!(),
        }
    }

    #[test]
    fn display_comp_op() {
        assert_eq!(CompOp::Le.to_string(), "<=");
        assert_eq!(CompOp::Eq.to_string(), "=");
    }
}
