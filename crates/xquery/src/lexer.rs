//! Lexer for the XQuery subset.
//!
//! Two context-sensitive wrinkles are handled here rather than in the
//! parser:
//!
//! * `<name` with no intervening space starts a *direct element
//!   constructor*; a `<` elsewhere is the less-than operator (the same
//!   rule real XQuery grammars use);
//! * the contents of a step predicate `[…]` are captured verbatim as a
//!   [`Tok::Predicate`] and re-parsed by `xust-xpath`'s qualifier parser,
//!   so the X fragment grammar lives in exactly one place.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // keywords
    For,
    Let,
    Where,
    Return,
    In,
    If,
    Then,
    Else,
    Some,
    Satisfies,
    Declare,
    Function,
    Element,
    Text,
    Document,
    And,
    Or,
    Is,
    // punctuation
    Dollar(String), // $name
    Assign,         // :=
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semicolon,
    Slash,
    DoubleSlash,
    Star,
    At,
    Dot,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Raw text of a `[…]` predicate (brackets excluded).
    Predicate(String),
    /// `<name` opening a direct constructor (name captured).
    StartTagOpen(String),
    /// `</name>`
    EndTag(String),
    /// `>` closing a start tag — only emitted inside tag context.
    TagClose,
    /// `/>` — only emitted inside tag context.
    TagSelfClose,
    /// attribute `name="value"` inside a start tag
    TagAttr(String, String),
    /// literal text between constructor tags
    TagText(String),
    Name(String), // possibly qualified: local:foo, fn:doc
    Str(String),
    Num(f64),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[derive(Debug, Clone)]
pub struct QLexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for QLexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery lexical error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for QLexError {}

pub struct Lexer {
    chars: Vec<char>,
    pos: usize,
    /// Mode stack for direct element constructors:
    /// `InTag` between `<name` and `>`; `InContent` between `>` and the
    /// matching end tag (literal text + `{expr}` islands).
    modes: Vec<Mode>,
    pub tokens: Vec<Tok>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Normal expression tokens.
    Expr { brace_depth: usize },
    /// Inside `<name …` before `>`.
    InTag,
    /// Inside element content, until the matching end tag.
    InContent,
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes a query.
pub fn lex(input: &str) -> Result<Vec<Tok>, QLexError> {
    let mut lx = Lexer {
        chars: input.chars().collect(),
        pos: 0,
        modes: vec![Mode::Expr { brace_depth: 0 }],
        tokens: Vec::new(),
    };
    lx.run()?;
    Ok(lx.tokens)
}

impl Lexer {
    fn err(&self, message: impl Into<String>) -> QLexError {
        QLexError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn run(&mut self) -> Result<(), QLexError> {
        while self.pos < self.chars.len() {
            match *self.modes.last().expect("mode stack never empty") {
                Mode::Expr { .. } => self.lex_expr()?,
                Mode::InTag => self.lex_in_tag()?,
                Mode::InContent => self.lex_content()?,
            }
        }
        if self.modes.len() > 1 {
            return Err(self.err("unterminated element constructor"));
        }
        Ok(())
    }

    fn read_name(&mut self) -> String {
        let start = self.pos;
        while self.pos < self.chars.len() && is_name_char(self.chars[self.pos]) {
            self.pos += 1;
        }
        // qualified name: ns:local
        if self.peek() == Some(':')
            && self.peek_at(1).is_some_and(is_name_start)
            // ':=' must not be eaten
            && self.peek_at(1) != Some('=')
        {
            self.pos += 1;
            while self.pos < self.chars.len() && is_name_char(self.chars[self.pos]) {
                self.pos += 1;
            }
        }
        self.chars[start..self.pos].iter().collect()
    }

    fn read_string(&mut self, quote: char) -> Result<String, QLexError> {
        self.pos += 1; // opening quote
        let start = self.pos;
        while self.pos < self.chars.len() && self.chars[self.pos] != quote {
            self.pos += 1;
        }
        if self.pos >= self.chars.len() {
            return Err(self.err("unterminated string literal"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        self.pos += 1; // closing quote
        Ok(s)
    }

    fn lex_expr(&mut self) -> Result<(), QLexError> {
        let c = match self.peek() {
            Some(c) => c,
            None => return Ok(()),
        };
        match c {
            c if c.is_whitespace() => {
                self.pos += 1;
            }
            '(' => {
                // comment (: … :)
                if self.peek_at(1) == Some(':') {
                    self.skip_comment()?;
                } else {
                    self.tokens.push(Tok::LParen);
                    self.pos += 1;
                }
            }
            ')' => {
                self.tokens.push(Tok::RParen);
                self.pos += 1;
            }
            '{' => {
                self.tokens.push(Tok::LBrace);
                if let Mode::Expr { brace_depth } = self.modes.last_mut().unwrap() {
                    *brace_depth += 1;
                }
                self.pos += 1;
            }
            '}' => {
                self.pos += 1;
                match self.modes.last_mut().unwrap() {
                    Mode::Expr { brace_depth } if *brace_depth > 0 => {
                        *brace_depth -= 1;
                        self.tokens.push(Tok::RBrace);
                    }
                    Mode::Expr { .. } => {
                        // closing an enclosed expression inside element
                        // content: pop back to content mode.
                        if self.modes.len() > 1 {
                            self.modes.pop();
                            self.tokens.push(Tok::RBrace);
                        } else {
                            self.tokens.push(Tok::RBrace);
                        }
                    }
                    _ => unreachable!("lex_expr only runs in Expr mode"),
                }
            }
            ',' => {
                self.tokens.push(Tok::Comma);
                self.pos += 1;
            }
            ';' => {
                self.tokens.push(Tok::Semicolon);
                self.pos += 1;
            }
            '$' => {
                self.pos += 1;
                if !self.peek().is_some_and(is_name_start) {
                    return Err(self.err("expected variable name after '$'"));
                }
                let name = self.read_name();
                self.tokens.push(Tok::Dollar(name));
            }
            ':' => {
                if self.peek_at(1) == Some('=') {
                    self.tokens.push(Tok::Assign);
                    self.pos += 2;
                } else {
                    return Err(self.err("unexpected ':'"));
                }
            }
            '/' => {
                if self.peek_at(1) == Some('/') {
                    self.tokens.push(Tok::DoubleSlash);
                    self.pos += 2;
                } else {
                    self.tokens.push(Tok::Slash);
                    self.pos += 1;
                }
            }
            '*' => {
                self.tokens.push(Tok::Star);
                self.pos += 1;
            }
            '@' => {
                self.tokens.push(Tok::At);
                self.pos += 1;
            }
            '.' => {
                self.tokens.push(Tok::Dot);
                self.pos += 1;
            }
            '=' => {
                self.tokens.push(Tok::Eq);
                self.pos += 1;
            }
            '!' => {
                if self.peek_at(1) == Some('=') {
                    self.tokens.push(Tok::Ne);
                    self.pos += 2;
                } else {
                    return Err(self.err("expected '=' after '!'"));
                }
            }
            '<' => {
                // `<name` (no space) opens a direct constructor.
                if self.peek_at(1).is_some_and(is_name_start) {
                    self.pos += 1;
                    let name = self.read_name();
                    self.tokens.push(Tok::StartTagOpen(name));
                    self.modes.push(Mode::InTag);
                } else if self.peek_at(1) == Some('=') {
                    self.tokens.push(Tok::Le);
                    self.pos += 2;
                } else {
                    self.tokens.push(Tok::Lt);
                    self.pos += 1;
                }
            }
            '>' => {
                if self.peek_at(1) == Some('=') {
                    self.tokens.push(Tok::Ge);
                    self.pos += 2;
                } else {
                    self.tokens.push(Tok::Gt);
                    self.pos += 1;
                }
            }
            '[' => {
                // Capture balanced predicate text for the X parser.
                let raw = self.read_predicate()?;
                self.tokens.push(Tok::Predicate(raw));
            }
            '\'' | '"' => {
                let s = self.read_string(c)?;
                self.tokens.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = self.pos;
                while self.peek().is_some_and(|c| c.is_ascii_digit() || c == '.') {
                    self.pos += 1;
                }
                let text: String = self.chars[start..self.pos].iter().collect();
                let n = text
                    .parse::<f64>()
                    .map_err(|_| self.err(format!("bad number '{text}'")))?;
                self.tokens.push(Tok::Num(n));
            }
            c if is_name_start(c) => {
                let name = self.read_name();
                self.tokens.push(match name.as_str() {
                    "for" => Tok::For,
                    "let" => Tok::Let,
                    "where" => Tok::Where,
                    "return" => Tok::Return,
                    "in" => Tok::In,
                    "if" => Tok::If,
                    "then" => Tok::Then,
                    "else" => Tok::Else,
                    "some" => Tok::Some,
                    "satisfies" => Tok::Satisfies,
                    "declare" => Tok::Declare,
                    "function" => Tok::Function,
                    "element" => Tok::Element,
                    "text" => Tok::Text,
                    "document" => Tok::Document,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "is" => Tok::Is,
                    _ => Tok::Name(name),
                });
            }
            other => return Err(self.err(format!("unexpected character '{other}'"))),
        }
        Ok(())
    }

    fn skip_comment(&mut self) -> Result<(), QLexError> {
        // (: … :) with nesting
        self.pos += 2;
        let mut depth = 1;
        while self.pos < self.chars.len() && depth > 0 {
            if self.peek() == Some('(') && self.peek_at(1) == Some(':') {
                depth += 1;
                self.pos += 2;
            } else if self.peek() == Some(':') && self.peek_at(1) == Some(')') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.pos += 1;
            }
        }
        if depth > 0 {
            return Err(self.err("unterminated comment"));
        }
        Ok(())
    }

    fn read_predicate(&mut self) -> Result<String, QLexError> {
        self.pos += 1; // '['
        let start = self.pos;
        let mut depth = 1usize;
        while self.pos < self.chars.len() {
            match self.chars[self.pos] {
                '[' => depth += 1,
                ']' => {
                    depth -= 1;
                    if depth == 0 {
                        let raw: String = self.chars[start..self.pos].iter().collect();
                        self.pos += 1;
                        return Ok(raw);
                    }
                }
                '\'' | '"' => {
                    let q = self.chars[self.pos];
                    self.pos += 1;
                    while self.pos < self.chars.len() && self.chars[self.pos] != q {
                        self.pos += 1;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
        Err(self.err("unterminated predicate"))
    }

    fn lex_in_tag(&mut self) -> Result<(), QLexError> {
        let c = match self.peek() {
            Some(c) => c,
            None => return Err(self.err("unterminated start tag")),
        };
        match c {
            c if c.is_whitespace() => {
                self.pos += 1;
            }
            '>' => {
                self.tokens.push(Tok::TagClose);
                self.pos += 1;
                *self.modes.last_mut().unwrap() = Mode::InContent;
            }
            '/' if self.peek_at(1) == Some('>') => {
                self.tokens.push(Tok::TagSelfClose);
                self.pos += 2;
                self.modes.pop();
            }
            c if is_name_start(c) => {
                let name = self.read_name();
                // static attribute name="value"
                if self.peek() != Some('=') {
                    return Err(self.err(format!("attribute '{name}' needs '=\"value\"'")));
                }
                self.pos += 1;
                let q = self
                    .peek()
                    .filter(|&q| q == '"' || q == '\'')
                    .ok_or_else(|| self.err("attribute value must be quoted"))?;
                let v = self.read_string(q)?;
                self.tokens.push(Tok::TagAttr(name, v));
            }
            other => return Err(self.err(format!("unexpected '{other}' in start tag"))),
        }
        Ok(())
    }

    fn lex_content(&mut self) -> Result<(), QLexError> {
        let c = match self.peek() {
            Some(c) => c,
            None => return Err(self.err("unterminated element content")),
        };
        match c {
            '{' => {
                self.tokens.push(Tok::LBrace);
                self.pos += 1;
                self.modes.push(Mode::Expr { brace_depth: 0 });
            }
            '<' => {
                if self.peek_at(1) == Some('/') {
                    self.pos += 2;
                    let name = self.read_name();
                    if self.peek() != Some('>') {
                        return Err(self.err("expected '>' after end tag name"));
                    }
                    self.pos += 1;
                    self.tokens.push(Tok::EndTag(name));
                    self.modes.pop();
                } else if self.peek_at(1).is_some_and(is_name_start) {
                    self.pos += 1;
                    let name = self.read_name();
                    self.tokens.push(Tok::StartTagOpen(name));
                    self.modes.push(Mode::InTag);
                } else {
                    return Err(self.err("stray '<' in element content"));
                }
            }
            _ => {
                // literal text until '<' or '{'
                let start = self.pos;
                while self.peek().is_some_and(|c| c != '<' && c != '{') {
                    self.pos += 1;
                }
                let raw: String = self.chars[start..self.pos].iter().collect();
                self.tokens.push(Tok::TagText(xust_sax::unescape(&raw)));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_flwor() {
        let toks = lex("for $x in doc(\"f\")/a where $x/b = 'c' return $x").unwrap();
        assert!(toks.contains(&Tok::For));
        assert!(toks.contains(&Tok::Dollar("x".into())));
        assert!(toks.contains(&Tok::Where));
        assert!(toks.contains(&Tok::Return));
        assert!(toks.contains(&Tok::Str("c".into())));
    }

    #[test]
    fn lex_let_assign() {
        let toks = lex("let $d := doc(\"f\") return $d").unwrap();
        assert!(toks.contains(&Tok::Assign));
    }

    #[test]
    fn lex_lt_vs_constructor() {
        // space → comparison
        let toks = lex("$a < $b").unwrap();
        assert!(toks.contains(&Tok::Lt));
        // no space before name → constructor
        let toks = lex("<result>{$x}</result>").unwrap();
        assert_eq!(toks[0], Tok::StartTagOpen("result".into()));
        assert_eq!(toks[1], Tok::TagClose);
        assert_eq!(toks[2], Tok::LBrace);
        assert_eq!(toks[3], Tok::Dollar("x".into()));
        assert_eq!(toks[4], Tok::RBrace);
        assert_eq!(toks[5], Tok::EndTag("result".into()));
    }

    #[test]
    fn lex_nested_constructors() {
        let toks = lex("<a><b>hi</b>{$v}</a>").unwrap();
        assert!(toks.contains(&Tok::StartTagOpen("b".into())));
        assert!(toks.contains(&Tok::TagText("hi".into())));
        assert!(toks.contains(&Tok::EndTag("a".into())));
    }

    #[test]
    fn lex_self_closing_constructor() {
        let toks = lex("<a/>").unwrap();
        assert_eq!(toks, vec![Tok::StartTagOpen("a".into()), Tok::TagSelfClose]);
    }

    #[test]
    fn lex_static_attributes() {
        let toks = lex(r#"<a k="v">x</a>"#).unwrap();
        assert!(toks.contains(&Tok::TagAttr("k".into(), "v".into())));
    }

    #[test]
    fn lex_predicate_raw() {
        let toks = lex("$x/a[b = 'c и ]'] return 1").unwrap();
        assert!(toks.contains(&Tok::Predicate("b = 'c и ]'".into())));
    }

    #[test]
    fn lex_nested_predicate() {
        let toks = lex("doc(\"f\")/a[b[c]]").unwrap();
        assert!(toks.contains(&Tok::Predicate("b[c]".into())));
    }

    #[test]
    fn lex_qualified_names() {
        let toks = lex("local:copy($n), fn:local-name($n)").unwrap();
        assert!(toks.contains(&Tok::Name("local:copy".into())));
        assert!(toks.contains(&Tok::Name("fn:local-name".into())));
    }

    #[test]
    fn lex_comments_skipped() {
        let toks = lex("1 (: comment (: nested :) still :) , 2").unwrap();
        assert_eq!(toks, vec![Tok::Num(1.0), Tok::Comma, Tok::Num(2.0)]);
    }

    #[test]
    fn lex_braces_inside_content_expr() {
        // enclosed expr with its own braces
        let toks = lex("<a>{ element {fn:local-name($n)} {1} }</a>").unwrap();
        assert!(toks.contains(&Tok::Element));
    }

    #[test]
    fn lex_errors() {
        assert!(lex("$").is_err());
        assert!(lex("'open").is_err());
        assert!(lex("a ! b").is_err());
        assert!(lex("<a>unclosed").is_err());
        assert!(lex("(: unterminated").is_err());
        assert!(lex("$x/a[unclosed").is_err());
    }

    #[test]
    fn lex_keywords_vs_names() {
        let toks = lex("if (x) then y else z").unwrap();
        assert_eq!(toks[0], Tok::If);
        assert!(toks.contains(&Tok::Then));
        assert!(toks.contains(&Tok::Else));
        assert!(toks.contains(&Tok::Name("x".into())));
    }
}
