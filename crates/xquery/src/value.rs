//! The engine's data model: items, sequences, and the document store.

use std::collections::HashMap;

use xust_tree::{Document, NodeId};

/// Identifier of a document within a [`Store`].
pub type DocId = usize;

/// An XDM-style item. Node items carry their owning document so that
/// values can mix nodes from the input document(s) and from the
/// construction scratch space.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// The document node of a loaded document (what `doc("…")` returns);
    /// paths applied to it start above the root element, so `/site/…`
    /// matches the root's own label.
    DocNode(DocId),
    /// An element or text node.
    Node(DocId, NodeId),
    /// An attribute of an element (document, element, attribute index).
    Attr(DocId, NodeId, usize),
    /// A string value.
    Str(String),
    /// A numeric value.
    Num(f64),
    /// A boolean value.
    Bool(bool),
}

/// A sequence of items — every expression evaluates to a `Value`.
pub type Value = Vec<Item>;

/// The document store: named input documents plus one scratch document
/// receiving all constructed nodes.
#[derive(Debug, Default)]
pub struct Store {
    docs: Vec<Document>,
    by_name: HashMap<String, DocId>,
    output: Option<DocId>,
}

impl Store {
    /// Empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Registers a document under a name resolvable by `doc("name")`.
    pub fn load(&mut self, name: impl Into<String>, doc: Document) -> DocId {
        let id = self.docs.len();
        self.docs.push(doc);
        self.by_name.insert(name.into(), id);
        id
    }

    /// Adds an anonymous document (not resolvable by name).
    pub fn add_anonymous(&mut self, doc: Document) -> DocId {
        let id = self.docs.len();
        self.docs.push(doc);
        id
    }

    /// Resolves `doc("name")`.
    pub fn resolve(&self, name: &str) -> Option<DocId> {
        self.by_name.get(name).copied()
    }

    /// The scratch document for constructed nodes (created on demand).
    pub fn output_doc(&mut self) -> DocId {
        match self.output {
            Some(id) => id,
            None => {
                let id = self.docs.len();
                self.docs.push(Document::new());
                self.output = Some(id);
                id
            }
        }
    }

    /// The document with the given id.
    pub fn doc(&self, id: DocId) -> &Document {
        &self.docs[id]
    }

    /// Mutable access to a stored document.
    pub fn doc_mut(&mut self, id: DocId) -> &mut Document {
        &mut self.docs[id]
    }

    /// Number of documents (inputs + scratch).
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when no documents are loaded.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }
}

/// The string value of an item (XPath atomization).
pub fn string_value(store: &Store, item: &Item) -> String {
    match item {
        Item::DocNode(d) => match store.doc(*d).root() {
            Some(r) => store.doc(*d).string_value(r),
            None => String::new(),
        },
        Item::Node(d, n) => store.doc(*d).string_value(*n),
        Item::Attr(d, n, i) => store.doc(*d).attrs(*n)[*i].1.clone(),
        Item::Str(s) => s.clone(),
        Item::Num(n) => format_num(*n),
        Item::Bool(b) => b.to_string(),
    }
}

/// Formats a number the way XQuery serializes doubles that hold integers.
pub fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Effective boolean value of a sequence.
pub fn effective_boolean(v: &Value) -> bool {
    match v.as_slice() {
        [] => false,
        [Item::Bool(b)] => *b,
        [Item::Num(n)] => *n != 0.0 && !n.is_nan(),
        [Item::Str(s)] => !s.is_empty(),
        // A sequence whose first item is a node is true.
        _ => matches!(v[0], Item::Node(..) | Item::Attr(..) | Item::DocNode(..)) || v.len() > 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_resolve() {
        let mut s = Store::new();
        let d = Document::parse("<a/>").unwrap();
        let id = s.load("foo", d);
        assert_eq!(s.resolve("foo"), Some(id));
        assert_eq!(s.resolve("bar"), None);
        assert_eq!(s.doc(id).name(s.doc(id).root().unwrap()), Some("a"));
    }

    #[test]
    fn output_doc_created_once() {
        let mut s = Store::new();
        let a = s.output_doc();
        let b = s.output_doc();
        assert_eq!(a, b);
    }

    #[test]
    fn string_values() {
        let mut s = Store::new();
        let d = Document::parse(r#"<a k="v"><b>x</b>y</a>"#).unwrap();
        let id = s.load("d", d);
        let root = s.doc(id).root().unwrap();
        assert_eq!(string_value(&s, &Item::Node(id, root)), "xy");
        assert_eq!(string_value(&s, &Item::Attr(id, root, 0)), "v");
        assert_eq!(string_value(&s, &Item::Num(3.0)), "3");
        assert_eq!(string_value(&s, &Item::Num(3.5)), "3.5");
        assert_eq!(string_value(&s, &Item::Str("q".into())), "q");
    }

    #[test]
    fn ebv() {
        assert!(!effective_boolean(&vec![]));
        assert!(effective_boolean(&vec![Item::Bool(true)]));
        assert!(!effective_boolean(&vec![Item::Bool(false)]));
        assert!(!effective_boolean(&vec![Item::Num(0.0)]));
        assert!(effective_boolean(&vec![Item::Num(2.0)]));
        assert!(!effective_boolean(&vec![Item::Str("".into())]));
        assert!(effective_boolean(&vec![Item::Str("x".into())]));
        let d = Document::parse("<a/>").unwrap();
        let root = d.root().unwrap();
        assert!(effective_boolean(&vec![Item::Node(0, root)]));
    }
}
