//! Recursive-descent parser for the XQuery subset.

use std::fmt;

use xust_xpath::{parse_qualifier, Path, Qualifier, Step, StepKind};

use crate::ast::{CompOp, Expr, FunctionDecl, Module};
use crate::lexer::{lex, QLexError, Tok};

/// Parse error for the XQuery subset.
#[derive(Debug, Clone)]
pub struct QParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for QParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery parse error: {}", self.message)
    }
}

impl std::error::Error for QParseError {}

impl From<QLexError> for QParseError {
    fn from(e: QLexError) -> Self {
        QParseError {
            message: e.to_string(),
        }
    }
}

impl From<xust_xpath::ParseError> for QParseError {
    fn from(e: xust_xpath::ParseError) -> Self {
        QParseError {
            message: format!("in predicate: {e}"),
        }
    }
}

/// Parses a complete query module (function declarations + body).
pub fn parse_module(input: &str) -> Result<Module, QParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let module = p.module()?;
    p.expect_eof()?;
    Ok(module)
}

/// Parses a single expression (no prolog).
pub fn parse_expr(input: &str) -> Result<Expr, QParseError> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), QParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {t:?}")))
        }
    }

    fn expect_eof(&self) -> Result<(), QParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(QParseError {
                message: format!("unexpected trailing token {t:?}"),
            }),
        }
    }

    fn error(&self, what: &str) -> QParseError {
        QParseError {
            message: format!(
                "{what}, found {:?} at token {}",
                self.peek()
                    .map(|t| format!("{t:?}"))
                    .unwrap_or_else(|| "EOF".into()),
                self.pos
            ),
        }
    }

    fn var_name(&mut self) -> Result<String, QParseError> {
        match self.next() {
            Some(Tok::Dollar(n)) => Ok(n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected variable"))
            }
        }
    }

    // ---- module ----

    fn module(&mut self) -> Result<Module, QParseError> {
        let mut functions = Vec::new();
        while self.peek() == Some(&Tok::Declare) {
            functions.push(self.function_decl()?);
            self.eat(&Tok::Semicolon);
        }
        let body = self.expr()?;
        Ok(Module { functions, body })
    }

    fn function_decl(&mut self) -> Result<FunctionDecl, QParseError> {
        self.expect(&Tok::Declare)?;
        self.expect(&Tok::Function)?;
        let name = match self.next() {
            Some(Tok::Name(n)) => n,
            _ => return Err(self.error("expected function name")),
        };
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != Some(&Tok::RParen) {
            loop {
                params.push(self.var_name()?);
                // Optional type annotations `as node()*` are skipped.
                self.skip_type_annotation();
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        self.skip_type_annotation();
        self.expect(&Tok::LBrace)?;
        let body = self.expr()?;
        self.expect(&Tok::RBrace)?;
        Ok(FunctionDecl { name, params, body })
    }

    fn skip_type_annotation(&mut self) {
        // `as name` / `as name()` / `as name()*` — lexed as Name tokens
        // plus parens/star; consume leniently.
        if self.peek() == Some(&Tok::Name("as".into())) {
            self.pos += 1;
            if matches!(
                self.peek(),
                Some(Tok::Name(_)) | Some(Tok::Text) | Some(Tok::Element)
            ) {
                self.pos += 1;
            }
            if self.eat(&Tok::LParen) {
                self.eat(&Tok::RParen);
            }
            self.eat(&Tok::Star);
        }
    }

    // ---- expressions ----

    /// expr := exprSingle (',' exprSingle)*
    fn expr(&mut self) -> Result<Expr, QParseError> {
        let first = self.expr_single()?;
        if self.peek() != Some(&Tok::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&Tok::Comma) {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Seq(items))
    }

    fn expr_single(&mut self) -> Result<Expr, QParseError> {
        match self.peek() {
            Some(Tok::For) | Some(Tok::Let) => self.flwor(),
            Some(Tok::If) => self.if_expr(),
            Some(Tok::Some) => self.some_expr(),
            _ => self.or_expr(),
        }
    }

    /// FLWOR: a chain of for/let clauses, optional where, then return.
    fn flwor(&mut self) -> Result<Expr, QParseError> {
        enum Clause {
            For(String, Expr),
            Let(String, Expr),
        }
        let mut clauses = Vec::new();
        loop {
            if self.eat(&Tok::For) {
                loop {
                    let v = self.var_name()?;
                    self.expect(&Tok::In)?;
                    let seq = self.expr_single()?;
                    clauses.push(Clause::For(v, seq));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            } else if self.eat(&Tok::Let) {
                loop {
                    let v = self.var_name()?;
                    self.expect(&Tok::Assign)?;
                    let value = self.expr_single()?;
                    clauses.push(Clause::Let(v, value));
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            } else {
                break;
            }
        }
        let cond = if self.eat(&Tok::Where) {
            Some(self.expr_single()?)
        } else {
            None
        };
        self.expect(&Tok::Return)?;
        let mut body = self.expr_single()?;
        if let Some(c) = cond {
            body = Expr::if_then_else(c, body, Expr::empty());
        }
        for clause in clauses.into_iter().rev() {
            body = match clause {
                Clause::For(var, seq) => Expr::For {
                    var,
                    seq: Box::new(seq),
                    body: Box::new(body),
                },
                Clause::Let(var, value) => Expr::Let {
                    var,
                    value: Box::new(value),
                    body: Box::new(body),
                },
            };
        }
        Ok(body)
    }

    fn if_expr(&mut self) -> Result<Expr, QParseError> {
        self.expect(&Tok::If)?;
        self.expect(&Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(&Tok::RParen)?;
        self.expect(&Tok::Then)?;
        let then = self.expr_single()?;
        self.expect(&Tok::Else)?;
        let els = self.expr_single()?;
        Ok(Expr::if_then_else(cond, then, els))
    }

    fn some_expr(&mut self) -> Result<Expr, QParseError> {
        self.expect(&Tok::Some)?;
        let var = self.var_name()?;
        self.expect(&Tok::In)?;
        let seq = self.expr_single()?;
        self.expect(&Tok::Satisfies)?;
        let cond = self.expr_single()?;
        Ok(Expr::Some {
            var,
            seq: Box::new(seq),
            cond: Box::new(cond),
        })
    }

    fn or_expr(&mut self) -> Result<Expr, QParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, QParseError> {
        let mut left = self.comp_expr()?;
        while self.eat(&Tok::And) {
            let right = self.comp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn comp_expr(&mut self) -> Result<Expr, QParseError> {
        let left = self.path_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(CompOp::Eq),
            Some(Tok::Ne) => Some(CompOp::Ne),
            Some(Tok::Lt) => Some(CompOp::Lt),
            Some(Tok::Le) => Some(CompOp::Le),
            Some(Tok::Gt) => Some(CompOp::Gt),
            Some(Tok::Ge) => Some(CompOp::Ge),
            Some(Tok::Is) => None, // handled below
            _ => return Ok(left),
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.path_expr()?;
            return Ok(Expr::Comp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // `is`
        self.pos += 1;
        let right = self.path_expr()?;
        Ok(Expr::Is {
            left: Box::new(left),
            right: Box::new(right),
        })
    }

    /// path_expr := primary predicate* (('/' | '//') step)*
    fn path_expr(&mut self) -> Result<Expr, QParseError> {
        let mut base = self.primary()?;
        // Predicates directly on the primary: `$x[country = 'A']`.
        while let Some(Tok::Predicate(raw)) = self.peek() {
            let raw = raw.clone();
            self.pos += 1;
            let q = parse_qualifier(&raw)?;
            base = Expr::Filter {
                base: Box::new(base),
                qualifier: q,
            };
        }
        let mut steps: Vec<Step> = Vec::new();
        loop {
            let descendant = if self.eat(&Tok::DoubleSlash) {
                true
            } else if self.eat(&Tok::Slash) {
                false
            } else {
                break;
            };
            if descendant {
                steps.push(Step::plain(StepKind::Descendant));
            }
            // attribute step terminates the path
            if self.eat(&Tok::At) {
                let name = match self.next() {
                    Some(Tok::Name(n)) => n,
                    _ => return Err(self.error("expected attribute name after '@'")),
                };
                if !steps.is_empty() {
                    base = Expr::path(base, Path { steps });
                }
                return Ok(Expr::AttrAccess {
                    base: Box::new(base),
                    name,
                });
            }
            let kind = match self.next() {
                Some(Tok::Name(n)) => StepKind::Label(n),
                Some(Tok::Star) => StepKind::Wildcard,
                // keywords usable as element names in step position
                Some(Tok::Text) => StepKind::Label("text".into()),
                Some(Tok::Element) => StepKind::Label("element".into()),
                Some(Tok::Document) => StepKind::Label("document".into()),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.error("expected step after '/'"));
                }
            };
            let mut qualifier: Option<Qualifier> = None;
            while let Some(Tok::Predicate(raw)) = self.peek() {
                let raw = raw.clone();
                self.pos += 1;
                let q = parse_qualifier(&raw)?;
                qualifier = Some(match qualifier {
                    None => q,
                    Some(prev) => Qualifier::and(prev, q),
                });
            }
            steps.push(Step { kind, qualifier });
        }
        if steps.is_empty() {
            Ok(base)
        } else {
            Ok(Expr::path(base, Path { steps }))
        }
    }

    fn primary(&mut self) -> Result<Expr, QParseError> {
        match self.peek().cloned() {
            Some(Tok::LParen) => {
                self.pos += 1;
                if self.eat(&Tok::RParen) {
                    return Ok(Expr::empty());
                }
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Dollar(n)) => {
                self.pos += 1;
                Ok(Expr::Var(n))
            }
            Some(Tok::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Str(s))
            }
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Element) => {
                self.pos += 1;
                // element {name} {content}
                self.expect(&Tok::LBrace)?;
                let name = self.expr()?;
                self.expect(&Tok::RBrace)?;
                self.expect(&Tok::LBrace)?;
                let content = if self.peek() == Some(&Tok::RBrace) {
                    Vec::new()
                } else {
                    vec![self.expr()?]
                };
                self.expect(&Tok::RBrace)?;
                Ok(Expr::ComputedElem {
                    name: Box::new(name),
                    content,
                })
            }
            Some(Tok::Text) => {
                self.pos += 1;
                self.expect(&Tok::LBrace)?;
                let e = self.expr()?;
                self.expect(&Tok::RBrace)?;
                Ok(Expr::TextCtor(Box::new(e)))
            }
            Some(Tok::Document) => {
                self.pos += 1;
                self.expect(&Tok::LBrace)?;
                let e = self.expr()?;
                self.expect(&Tok::RBrace)?;
                // We have no separate document nodes: `document {e}` is
                // the constructed content itself.
                Ok(e)
            }
            Some(Tok::StartTagOpen(name)) => {
                self.pos += 1;
                self.direct_elem(name)
            }
            Some(Tok::Name(name)) => {
                self.pos += 1;
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Tok::RParen) {
                        loop {
                            args.push(self.expr_single()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    // doc("x") becomes a dedicated node.
                    let plain = name.strip_prefix("fn:").unwrap_or(&name);
                    if plain == "doc" {
                        match args.as_slice() {
                            [Expr::Str(s)] => return Ok(Expr::Doc(s.clone())),
                            _ => {
                                return Err(self.error("doc() takes one string literal"));
                            }
                        }
                    }
                    Ok(Expr::Call {
                        name: plain.to_string(),
                        args,
                    })
                } else {
                    // A bare name is a child-axis path step from the
                    // (nonexistent) context item — not supported at top
                    // level, but it appears inside predicates which the X
                    // parser handles. Treat as an error with a hint.
                    Err(QParseError {
                        message: format!(
                            "bare name '{name}' is not an expression here (paths must start from doc(), a variable, or a constructor)"
                        ),
                    })
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }

    fn direct_elem(&mut self, name: String) -> Result<Expr, QParseError> {
        let mut attrs = Vec::new();
        loop {
            match self.next() {
                Some(Tok::TagAttr(k, v)) => attrs.push((k, v)),
                Some(Tok::TagSelfClose) => {
                    return Ok(Expr::DirectElem {
                        name,
                        attrs,
                        content: Vec::new(),
                    })
                }
                Some(Tok::TagClose) => break,
                _ => return Err(self.error("malformed start tag")),
            }
        }
        // content until EndTag
        let mut content = Vec::new();
        loop {
            match self.peek().cloned() {
                Some(Tok::EndTag(end)) => {
                    self.pos += 1;
                    if end != name {
                        return Err(QParseError {
                            message: format!("mismatched constructor tags <{name}> … </{end}>"),
                        });
                    }
                    break;
                }
                Some(Tok::TagText(t)) => {
                    self.pos += 1;
                    // Boundary-whitespace stripping (XQuery default).
                    if !t.trim().is_empty() {
                        content.push(Expr::Str(t));
                    }
                }
                Some(Tok::LBrace) => {
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect(&Tok::RBrace)?;
                    content.push(e);
                }
                Some(Tok::StartTagOpen(inner)) => {
                    self.pos += 1;
                    content.push(self.direct_elem(inner)?);
                }
                _ => return Err(self.error("unterminated element constructor")),
            }
        }
        Ok(Expr::DirectElem {
            name,
            attrs,
            content,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_flwor() {
        let e = parse_expr("for $x in doc(\"f\")/a/b return $x").unwrap();
        match e {
            Expr::For { var, seq, body } => {
                assert_eq!(var, "x");
                assert!(matches!(*seq, Expr::PathExpr { .. }));
                assert_eq!(*body, Expr::Var("x".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_where_desugars_to_if() {
        let e = parse_expr("for $x in doc(\"f\")/a where $x/b = 'c' return $x").unwrap();
        match e {
            Expr::For { body, .. } => assert!(matches!(*body, Expr::If { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_multi_binding_for() {
        let e = parse_expr("for $a in doc(\"f\")/x, $b in $a/y return $b").unwrap();
        match e {
            Expr::For { var, body, .. } => {
                assert_eq!(var, "a");
                assert!(matches!(*body, Expr::For { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_let_chain() {
        let e = parse_expr("let $d := doc(\"f\") let $e := $d/a return $e").unwrap();
        assert!(matches!(e, Expr::Let { .. }));
    }

    #[test]
    fn parse_paths_with_predicates() {
        let e = parse_expr("doc(\"f\")/part[pname = 'kb']/supplier").unwrap();
        match e {
            Expr::PathExpr { base, path } => {
                assert!(matches!(*base, Expr::Doc(_)));
                assert_eq!(path.steps.len(), 2);
                assert!(path.steps[0].qualifier.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_attribute_access() {
        let e = parse_expr("$x/person/@id").unwrap();
        match e {
            Expr::AttrAccess { base, name } => {
                assert_eq!(name, "id");
                assert!(matches!(*base, Expr::PathExpr { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_direct_constructor() {
        let e = parse_expr("<result>{ for $x in doc(\"f\")/a return $x }</result>").unwrap();
        match e {
            Expr::DirectElem { name, content, .. } => {
                assert_eq!(name, "result");
                assert_eq!(content.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_nested_constructors_with_text() {
        let e = parse_expr("<a x=\"1\"><b>hi</b></a>").unwrap();
        match e {
            Expr::DirectElem {
                name,
                attrs,
                content,
            } => {
                assert_eq!(name, "a");
                assert_eq!(attrs, vec![("x".into(), "1".into())]);
                assert!(matches!(&content[0], Expr::DirectElem { name, .. } if name == "b"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_computed_element() {
        let e = parse_expr("element {local-name($n)} {$c}").unwrap();
        assert!(matches!(e, Expr::ComputedElem { .. }));
    }

    #[test]
    fn parse_some_satisfies() {
        let e = parse_expr("some $x in $xp satisfies $n is $x").unwrap();
        match e {
            Expr::Some { cond, .. } => assert!(matches!(*cond, Expr::Is { .. })),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_function_declaration() {
        let m = parse_module(
            "declare function local:f($n, $xp) { if (empty($n)) then () else local:f($n, $xp) }; local:f(doc(\"d\"), ())",
        )
        .unwrap();
        assert_eq!(m.functions.len(), 1);
        assert_eq!(m.functions[0].name, "local:f");
        assert_eq!(m.functions[0].params, vec!["n", "xp"]);
        assert!(matches!(m.body, Expr::Call { .. }));
    }

    #[test]
    fn parse_function_with_type_annotations() {
        let m = parse_module(
            "declare function local:g($n as node()) as node()* { $n }; local:g(doc(\"d\"))",
        )
        .unwrap();
        assert_eq!(m.functions[0].params, vec!["n"]);
    }

    #[test]
    fn parse_sequence_expression() {
        let e = parse_expr("(1, 'two', $x)").unwrap();
        match e {
            Expr::Seq(items) => assert_eq!(items.len(), 3),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_empty_sequence() {
        assert_eq!(parse_expr("()").unwrap(), Expr::empty());
    }

    #[test]
    fn parse_comparisons_and_logic() {
        let e = parse_expr("$a/x = 'v' and not($b/y > 3) or $c is $d").unwrap();
        assert!(matches!(e, Expr::Or(_, _)));
    }

    #[test]
    fn parse_if_else() {
        let e = parse_expr("if (empty($x)) then $y else ()").unwrap();
        assert!(matches!(e, Expr::If { .. }));
    }

    #[test]
    fn parse_doc_special_form() {
        assert_eq!(parse_expr("doc(\"foo\")").unwrap(), Expr::Doc("foo".into()));
        assert_eq!(
            parse_expr("fn:doc(\"foo\")").unwrap(),
            Expr::Doc("foo".into())
        );
        assert!(parse_expr("doc($x)").is_err());
    }

    #[test]
    fn parse_descendant_path() {
        let e = parse_expr("doc(\"f\")//price").unwrap();
        match e {
            Expr::PathExpr { path, .. } => {
                assert_eq!(path.steps.len(), 2);
                assert_eq!(path.steps[0].kind, StepKind::Descendant);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_expr("for $x in").is_err());
        assert!(parse_expr("if (1) then 2").is_err());
        assert!(parse_expr("<a></b>").is_err());
        assert!(parse_expr("bare").is_err());
        assert!(parse_expr("doc(\"f\")/").is_err());
    }

    #[test]
    fn paper_example_42_composed_query_parses() {
        // The composed query of Example 4.2.
        let q = r#"
            <result> {
              for $y1 in doc("foo")/part[pname = 'keyboard'],
                  $y2 in $y1/supplier
              let $x := $y2
              return if (empty($x[country = 'A'])) then $x else ( )
            } </result>"#;
        let e = parse_expr(q).unwrap();
        assert!(matches!(e, Expr::DirectElem { .. }));
    }
}
