//! Built-in function library.
//!
//! Only what the paper's generated and hand-written queries need:
//! `empty`, `exists`, `not`, `count`, `local-name`, `string`, `concat`,
//! `contains`, plus two helpers used by the Naive rewriting template in
//! place of full axis support: `is-element($n)` (for `$n[self::element()]`)
//! and `children($n)` (for `$n/(*|@*|text())` — child nodes *and*
//! attributes, which the constructor re-attaches appropriately).

use crate::error::QueryError;
use crate::value::{effective_boolean, string_value, Item, Store, Value};

/// Dispatches a built-in by name. Returns `None` if the name is unknown
/// (the caller then tries user-defined and native functions).
pub fn call_builtin(
    store: &Store,
    name: &str,
    args: &[Value],
) -> Option<Result<Value, QueryError>> {
    let r = match name {
        "empty" => arity(name, args, 1).map(|_| vec![Item::Bool(args[0].is_empty())]),
        "exists" => arity(name, args, 1).map(|_| vec![Item::Bool(!args[0].is_empty())]),
        "not" => arity(name, args, 1).map(|_| vec![Item::Bool(!effective_boolean(&args[0]))]),
        "count" => arity(name, args, 1).map(|_| vec![Item::Num(args[0].len() as f64)]),
        "true" => arity(name, args, 0).map(|_| vec![Item::Bool(true)]),
        "false" => arity(name, args, 0).map(|_| vec![Item::Bool(false)]),
        "local-name" => arity(name, args, 1).and_then(|_| match args[0].as_slice() {
            [] => Ok(vec![Item::Str(String::new())]),
            [Item::Node(d, n)] => Ok(vec![Item::Str(
                store.doc(*d).name(*n).unwrap_or("").to_string(),
            )]),
            [Item::Attr(d, n, i)] => Ok(vec![Item::Str(
                store.doc(*d).attrs(*n)[*i].0.as_str().to_string(),
            )]),
            _ => Err(QueryError::new("local-name() needs a single node")),
        }),
        "string" => arity(name, args, 1).map(|_| {
            let s = args[0]
                .iter()
                .map(|i| string_value(store, i))
                .collect::<Vec<_>>()
                .join(" ");
            vec![Item::Str(s)]
        }),
        "concat" => {
            let mut out = String::new();
            for a in args {
                for item in a {
                    out.push_str(&string_value(store, item));
                }
            }
            Ok(vec![Item::Str(out)])
        }
        "contains" => arity(name, args, 2).map(|_| {
            let hay = args[0]
                .first()
                .map(|i| string_value(store, i))
                .unwrap_or_default();
            let needle = args[1]
                .first()
                .map(|i| string_value(store, i))
                .unwrap_or_default();
            vec![Item::Bool(hay.contains(&needle))]
        }),
        "data" => arity(name, args, 1).map(|_| {
            args[0]
                .iter()
                .map(|i| Item::Str(string_value(store, i)))
                .collect()
        }),
        "is-element" => arity(name, args, 1).map(|_| {
            let is_elem = matches!(
                args[0].as_slice(),
                [Item::Node(d, n)] if store.doc(*d).is_element(*n)
            );
            vec![Item::Bool(is_elem)]
        }),
        "is-text" => arity(name, args, 1).map(|_| {
            let is_text = matches!(
                args[0].as_slice(),
                [Item::Node(d, n)] if store.doc(*d).is_text(*n)
            );
            vec![Item::Bool(is_text)]
        }),
        "children" => arity(name, args, 1).map(|_| {
            let mut out = Vec::new();
            for item in &args[0] {
                match item {
                    Item::Node(d, n) => {
                        let doc = store.doc(*d);
                        for (i, _) in doc.attrs(*n).iter().enumerate() {
                            out.push(Item::Attr(*d, *n, i));
                        }
                        for c in doc.children(*n) {
                            out.push(Item::Node(*d, c));
                        }
                    }
                    Item::DocNode(d) => {
                        if let Some(r) = store.doc(*d).root() {
                            out.push(Item::Node(*d, r));
                        }
                    }
                    _ => {}
                }
            }
            out
        }),
        _ => return None,
    };
    Some(r)
}

fn arity(name: &str, args: &[Value], n: usize) -> Result<(), QueryError> {
    if args.len() == n {
        Ok(())
    } else {
        Err(QueryError::new(format!(
            "{name}() expects {n} argument(s), got {}",
            args.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_tree::Document;

    fn store() -> (Store, usize) {
        let mut s = Store::new();
        let d = Document::parse(r#"<a k="v"><b>x</b>tail</a>"#).unwrap();
        let id = s.load("d", d);
        (s, id)
    }

    fn b(v: &Value) -> bool {
        matches!(v.as_slice(), [Item::Bool(true)])
    }

    #[test]
    fn empty_exists_not_count() {
        let (s, _) = store();
        assert!(b(&call_builtin(&s, "empty", &[vec![]]).unwrap().unwrap()));
        assert!(!b(&call_builtin(&s, "empty", &[vec![Item::Num(1.0)]])
            .unwrap()
            .unwrap()));
        assert!(b(&call_builtin(&s, "exists", &[vec![Item::Num(1.0)]])
            .unwrap()
            .unwrap()));
        assert!(b(&call_builtin(&s, "not", &[vec![]]).unwrap().unwrap()));
        let c = call_builtin(&s, "count", &[vec![Item::Num(1.0), Item::Num(2.0)]])
            .unwrap()
            .unwrap();
        assert_eq!(c, vec![Item::Num(2.0)]);
    }

    #[test]
    fn local_name_and_string() {
        let (s, id) = store();
        let root = s.doc(id).root().unwrap();
        let v = call_builtin(&s, "local-name", &[vec![Item::Node(id, root)]])
            .unwrap()
            .unwrap();
        assert_eq!(v, vec![Item::Str("a".into())]);
        let v = call_builtin(&s, "string", &[vec![Item::Node(id, root)]])
            .unwrap()
            .unwrap();
        assert_eq!(v, vec![Item::Str("xtail".into())]);
    }

    #[test]
    fn children_includes_attrs_and_nodes() {
        let (s, id) = store();
        let root = s.doc(id).root().unwrap();
        let v = call_builtin(&s, "children", &[vec![Item::Node(id, root)]])
            .unwrap()
            .unwrap();
        // attribute k, element b, text tail
        assert_eq!(v.len(), 3);
        assert!(matches!(v[0], Item::Attr(..)));
    }

    #[test]
    fn is_element_and_text() {
        let (s, id) = store();
        let root = s.doc(id).root().unwrap();
        let text = s.doc(id).children(root).nth(1).unwrap();
        assert!(b(&call_builtin(
            &s,
            "is-element",
            &[vec![Item::Node(id, root)]]
        )
        .unwrap()
        .unwrap()));
        assert!(b(&call_builtin(
            &s,
            "is-text",
            &[vec![Item::Node(id, text)]]
        )
        .unwrap()
        .unwrap()));
    }

    #[test]
    fn unknown_function_none() {
        let (s, _) = store();
        assert!(call_builtin(&s, "no-such-fn", &[]).is_none());
    }

    #[test]
    fn arity_errors() {
        let (s, _) = store();
        assert!(call_builtin(&s, "empty", &[]).unwrap().is_err());
        assert!(call_builtin(&s, "contains", &[vec![]]).unwrap().is_err());
    }

    #[test]
    fn concat_and_contains() {
        let (s, _) = store();
        let v = call_builtin(
            &s,
            "concat",
            &[vec![Item::Str("a".into())], vec![Item::Str("b".into())]],
        )
        .unwrap()
        .unwrap();
        assert_eq!(v, vec![Item::Str("ab".into())]);
        let v = call_builtin(
            &s,
            "contains",
            &[
                vec![Item::Str("hello".into())],
                vec![Item::Str("ell".into())],
            ],
        )
        .unwrap()
        .unwrap();
        assert!(b(&v));
    }
}
