use crate::document::Document;
use crate::node::NodeId;

/// Iterator over the direct children of a node, in document order.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Children<'a> {
    pub(crate) fn new(doc: &'a Document, first: Option<NodeId>) -> Self {
        Children { doc, next: first }
    }
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Preorder iterator over a subtree (including its root), without
/// recursion — safe for arbitrarily deep documents.
pub struct Descendants<'a> {
    doc: &'a Document,
    start: NodeId,
    next: Option<NodeId>,
}

impl<'a> Descendants<'a> {
    pub(crate) fn new(doc: &'a Document, start: NodeId) -> Self {
        Descendants {
            doc,
            start,
            next: Some(start),
        }
    }
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Compute successor in preorder, staying inside the subtree.
        self.next = if let Some(c) = self.doc.first_child(cur) {
            Some(c)
        } else {
            let mut n = cur;
            loop {
                if n == self.start {
                    break None;
                }
                if let Some(s) = self.doc.next_sibling(n) {
                    break Some(s);
                }
                match self.doc.parent(n) {
                    Some(p) => n = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

/// Iterator over ancestors, nearest first (excludes the node itself).
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl<'a> Ancestors<'a> {
    pub(crate) fn new(doc: &'a Document, node: NodeId) -> Self {
        Ancestors {
            doc,
            next: doc.parent(node),
        }
    }
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use crate::Document;

    #[test]
    fn descendants_preorder() {
        let d = Document::parse("<a><b><c/><d/></b><e/></a>").unwrap();
        let names: Vec<_> = d
            .descendants_or_self(d.root().unwrap())
            .map(|n| d.name(n).unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn descendants_of_subtree_stay_inside() {
        let d = Document::parse("<a><b><c/></b><e/></a>").unwrap();
        let root = d.root().unwrap();
        let b = d.first_child(root).unwrap();
        let names: Vec<_> = d
            .descendants_or_self(b)
            .map(|n| d.name(n).unwrap().to_string())
            .collect();
        assert_eq!(names, ["b", "c"]);
    }

    #[test]
    fn descendants_single_node() {
        let mut d = Document::new();
        let solo = d.create_element("solo");
        let items: Vec<_> = d.descendants_or_self(solo).collect();
        assert_eq!(items, vec![solo]);
    }

    #[test]
    fn children_empty() {
        let mut d = Document::new();
        let e = d.create_element("e");
        assert_eq!(d.children(e).count(), 0);
    }

    #[test]
    fn deep_document_iteration_no_stack_overflow() {
        // 100k-deep chain: preorder iteration must be iterative.
        let mut d = Document::new();
        let root = d.create_element("n");
        d.set_root(root);
        let mut cur = root;
        for _ in 0..100_000 {
            let c = d.create_element("n");
            d.append_child(cur, c);
            cur = c;
        }
        assert_eq!(d.descendants_or_self(root).count(), 100_001);
    }
}
