use xust_intern::Sym;

/// Index of a node within a [`crate::Document`] arena.
///
/// `NodeId`s are only meaningful relative to the document that issued
/// them; mixing ids across documents is a logic error (caught by debug
/// assertions in accessors where cheap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

/// Sentinel for "no node" in the internal link fields.
pub(crate) const NIL: u32 = u32::MAX;

impl NodeId {
    /// Raw index (stable for the lifetime of the document; detached nodes
    /// keep their slot).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    pub(crate) fn from_raw(raw: u32) -> Option<NodeId> {
        if raw == NIL {
            None
        } else {
            Some(NodeId(raw))
        }
    }
}

/// The payload of a node: an element (with attributes) or a text node.
///
/// Attributes are kept inline on the element in document order, matching
/// how the SAX layer reports them; the XPath fragment X reaches them via
/// `@name` tests in qualifiers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with its attributes in document order.
    Element {
        /// Element name (interned label — an integer compare on every
        /// hot path).
        name: Sym,
        /// Attributes in document order (interned names, literal
        /// values).
        attrs: Vec<(Sym, String)>,
    },
    /// A text node (PCDATA).
    Text(String),
}

impl NodeKind {
    /// Returns the element name, or `None` for text nodes.
    pub fn name(&self) -> Option<&'static str> {
        self.name_sym().map(Sym::as_str)
    }

    /// Returns the interned element name, or `None` for text nodes.
    pub fn name_sym(&self) -> Option<Sym> {
        match self {
            NodeKind::Element { name, .. } => Some(*name),
            NodeKind::Text(_) => None,
        }
    }

    /// Returns true for element nodes.
    pub fn is_element(&self) -> bool {
        matches!(self, NodeKind::Element { .. })
    }

    /// Returns true for text nodes.
    pub fn is_text(&self) -> bool {
        matches!(self, NodeKind::Text(_))
    }
}

/// Internal node representation: payload plus sibling/child links.
#[derive(Debug, Clone)]
pub(crate) struct NodeData {
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) last_child: u32,
    pub(crate) prev_sibling: u32,
    pub(crate) next_sibling: u32,
    /// Slot is on the document's free list (recycled by `delete`/
    /// `replace`); its `NodeId` must no longer be used.
    pub(crate) freed: bool,
    pub(crate) kind: NodeKind,
}

impl NodeData {
    pub(crate) fn new(kind: NodeKind) -> Self {
        NodeData {
            parent: NIL,
            first_child: NIL,
            last_child: NIL,
            prev_sibling: NIL,
            next_sibling: NIL,
            freed: false,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        let e = NodeKind::Element {
            name: xust_intern::intern("a"),
            attrs: vec![],
        };
        let t = NodeKind::Text("x".into());
        assert!(e.is_element() && !e.is_text());
        assert!(t.is_text() && !t.is_element());
        assert_eq!(e.name(), Some("a"));
        assert_eq!(t.name(), None);
    }

    #[test]
    fn from_raw_nil() {
        assert_eq!(NodeId::from_raw(NIL), None);
        assert_eq!(NodeId::from_raw(3), Some(NodeId(3)));
    }
}
