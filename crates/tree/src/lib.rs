#![warn(missing_docs)]
//! `xust-tree` — an arena-based XML document tree.
//!
//! This is the DOM-level data model of the reproduction: every evaluation
//! algorithm except `twoPassSAX` operates on [`Document`]s. Nodes live in a
//! flat arena indexed by [`NodeId`] and are linked in
//! first-child/next-sibling form, which makes the paper's traversal
//! patterns cheap:
//!
//! * `topDown` (Fig. 3) walks `first_child`/`next_sibling` chains;
//! * `bottomUp` (Fig. 9) recurses on the *left-most child* and the
//!   *immediate right sibling*, exactly the two links we store;
//! * the copy-and-update baseline clones the arena wholesale.
//!
//! # Example
//!
//! ```
//! use xust_tree::Document;
//!
//! let doc = Document::parse("<db><part><pname>keyboard</pname></part></db>").unwrap();
//! let root = doc.root().unwrap();
//! assert_eq!(doc.name(root), Some("db"));
//! assert_eq!(doc.serialize(), "<db><part><pname>keyboard</pname></part></db>");
//! ```

mod build;
mod document;
mod eq;
mod iter;
mod node;
mod parse;
mod serialize;

pub use build::ElementBuilder;
pub use document::Document;
pub use eq::{deep_eq, docs_eq};
pub use iter::{Ancestors, Children, Descendants};
pub use node::{NodeId, NodeKind};
pub use parse::TreeParseError;
