use std::io::Write;

use xust_sax::{escape_attr_into, SaxResult, SaxWriter};

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

impl Document {
    /// Serializes the whole document to a string.
    pub fn serialize(&self) -> String {
        match self.root() {
            Some(r) => self.serialize_subtree(r),
            None => String::new(),
        }
    }

    /// Serializes the subtree rooted at `node` to a string.
    pub fn serialize_subtree(&self, node: NodeId) -> String {
        let mut buf = Vec::new();
        self.write_subtree(node, &mut buf)
            .expect("writing to Vec cannot fail");
        String::from_utf8(buf).expect("serializer produces UTF-8")
    }

    /// Streams the subtree rooted at `node` to any [`Write`] sink using an
    /// iterative traversal (no recursion, bounded memory).
    pub fn write_subtree<W: Write>(&self, node: NodeId, out: W) -> SaxResult<()> {
        let mut w = SaxWriter::new(out);
        // Explicit stack of (node, entered) frames: `entered == true`
        // means children already emitted and the end tag is due.
        enum Frame {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut stack = vec![Frame::Enter(node)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(n) => match self.kind(n) {
                    NodeKind::Text(t) => w.text(t)?,
                    NodeKind::Element { name, attrs } => {
                        w.start_element(name.as_str(), attrs)?;
                        stack.push(Frame::Exit(n));
                        let children: Vec<NodeId> = self.children(n).collect();
                        for &c in children.iter().rev() {
                            stack.push(Frame::Enter(c));
                        }
                    }
                },
                Frame::Exit(n) => {
                    let name = self.name(n).expect("exit frames are elements");
                    w.end_element(name)?;
                }
            }
        }
        w.finish()?;
        Ok(())
    }

    /// Appends `node`'s open start tag — `<name` plus attributes, **no
    /// closing `>`** — to `out`, byte-identical to what [`SaxWriter`]
    /// emits. Fragment sinks (`xust-core`'s patch assembly) use this to
    /// frame live element tags around memoized child bytes; the
    /// caller decides between `>` and `/>`. No-op on text nodes.
    pub fn write_start_tag_into(&self, node: NodeId, out: &mut String) {
        let NodeKind::Element { name, attrs } = self.kind(node) else {
            return;
        };
        out.push('<');
        out.push_str(name.as_str());
        for (k, v) in attrs {
            out.push(' ');
            out.push_str(k.as_str());
            out.push_str("=\"");
            escape_attr_into(v, out);
            out.push('"');
        }
    }

    /// Appends `node`'s end tag `</name>` to `out`. No-op on text nodes.
    pub fn write_end_tag_into(&self, node: NodeId, out: &mut String) {
        if let Some(name) = self.name(node) {
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Document;

    #[test]
    fn roundtrip_simple() {
        let xml = "<db><part pname=\"kb\"><sub/>t</part></db>";
        let d = Document::parse(xml).unwrap();
        assert_eq!(d.serialize(), xml);
    }

    #[test]
    fn escaping_roundtrip() {
        let xml = "<a x=\"1 &lt; 2\">3 &gt; 2 &amp; 1 &lt; 2</a>";
        let d = Document::parse(xml).unwrap();
        let out = d.serialize();
        let d2 = Document::parse(&out).unwrap();
        assert_eq!(d2.serialize(), out);
        assert!(out.contains("&lt;"));
    }

    #[test]
    fn empty_document_serializes_empty() {
        let d = Document::new();
        assert_eq!(d.serialize(), "");
    }

    #[test]
    fn serialize_subtree_only() {
        let d = Document::parse("<a><b>x</b><c/></a>").unwrap();
        let root = d.root().unwrap();
        let b = d.first_child(root).unwrap();
        assert_eq!(d.serialize_subtree(b), "<b>x</b>");
    }

    #[test]
    fn tag_helpers_match_sax_writer_bytes() {
        let d = Document::parse("<a x=\"1 &lt; 2\" y=\"q\"><b/>t</a>").unwrap();
        let root = d.root().unwrap();
        let mut open = String::new();
        d.write_start_tag_into(root, &mut open);
        assert_eq!(open, "<a x=\"1 &lt; 2\" y=\"q\"");
        let mut close = String::new();
        d.write_end_tag_into(root, &mut close);
        assert_eq!(close, "</a>");
        // Framing children with the helpers reproduces serialize() exactly.
        let b = d.first_child(root).unwrap();
        let t = d.next_sibling(b).unwrap();
        let mut framed = String::new();
        d.write_start_tag_into(root, &mut framed);
        framed.push('>');
        framed.push_str(&d.serialize_subtree(b));
        framed.push_str(&d.serialize_subtree(t));
        d.write_end_tag_into(root, &mut framed);
        assert_eq!(framed, d.serialize());
    }

    #[test]
    fn deep_tree_serialization_iterative() {
        let mut d = Document::new();
        let root = d.create_element("n");
        d.set_root(root);
        let mut cur = root;
        for _ in 0..50_000 {
            let c = d.create_element("n");
            d.append_child(cur, c);
            cur = c;
        }
        let s = d.serialize();
        assert!(s.starts_with("<n><n>"));
        assert!(s.ends_with("</n></n>"));
    }
}
