use std::io::Write;

use xust_sax::{SaxResult, SaxWriter};

use crate::document::Document;
use crate::node::{NodeId, NodeKind};

impl Document {
    /// Serializes the whole document to a string.
    pub fn serialize(&self) -> String {
        match self.root() {
            Some(r) => self.serialize_subtree(r),
            None => String::new(),
        }
    }

    /// Serializes the subtree rooted at `node` to a string.
    pub fn serialize_subtree(&self, node: NodeId) -> String {
        let mut buf = Vec::new();
        self.write_subtree(node, &mut buf)
            .expect("writing to Vec cannot fail");
        String::from_utf8(buf).expect("serializer produces UTF-8")
    }

    /// Streams the subtree rooted at `node` to any [`Write`] sink using an
    /// iterative traversal (no recursion, bounded memory).
    pub fn write_subtree<W: Write>(&self, node: NodeId, out: W) -> SaxResult<()> {
        let mut w = SaxWriter::new(out);
        // Explicit stack of (node, entered) frames: `entered == true`
        // means children already emitted and the end tag is due.
        enum Frame {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut stack = vec![Frame::Enter(node)];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(n) => match self.kind(n) {
                    NodeKind::Text(t) => w.text(t)?,
                    NodeKind::Element { name, attrs } => {
                        w.start_element(name.as_str(), attrs)?;
                        stack.push(Frame::Exit(n));
                        let children: Vec<NodeId> = self.children(n).collect();
                        for &c in children.iter().rev() {
                            stack.push(Frame::Enter(c));
                        }
                    }
                },
                Frame::Exit(n) => {
                    let name = self.name(n).expect("exit frames are elements");
                    w.end_element(name)?;
                }
            }
        }
        w.finish()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::Document;

    #[test]
    fn roundtrip_simple() {
        let xml = "<db><part pname=\"kb\"><sub/>t</part></db>";
        let d = Document::parse(xml).unwrap();
        assert_eq!(d.serialize(), xml);
    }

    #[test]
    fn escaping_roundtrip() {
        let xml = "<a x=\"1 &lt; 2\">3 &gt; 2 &amp; 1 &lt; 2</a>";
        let d = Document::parse(xml).unwrap();
        let out = d.serialize();
        let d2 = Document::parse(&out).unwrap();
        assert_eq!(d2.serialize(), out);
        assert!(out.contains("&lt;"));
    }

    #[test]
    fn empty_document_serializes_empty() {
        let d = Document::new();
        assert_eq!(d.serialize(), "");
    }

    #[test]
    fn serialize_subtree_only() {
        let d = Document::parse("<a><b>x</b><c/></a>").unwrap();
        let root = d.root().unwrap();
        let b = d.first_child(root).unwrap();
        assert_eq!(d.serialize_subtree(b), "<b>x</b>");
    }

    #[test]
    fn deep_tree_serialization_iterative() {
        let mut d = Document::new();
        let root = d.create_element("n");
        d.set_root(root);
        let mut cur = root;
        for _ in 0..50_000 {
            let c = d.create_element("n");
            d.append_child(cur, c);
            cur = c;
        }
        let s = d.serialize();
        assert!(s.starts_with("<n><n>"));
        assert!(s.ends_with("</n></n>"));
    }
}
