use xust_intern::{Interner, IntoSym, Sym};

use crate::iter::{Ancestors, Children, Descendants};
use crate::node::{NodeData, NodeId, NodeKind, NIL};

/// An XML document: a node arena plus a distinguished root element.
///
/// Editing operations implement exactly the four update primitives of the
/// paper (Section 2): `insert e into p` ([`Document::append_child`] of a
/// copied subtree), `delete p` ([`Document::detach`]),
/// `replace p with e` ([`Document::replace`]), and `rename p as l`
/// ([`Document::rename`]).
#[derive(Debug, Clone, Default)]
pub struct Document {
    pub(crate) nodes: Vec<NodeData>,
    pub(crate) root: u32,
    /// Arena slots recycled by [`Document::delete`]/[`Document::replace`];
    /// [`Document::alloc`] reuses them before growing the arena, so
    /// long-lived documents stay bounded under repeated edit cycles.
    pub(crate) free: Vec<u32>,
}

impl Document {
    /// Creates an empty document (no root yet).
    pub fn new() -> Self {
        Document {
            nodes: Vec::new(),
            root: NIL,
            free: Vec::new(),
        }
    }

    /// Creates an empty document with arena capacity for `n` nodes.
    pub fn with_capacity(n: usize) -> Self {
        Document {
            nodes: Vec::with_capacity(n),
            root: NIL,
            free: Vec::new(),
        }
    }

    /// The root element, if set.
    pub fn root(&self) -> Option<NodeId> {
        NodeId::from_raw(self.root)
    }

    /// Sets the root element. The node must be detached (no parent).
    pub fn set_root(&mut self, node: NodeId) {
        debug_assert_eq!(self.nodes[node.index()].parent, NIL);
        self.root = node.0;
    }

    /// Number of slots in the arena (includes detached nodes and slots
    /// waiting on the free list).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Number of recycled slots currently available for reuse.
    pub fn free_slots(&self) -> usize {
        self.free.len()
    }

    /// Number of nodes reachable from the root.
    pub fn node_count(&self) -> usize {
        match self.root() {
            Some(r) => self.descendants_or_self(r).count(),
            None => 0,
        }
    }

    // ---- construction ----

    fn alloc(&mut self, kind: NodeKind) -> NodeId {
        if let Some(slot) = self.free.pop() {
            self.nodes[slot as usize] = NodeData::new(kind);
            return NodeId(slot);
        }
        let id = self.nodes.len() as u32;
        assert!(id != NIL, "document arena full");
        self.nodes.push(NodeData::new(kind));
        NodeId(id)
    }

    /// Creates a detached element node.
    pub fn create_element(&mut self, name: impl IntoSym) -> NodeId {
        self.alloc(NodeKind::Element {
            name: name.into_sym(),
            attrs: Vec::new(),
        })
    }

    /// Creates a detached element node with attributes.
    pub fn create_element_with_attrs(
        &mut self,
        name: impl IntoSym,
        attrs: Vec<(Sym, String)>,
    ) -> NodeId {
        self.alloc(NodeKind::Element {
            name: name.into_sym(),
            attrs,
        })
    }

    /// Creates a detached text node.
    pub fn create_text(&mut self, text: impl Into<String>) -> NodeId {
        self.alloc(NodeKind::Text(text.into()))
    }

    // ---- accessors ----

    /// The node's payload.
    pub fn kind(&self, node: NodeId) -> &NodeKind {
        &self.nodes[node.index()].kind
    }

    /// Element name (None for text nodes).
    pub fn name(&self, node: NodeId) -> Option<&'static str> {
        self.nodes[node.index()].kind.name()
    }

    /// Interned element name (None for text nodes) — the label the
    /// automata compare against, with no string work.
    pub fn name_sym(&self, node: NodeId) -> Option<Sym> {
        self.nodes[node.index()].kind.name_sym()
    }

    /// True if `node` is an element.
    pub fn is_element(&self, node: NodeId) -> bool {
        self.nodes[node.index()].kind.is_element()
    }

    /// True if `node` is a text node.
    pub fn is_text(&self, node: NodeId) -> bool {
        self.nodes[node.index()].kind.is_text()
    }

    /// Text content of a text node (None for elements).
    pub fn text(&self, node: NodeId) -> Option<&str> {
        match &self.nodes[node.index()].kind {
            NodeKind::Text(t) => Some(t),
            NodeKind::Element { .. } => None,
        }
    }

    /// Attributes of an element (empty slice for text nodes).
    pub fn attrs(&self, node: NodeId) -> &[(Sym, String)] {
        match &self.nodes[node.index()].kind {
            NodeKind::Element { attrs, .. } => attrs,
            NodeKind::Text(_) => &[],
        }
    }

    /// Value of the attribute `name`, if present. A label the global
    /// interner has never seen cannot name any attribute, so the miss
    /// costs one hash lookup and no scan.
    pub fn attr(&self, node: NodeId, name: &str) -> Option<&str> {
        let name = Interner::global().lookup(name)?;
        self.attr_sym(node, name)
    }

    /// Value of the attribute with interned name `name`, if present.
    pub fn attr_sym(&self, node: NodeId, name: Sym) -> Option<&str> {
        self.attrs(node)
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or adds) an attribute on an element.
    pub fn set_attr(&mut self, node: NodeId, name: impl IntoSym, value: impl Into<String>) {
        if let NodeKind::Element { attrs, .. } = &mut self.nodes[node.index()].kind {
            let name = name.into_sym();
            let value = value.into();
            if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == name) {
                slot.1 = value;
            } else {
                attrs.push((name, value));
            }
        }
    }

    /// Concatenation of the *immediate* text children — the `text()` used
    /// by qualifier comparisons in the paper's QualDP case
    /// `ǫ = 's' → satn(q) := (text() = s)`.
    pub fn immediate_text(&self, node: NodeId) -> String {
        let mut out = String::new();
        for c in self.children(node) {
            if let NodeKind::Text(t) = self.kind(c) {
                out.push_str(t);
            }
        }
        out
    }

    /// XPath string-value: concatenation of all descendant text.
    pub fn string_value(&self, node: NodeId) -> String {
        let mut out = String::new();
        for n in self.descendants_or_self(node) {
            if let NodeKind::Text(t) = self.kind(n) {
                out.push_str(t);
            }
        }
        out
    }

    // ---- links ----

    /// Parent node, if any.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        NodeId::from_raw(self.nodes[node.index()].parent)
    }

    /// First (left-most) child.
    pub fn first_child(&self, node: NodeId) -> Option<NodeId> {
        NodeId::from_raw(self.nodes[node.index()].first_child)
    }

    /// Last (right-most) child.
    pub fn last_child(&self, node: NodeId) -> Option<NodeId> {
        NodeId::from_raw(self.nodes[node.index()].last_child)
    }

    /// Immediate right sibling.
    pub fn next_sibling(&self, node: NodeId) -> Option<NodeId> {
        NodeId::from_raw(self.nodes[node.index()].next_sibling)
    }

    /// Immediate left sibling.
    pub fn prev_sibling(&self, node: NodeId) -> Option<NodeId> {
        NodeId::from_raw(self.nodes[node.index()].prev_sibling)
    }

    /// Iterator over direct children in document order.
    pub fn children(&self, node: NodeId) -> Children<'_> {
        Children::new(self, self.first_child(node))
    }

    /// Iterator over element children only.
    pub fn element_children(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(node).filter(move |&c| self.is_element(c))
    }

    /// Preorder iterator over `node` and all its descendants.
    pub fn descendants_or_self(&self, node: NodeId) -> Descendants<'_> {
        Descendants::new(self, node)
    }

    /// Iterator over ancestors, nearest first.
    pub fn ancestors(&self, node: NodeId) -> Ancestors<'_> {
        Ancestors::new(self, node)
    }

    /// Depth of the node (root is 0).
    pub fn depth(&self, node: NodeId) -> usize {
        self.ancestors(node).count()
    }

    // ---- editing (the paper's update primitives) ----

    /// Appends `child` as the *last* child of `parent` — the placement
    /// mandated by `insert e into p` ("adds e as the rightmost child").
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert_eq!(
            self.nodes[child.index()].parent,
            NIL,
            "child must be detached"
        );
        let old_last = self.nodes[parent.index()].last_child;
        self.nodes[child.index()].parent = parent.0;
        self.nodes[child.index()].prev_sibling = old_last;
        self.nodes[child.index()].next_sibling = NIL;
        if old_last == NIL {
            self.nodes[parent.index()].first_child = child.0;
        } else {
            self.nodes[old_last as usize].next_sibling = child.0;
        }
        self.nodes[parent.index()].last_child = child.0;
    }

    /// Prepends `child` as the *first* child of `parent` —
    /// `insert e as first into p`.
    pub fn prepend_child(&mut self, parent: NodeId, child: NodeId) {
        debug_assert_eq!(
            self.nodes[child.index()].parent,
            NIL,
            "child must be detached"
        );
        let old_first = self.nodes[parent.index()].first_child;
        self.nodes[child.index()].parent = parent.0;
        self.nodes[child.index()].prev_sibling = NIL;
        self.nodes[child.index()].next_sibling = old_first;
        if old_first == NIL {
            self.nodes[parent.index()].last_child = child.0;
        } else {
            self.nodes[old_first as usize].prev_sibling = child.0;
        }
        self.nodes[parent.index()].first_child = child.0;
    }

    /// Inserts `node` immediately after `reference` (which must have a
    /// parent) — `insert e after p`.
    pub fn insert_after(&mut self, reference: NodeId, node: NodeId) {
        let parent = self.nodes[reference.index()].parent;
        debug_assert_ne!(parent, NIL, "reference must have a parent");
        let next = self.nodes[reference.index()].next_sibling;
        self.nodes[node.index()].parent = parent;
        self.nodes[node.index()].prev_sibling = reference.0;
        self.nodes[node.index()].next_sibling = next;
        self.nodes[reference.index()].next_sibling = node.0;
        if next == NIL {
            self.nodes[parent as usize].last_child = node.0;
        } else {
            self.nodes[next as usize].prev_sibling = node.0;
        }
    }

    /// Inserts `node` immediately before `reference` (which must have a
    /// parent).
    pub fn insert_before(&mut self, reference: NodeId, node: NodeId) {
        let parent = self.nodes[reference.index()].parent;
        debug_assert_ne!(parent, NIL, "reference must have a parent");
        let prev = self.nodes[reference.index()].prev_sibling;
        self.nodes[node.index()].parent = parent;
        self.nodes[node.index()].prev_sibling = prev;
        self.nodes[node.index()].next_sibling = reference.0;
        self.nodes[reference.index()].prev_sibling = node.0;
        if prev == NIL {
            self.nodes[parent as usize].first_child = node.0;
        } else {
            self.nodes[prev as usize].next_sibling = node.0;
        }
    }

    /// Detaches `node` (and its subtree) from its parent — `delete p`.
    /// The slot remains in the arena but is unreachable from the root.
    pub fn detach(&mut self, node: NodeId) {
        let data = &self.nodes[node.index()];
        let (parent, prev, next) = (data.parent, data.prev_sibling, data.next_sibling);
        if prev != NIL {
            self.nodes[prev as usize].next_sibling = next;
        } else if parent != NIL {
            self.nodes[parent as usize].first_child = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev_sibling = prev;
        } else if parent != NIL {
            self.nodes[parent as usize].last_child = prev;
        }
        let data = &mut self.nodes[node.index()];
        data.parent = NIL;
        data.prev_sibling = NIL;
        data.next_sibling = NIL;
        if self.root == node.0 {
            self.root = NIL;
        }
    }

    /// Replaces `old` with `new` in the tree — `replace p with e`.
    /// `new` must be detached. The `old` subtree's arena slots are
    /// recycled: its `NodeId`s must not be used afterwards.
    pub fn replace(&mut self, old: NodeId, new: NodeId) {
        if self.nodes[old.index()].parent == NIL {
            // Replacing the root.
            if self.root == old.0 {
                self.root = new.0;
                self.recycle(old);
            }
            return;
        }
        self.insert_before(old, new);
        self.detach(old);
        self.recycle(old);
    }

    /// Removes `node` permanently — `delete p` — and recycles its whole
    /// subtree's arena slots for reuse by later allocations, so repeated
    /// insert/delete cycles keep the arena bounded. Unlike
    /// [`Document::detach`] (which keeps the subtree alive for
    /// re-insertion), the deleted `NodeId`s must not be used afterwards.
    pub fn delete(&mut self, node: NodeId) {
        if self.nodes[node.index()].freed {
            // Already recycled: an earlier delete covered this node (the
            // target list contained an ancestor).
            return;
        }
        self.detach(node);
        self.recycle(node);
    }

    /// Pushes every slot of the (already detached) subtree at `node`
    /// onto the free list, dropping the payloads.
    fn recycle(&mut self, node: NodeId) {
        if self.nodes[node.index()].freed {
            return;
        }
        let subtree: Vec<NodeId> = self.descendants_or_self(node).collect();
        for n in subtree {
            let data = &mut self.nodes[n.index()];
            data.parent = NIL;
            data.first_child = NIL;
            data.last_child = NIL;
            data.prev_sibling = NIL;
            data.next_sibling = NIL;
            data.freed = true;
            data.kind = NodeKind::Text(String::new());
            self.free.push(n.0);
        }
    }

    /// Renames an element — `rename p as l`. No-op on text nodes.
    pub fn rename(&mut self, node: NodeId, new_name: impl IntoSym) {
        if let NodeKind::Element { name, .. } = &mut self.nodes[node.index()].kind {
            *name = new_name.into_sym();
        }
    }

    /// Compares two nodes by document order (preorder position). An
    /// ancestor precedes its descendants. Cost is O(depth + sibling
    /// distance at the divergence point) per comparison — no global
    /// index is maintained, so edits never invalidate anything.
    pub fn doc_order_cmp(&self, a: NodeId, b: NodeId) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        if a == b {
            return Ordering::Equal;
        }
        // Root-to-node ancestor chains (inclusive).
        let chain = |n: NodeId| -> Vec<NodeId> {
            let mut c: Vec<NodeId> = std::iter::successors(Some(n), |&x| self.parent(x)).collect();
            c.reverse();
            c
        };
        let ca = chain(a);
        let cb = chain(b);
        let mut k = 0;
        while k < ca.len() && k < cb.len() && ca[k] == cb[k] {
            k += 1;
        }
        match (ca.get(k), cb.get(k)) {
            // One is an ancestor of the other: the ancestor comes first.
            (None, _) => Ordering::Less,
            (_, None) => Ordering::Greater,
            (Some(&x), Some(&y)) => {
                // Siblings under ca[k-1]: whichever is reached first
                // walking the sibling list precedes.
                let mut cur = Some(x);
                while let Some(n) = cur {
                    if n == y {
                        return Ordering::Less;
                    }
                    cur = self.next_sibling(n);
                }
                Ordering::Greater
            }
        }
    }

    /// Deep-copies the subtree rooted at `src_node` of `src` into `self`,
    /// returning the new detached root of the copy.
    pub fn deep_copy_from(&mut self, src: &Document, src_node: NodeId) -> NodeId {
        let new_root = self.alloc(src.nodes[src_node.index()].kind.clone());
        // Iterative copy to avoid recursion depth limits: stack of
        // (source child, destination parent). Children are pushed in
        // reverse — walking the sibling chain backwards from
        // `last_child` — so they pop (and append) in document order
        // with no per-node scratch allocation.
        let mut stack: Vec<(NodeId, NodeId)> = Vec::new();
        let push_children_rev = |stack: &mut Vec<(NodeId, NodeId)>, from: NodeId, to: NodeId| {
            let mut c = src.nodes[from.index()].last_child;
            while c != NIL {
                stack.push((NodeId(c), to));
                c = src.nodes[c as usize].prev_sibling;
            }
        };
        push_children_rev(&mut stack, src_node, new_root);
        while let Some((src_child, dst_parent)) = stack.pop() {
            let copy = self.alloc(src.nodes[src_child.index()].kind.clone());
            self.append_child(dst_parent, copy);
            push_children_rev(&mut stack, src_child, copy);
        }
        new_root
    }

    /// Deep-copies a subtree *within* this document (needed when an insert
    /// targets many nodes: each gets a fresh copy of `e`).
    pub fn deep_copy(&mut self, node: NodeId) -> NodeId {
        let src = self.clone_subtree_kinds(node);
        self.rebuild_from_kinds(&src)
    }

    fn clone_subtree_kinds(&self, node: NodeId) -> Vec<(usize, NodeKind)> {
        // (depth, kind) pairs in preorder.
        let mut out = Vec::new();
        let base_depth = self.depth(node);
        for n in self.descendants_or_self(node) {
            out.push((self.depth(n) - base_depth, self.kind(n).clone()));
        }
        out
    }

    fn rebuild_from_kinds(&mut self, items: &[(usize, NodeKind)]) -> NodeId {
        let root = self.alloc(items[0].1.clone());
        let mut path: Vec<NodeId> = vec![root];
        for (depth, kind) in &items[1..] {
            let node = self.alloc(kind.clone());
            path.truncate(*depth);
            let parent = *path.last().expect("preorder depth sequence is valid");
            self.append_child(parent, node);
            path.push(node);
        }
        root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Document, NodeId, NodeId, NodeId) {
        let mut d = Document::new();
        let root = d.create_element("db");
        d.set_root(root);
        let part = d.create_element("part");
        d.append_child(root, part);
        let pname = d.create_element("pname");
        d.append_child(part, pname);
        let t = d.create_text("keyboard");
        d.append_child(pname, t);
        (d, root, part, pname)
    }

    #[test]
    fn build_and_navigate() {
        let (d, root, part, pname) = sample();
        assert_eq!(d.root(), Some(root));
        assert_eq!(d.parent(part), Some(root));
        assert_eq!(d.first_child(root), Some(part));
        assert_eq!(d.last_child(part), Some(pname));
        assert_eq!(d.name(pname), Some("pname"));
        assert_eq!(d.node_count(), 4);
    }

    #[test]
    fn immediate_text_and_string_value() {
        let (d, root, _, pname) = sample();
        assert_eq!(d.immediate_text(pname), "keyboard");
        assert_eq!(d.immediate_text(root), "");
        assert_eq!(d.string_value(root), "keyboard");
    }

    #[test]
    fn attributes() {
        let mut d = Document::new();
        let e = d.create_element_with_attrs("a", vec![("id".into(), "x1".into())]);
        assert_eq!(d.attr(e, "id"), Some("x1"));
        assert_eq!(d.attr(e, "nope"), None);
        d.set_attr(e, "id", "y2");
        d.set_attr(e, "k", "v");
        assert_eq!(d.attr(e, "id"), Some("y2"));
        assert_eq!(d.attr(e, "k"), Some("v"));
    }

    #[test]
    fn append_maintains_sibling_chain() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.set_root(r);
        let a = d.create_element("a");
        let b = d.create_element("b");
        let c = d.create_element("c");
        d.append_child(r, a);
        d.append_child(r, b);
        d.append_child(r, c);
        let kids: Vec<_> = d.children(r).collect();
        assert_eq!(kids, vec![a, b, c]);
        assert_eq!(d.prev_sibling(b), Some(a));
        assert_eq!(d.next_sibling(b), Some(c));
        assert_eq!(d.last_child(r), Some(c));
    }

    #[test]
    fn detach_middle_child() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.set_root(r);
        let a = d.create_element("a");
        let b = d.create_element("b");
        let c = d.create_element("c");
        d.append_child(r, a);
        d.append_child(r, b);
        d.append_child(r, c);
        d.detach(b);
        let kids: Vec<_> = d.children(r).collect();
        assert_eq!(kids, vec![a, c]);
        assert_eq!(d.parent(b), None);
        assert_eq!(d.next_sibling(a), Some(c));
        assert_eq!(d.prev_sibling(c), Some(a));
    }

    #[test]
    fn detach_first_and_last() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.set_root(r);
        let a = d.create_element("a");
        let b = d.create_element("b");
        d.append_child(r, a);
        d.append_child(r, b);
        d.detach(a);
        assert_eq!(d.first_child(r), Some(b));
        d.detach(b);
        assert_eq!(d.first_child(r), None);
        assert_eq!(d.last_child(r), None);
    }

    #[test]
    fn replace_node() {
        let (mut d, _, part, _) = sample();
        let sub = d.create_element("widget");
        d.replace(part, sub);
        let root = d.root().unwrap();
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids.len(), 1);
        assert_eq!(d.name(kids[0]), Some("widget"));
    }

    #[test]
    fn replace_root() {
        let (mut d, root, _, _) = sample();
        let new_root = d.create_element("newdb");
        d.replace(root, new_root);
        assert_eq!(d.root(), Some(new_root));
    }

    #[test]
    fn rename_element() {
        let (mut d, _, part, _) = sample();
        d.rename(part, "component");
        assert_eq!(d.name(part), Some("component"));
    }

    #[test]
    fn rename_text_noop() {
        let mut d = Document::new();
        let t = d.create_text("x");
        d.rename(t, "y");
        assert!(d.is_text(t));
    }

    #[test]
    fn deep_copy_from_other_document() {
        let (src, _, part, _) = sample();
        let mut dst = Document::new();
        let copy = dst.deep_copy_from(&src, part);
        assert_eq!(dst.name(copy), Some("part"));
        assert!(crate::eq::deep_eq(&src, part, &dst, copy));
    }

    #[test]
    fn deep_copy_within_document() {
        let (mut d, root, part, _) = sample();
        let copy = d.deep_copy(part);
        assert!(crate::eq::deep_eq(&d, part, &d, copy));
        d.append_child(root, copy);
        assert_eq!(d.children(root).count(), 2);
    }

    #[test]
    fn insert_before_front() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.set_root(r);
        let a = d.create_element("a");
        d.append_child(r, a);
        let z = d.create_element("z");
        d.insert_before(a, z);
        let kids: Vec<_> = d.children(r).collect();
        assert_eq!(d.name(kids[0]), Some("z"));
        assert_eq!(d.first_child(r), Some(z));
    }

    #[test]
    fn depth_and_ancestors() {
        let (d, root, part, pname) = sample();
        assert_eq!(d.depth(root), 0);
        assert_eq!(d.depth(pname), 2);
        let anc: Vec<_> = d.ancestors(pname).collect();
        assert_eq!(anc, vec![part, root]);
    }

    #[test]
    fn prepend_child_orders() {
        let mut d = Document::new();
        let r = d.create_element("r");
        d.set_root(r);
        let a = d.create_element("a");
        d.prepend_child(r, a); // into empty parent
        let b = d.create_element("b");
        d.prepend_child(r, b); // in front of a
        let names: Vec<_> = d
            .children(r)
            .map(|c| d.name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, ["b", "a"]);
        assert_eq!(d.first_child(r), Some(b));
        assert_eq!(d.last_child(r), Some(a));
        assert_eq!(d.prev_sibling(a), Some(b));
        assert_eq!(d.next_sibling(b), Some(a));
    }

    #[test]
    fn insert_after_middle_and_end() {
        let mut d = Document::parse("<r><a/><b/></r>").unwrap();
        let r = d.root().unwrap();
        let a = d.first_child(r).unwrap();
        let b = d.last_child(r).unwrap();
        let x = d.create_element("x");
        d.insert_after(a, x); // middle
        let y = d.create_element("y");
        d.insert_after(b, y); // end — must update last_child
        let names: Vec<_> = d
            .children(r)
            .map(|c| d.name(c).unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "x", "b", "y"]);
        assert_eq!(d.last_child(r), Some(y));
        assert_eq!(d.serialize(), "<r><a/><x/><b/><y/></r>");
    }

    #[test]
    fn delete_recycles_subtree_slots() {
        let mut d = Document::parse("<r><a><b>t</b></a><c/></r>").unwrap();
        let r = d.root().unwrap();
        let a = d.first_child(r).unwrap();
        let before = d.arena_len();
        d.delete(a); // a, b, and the text node: three slots recycled
        assert_eq!(d.free_slots(), 3);
        // New allocations reuse the freed slots before growing the arena.
        let x = d.create_element("x");
        let y = d.create_text("y");
        d.append_child(r, x);
        d.append_child(x, y);
        assert_eq!(d.arena_len(), before);
        assert_eq!(d.free_slots(), 1);
        assert_eq!(d.serialize(), "<r><c/><x>y</x></r>");
    }

    #[test]
    fn replace_recycles_old_subtree() {
        let mut d = Document::parse("<r><old><deep/></old></r>").unwrap();
        let r = d.root().unwrap();
        let old = d.first_child(r).unwrap();
        let new = d.create_element("new");
        d.replace(old, new);
        assert_eq!(d.free_slots(), 2);
        assert_eq!(d.serialize(), "<r><new/></r>");
        // Replacing the root recycles the old root's subtree too.
        let new_root = d.create_element("r2");
        let r = d.root().unwrap();
        d.replace(r, new_root);
        assert_eq!(d.serialize(), "<r2/>");
        assert!(d.free_slots() >= 2);
    }

    #[test]
    fn delete_is_idempotent_under_nested_targets() {
        // `//a` style target lists can contain both an ancestor and its
        // descendant; the second delete must not double-free the slot.
        let mut d = Document::parse("<r><a><a/></a></r>").unwrap();
        let r = d.root().unwrap();
        let outer = d.first_child(r).unwrap();
        let inner = d.first_child(outer).unwrap();
        d.delete(outer);
        d.delete(inner); // already recycled: no-op
        assert_eq!(d.free_slots(), 2);
        let x = d.create_element("x");
        let y = d.create_element("y");
        d.append_child(r, x);
        d.append_child(r, y);
        // Both came from the free list; no slot was handed out twice.
        assert_ne!(x, y);
        assert_eq!(d.free_slots(), 0);
        assert_eq!(d.serialize(), "<r><x/><y/></r>");
    }

    #[test]
    fn arena_stays_bounded_across_insert_delete_cycles() {
        // The regression the free list exists for: a long-lived document
        // under a repeated insert→delete workload must not grow its
        // arena without bound.
        let mut d = Document::parse("<r><keep/></r>").unwrap();
        let r = d.root().unwrap();
        let mut high_water = 0;
        for cycle in 0..100 {
            let sub = d.create_element("tmp");
            let t = d.create_text("payload");
            d.append_child(sub, t);
            d.append_child(r, sub);
            if cycle == 0 {
                high_water = d.arena_len();
            } else {
                assert_eq!(
                    d.arena_len(),
                    high_water,
                    "arena grew on cycle {cycle}: slots are leaking"
                );
            }
            d.delete(sub);
        }
        assert_eq!(d.serialize(), "<r><keep/></r>");
    }

    #[test]
    fn doc_order_cmp_total_order() {
        use std::cmp::Ordering;
        let d = Document::parse("<r><a><b/><c><d/></c></a><e/></r>").unwrap();
        let root = d.root().unwrap();
        // Preorder traversal is the expected document order.
        let order: Vec<NodeId> = d.descendants_or_self(root).collect();
        for (i, &x) in order.iter().enumerate() {
            for (j, &y) in order.iter().enumerate() {
                let expect = i.cmp(&j);
                assert_eq!(d.doc_order_cmp(x, y), expect, "pair ({i},{j})");
            }
        }
        assert_eq!(d.doc_order_cmp(root, root), Ordering::Equal);
        // Sorting a shuffled set restores preorder.
        let mut shuffled: Vec<NodeId> = order.iter().rev().copied().collect();
        shuffled.sort_by(|&a, &b| d.doc_order_cmp(a, b));
        assert_eq!(shuffled, order);
    }
}
