use crate::document::Document;
use crate::node::{NodeId, NodeKind};

/// Structural equality of two subtrees, possibly from different documents.
///
/// Elements compare by name, attribute list (order-sensitive, as in the
/// serialized form), and child sequence; text nodes by content. This is
/// the notion of equality the cross-method equivalence tests use: two
/// evaluation algorithms agree iff their results are `deep_eq`.
pub fn deep_eq(da: &Document, a: NodeId, db: &Document, b: NodeId) -> bool {
    // Iterative pairwise comparison.
    let mut stack = vec![(a, b)];
    while let Some((x, y)) = stack.pop() {
        match (da.kind(x), db.kind(y)) {
            (NodeKind::Text(tx), NodeKind::Text(ty)) => {
                if tx != ty {
                    return false;
                }
            }
            (
                NodeKind::Element {
                    name: nx,
                    attrs: ax,
                },
                NodeKind::Element {
                    name: ny,
                    attrs: ay,
                },
            ) => {
                if nx != ny || ax != ay {
                    return false;
                }
                let cx: Vec<NodeId> = da.children(x).collect();
                let cy: Vec<NodeId> = db.children(y).collect();
                if cx.len() != cy.len() {
                    return false;
                }
                stack.extend(cx.into_iter().zip(cy));
            }
            _ => return false,
        }
    }
    true
}

/// Whole-document structural equality.
pub fn docs_eq(da: &Document, db: &Document) -> bool {
    match (da.root(), db.root()) {
        (Some(a), Some(b)) => deep_eq(da, a, db, b),
        (None, None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_trees() {
        let a = Document::parse("<a x=\"1\"><b>t</b></a>").unwrap();
        let b = Document::parse("<a x=\"1\"><b>t</b></a>").unwrap();
        assert!(docs_eq(&a, &b));
    }

    #[test]
    fn different_name() {
        let a = Document::parse("<a/>").unwrap();
        let b = Document::parse("<b/>").unwrap();
        assert!(!docs_eq(&a, &b));
    }

    #[test]
    fn different_attr_value() {
        let a = Document::parse("<a x=\"1\"/>").unwrap();
        let b = Document::parse("<a x=\"2\"/>").unwrap();
        assert!(!docs_eq(&a, &b));
    }

    #[test]
    fn different_child_count() {
        let a = Document::parse("<a><b/></a>").unwrap();
        let b = Document::parse("<a><b/><b/></a>").unwrap();
        assert!(!docs_eq(&a, &b));
    }

    #[test]
    fn different_text() {
        let a = Document::parse("<a>x</a>").unwrap();
        let b = Document::parse("<a>y</a>").unwrap();
        assert!(!docs_eq(&a, &b));
    }

    #[test]
    fn text_vs_element_child() {
        let a = Document::parse("<a>b</a>").unwrap();
        let b = Document::parse("<a><b/></a>").unwrap();
        assert!(!docs_eq(&a, &b));
    }

    #[test]
    fn empty_documents_equal() {
        assert!(docs_eq(&Document::new(), &Document::new()));
    }
}
