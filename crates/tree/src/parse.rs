use std::fmt;
use std::io::Read;
use std::path::Path;

use xust_sax::{SaxError, SaxEvent, SaxParser};

use crate::document::Document;
use crate::node::NodeId;

/// Error raised when building a [`Document`] from XML text.
#[derive(Debug)]
pub struct TreeParseError(pub SaxError);

impl fmt::Display for TreeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error: {}", self.0)
    }
}

impl std::error::Error for TreeParseError {}

impl From<SaxError> for TreeParseError {
    fn from(e: SaxError) -> Self {
        TreeParseError(e)
    }
}

impl Document {
    /// Parses a complete XML document from a string.
    pub fn parse(xml: &str) -> Result<Document, TreeParseError> {
        Self::from_sax(SaxParser::from_str(xml))
    }

    /// Parses a complete XML document from a file.
    pub fn parse_file(path: impl AsRef<Path>) -> Result<Document, TreeParseError> {
        Self::from_sax(SaxParser::from_file(path)?)
    }

    /// Builds a document by draining a SAX parser.
    pub fn from_sax<R: Read>(mut parser: SaxParser<R>) -> Result<Document, TreeParseError> {
        let mut doc = Document::new();
        let mut stack: Vec<NodeId> = Vec::new();
        while let Some(ev) = parser.next_event()? {
            match ev {
                SaxEvent::StartDocument | SaxEvent::EndDocument => {}
                SaxEvent::StartElement { name, attrs } => {
                    let node = doc.create_element_with_attrs(name, attrs);
                    match stack.last() {
                        Some(&parent) => doc.append_child(parent, node),
                        None => doc.set_root(node),
                    }
                    stack.push(node);
                }
                SaxEvent::Text(t) => {
                    if let Some(&parent) = stack.last() {
                        let node = doc.create_text(t);
                        doc.append_child(parent, node);
                    }
                    // Whitespace outside the root is skipped by the SAX
                    // layer; any other text there is a syntax error that
                    // the parser already rejects.
                }
                SaxEvent::EndElement(_) => {
                    stack.pop();
                }
            }
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple() {
        let d = Document::parse("<db><part pname='kb'><sub/></part>text</db>").unwrap();
        let root = d.root().unwrap();
        assert_eq!(d.name(root), Some("db"));
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.attr(kids[0], "pname"), Some("kb"));
        assert_eq!(d.text(kids[1]), Some("text"));
    }

    #[test]
    fn parse_error_propagates() {
        assert!(Document::parse("<a><b></a>").is_err());
        assert!(Document::parse("not xml").is_err());
    }

    #[test]
    fn parse_preserves_mixed_content_order() {
        let d = Document::parse("<a>x<b/>y<c/>z</a>").unwrap();
        let root = d.root().unwrap();
        let parts: Vec<String> = d
            .children(root)
            .map(|n| match d.name(n) {
                Some(name) => format!("<{name}>"),
                None => d.text(n).unwrap().to_string(),
            })
            .collect();
        assert_eq!(parts, ["x", "<b>", "y", "<c>", "z"]);
    }

    #[test]
    fn parse_file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("xust_tree_parse_test.xml");
        std::fs::write(&path, "<r><a>1</a></r>").unwrap();
        let d = Document::parse_file(&path).unwrap();
        assert_eq!(d.serialize(), "<r><a>1</a></r>");
        std::fs::remove_file(&path).ok();
    }
}
