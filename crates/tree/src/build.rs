use xust_intern::{IntoSym, Sym};

use crate::document::Document;
use crate::node::NodeId;

/// Fluent builder for constructing element subtrees in tests and examples.
///
/// ```
/// use xust_tree::{Document, ElementBuilder};
///
/// let mut doc = Document::new();
/// let node = ElementBuilder::new("supplier")
///     .attr("country", "US")
///     .child(ElementBuilder::new("sname").text("HP"))
///     .child(ElementBuilder::new("price").text("12"))
///     .build(&mut doc);
/// assert_eq!(
///     doc.serialize_subtree(node),
///     "<supplier country=\"US\"><sname>HP</sname><price>12</price></supplier>"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct ElementBuilder {
    name: Sym,
    attrs: Vec<(Sym, String)>,
    children: Vec<Child>,
}

#[derive(Debug, Clone)]
enum Child {
    Element(ElementBuilder),
    Text(String),
}

impl ElementBuilder {
    /// Starts a new element.
    pub fn new(name: impl IntoSym) -> Self {
        ElementBuilder {
            name: name.into_sym(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute.
    pub fn attr(mut self, name: impl IntoSym, value: impl Into<String>) -> Self {
        self.attrs.push((name.into_sym(), value.into()));
        self
    }

    /// Adds an element child.
    pub fn child(mut self, child: ElementBuilder) -> Self {
        self.children.push(Child::Element(child));
        self
    }

    /// Adds a text child.
    pub fn text(mut self, text: impl Into<String>) -> Self {
        self.children.push(Child::Text(text.into()));
        self
    }

    /// Materializes the subtree into `doc`, returning its detached root.
    pub fn build(self, doc: &mut Document) -> NodeId {
        let node = doc.create_element_with_attrs(self.name, self.attrs);
        for child in self.children {
            let c = match child {
                Child::Element(b) => b.build(doc),
                Child::Text(t) => doc.create_text(t),
            };
            doc.append_child(node, c);
        }
        node
    }

    /// Builds a fresh document whose root is this element.
    pub fn build_document(self) -> Document {
        let mut doc = Document::new();
        let root = self.build(&mut doc);
        doc.set_root(root);
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_builder() {
        let doc = ElementBuilder::new("db")
            .child(
                ElementBuilder::new("part")
                    .attr("id", "p1")
                    .child(ElementBuilder::new("pname").text("keyboard")),
            )
            .build_document();
        assert_eq!(
            doc.serialize(),
            "<db><part id=\"p1\"><pname>keyboard</pname></part></db>"
        );
    }

    #[test]
    fn mixed_content() {
        let doc = ElementBuilder::new("p")
            .text("a")
            .child(ElementBuilder::new("b").text("c"))
            .text("d")
            .build_document();
        assert_eq!(doc.serialize(), "<p>a<b>c</b>d</p>");
    }
}
