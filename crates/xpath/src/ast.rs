//! AST for the XPath fragment **X** of the paper (Section 2):
//!
//! ```text
//! p ::= ε | l | * | p/p | p//p | p[q]
//! q ::= p | p = 's' | label() = l | q ∧ q | q ∨ q | ¬q
//! ```
//!
//! Two practical extensions are required by the paper's own workload
//! (Fig. 11): attribute tests (`@id = "person10"` in U2/U10) and numeric
//! comparisons (`profile/age > 20` in U3, `increase > 10` in U10). Both
//! are straightforward qualifier extensions and do not change the
//! automaton machinery.

use std::fmt;

/// An X path in the paper's normal form β₁\[q₁\]/…/βₖ\[qₖ\]: a sequence of
/// steps, each a β (label, wildcard, or descendant-or-self) with an
/// optional qualifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// The steps, in root-to-leaf order.
    pub steps: Vec<Step>,
}

impl Path {
    /// The empty path ε (selects the context node).
    pub fn empty() -> Self {
        Path { steps: Vec::new() }
    }

    /// True if this is ε.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Total number of syntactic nodes — the |p| of the complexity bounds.
    pub fn size(&self) -> usize {
        self.steps.iter().map(Step::size).sum::<usize>().max(1)
    }
}

/// One step β\[q\].
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The β: label test, wildcard, or descendant-or-self.
    pub kind: StepKind,
    /// Conjunction of all qualifiers written on this step
    /// (`p[q1][q2] ≡ p[q1 ∧ q2]`, normalization rule 3).
    pub qualifier: Option<Qualifier>,
}

impl Step {
    /// Step without qualifier.
    pub fn plain(kind: StepKind) -> Self {
        Step {
            kind,
            qualifier: None,
        }
    }

    /// Syntactic size of this step (1 + its qualifier's size) — the
    /// per-step contribution to |p|.
    pub fn size(&self) -> usize {
        1 + self.qualifier.as_ref().map_or(0, Qualifier::size)
    }
}

/// The β of a step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepKind {
    /// A label test `l` (child axis).
    Label(String),
    /// Wildcard `*` (child axis).
    Wildcard,
    /// `//` — `/descendant-or-self::node()/` as a pseudo-step, exactly how
    /// the selecting-NFA construction treats it (a ∗ self-loop plus an
    /// ε-transition).
    Descendant,
}

/// A qualifier `q`.
#[derive(Debug, Clone, PartialEq)]
pub enum Qualifier {
    /// Existence of a (relative) qualifier path: `[p]`.
    Exists(QPath),
    /// Value comparison `[p op lit]` — existential over the nodes selected
    /// by `p` (ε allowed: `[. = 's']`).
    Cmp(QPath, CmpOp, Literal),
    /// `[label() = l]`.
    LabelIs(String),
    /// Conjunction `q₁ and q₂`.
    And(Box<Qualifier>, Box<Qualifier>),
    /// Disjunction `q₁ or q₂`.
    Or(Box<Qualifier>, Box<Qualifier>),
    /// Negation `not(q)`.
    Not(Box<Qualifier>),
}

impl Qualifier {
    /// Builds `a and b`.
    pub fn and(a: Qualifier, b: Qualifier) -> Qualifier {
        Qualifier::And(Box::new(a), Box::new(b))
    }

    /// Builds `a or b`.
    pub fn or(a: Qualifier, b: Qualifier) -> Qualifier {
        Qualifier::Or(Box::new(a), Box::new(b))
    }

    /// Builds `not(a)`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Qualifier) -> Qualifier {
        Qualifier::Not(Box::new(a))
    }

    /// Syntactic size of this qualifier — its contribution to |p| and a
    /// proxy for per-node evaluation cost (used by the cost hints that
    /// drive `xust-serve`'s method planner).
    pub fn size(&self) -> usize {
        match self {
            Qualifier::Exists(p) => p.size(),
            Qualifier::Cmp(p, _, _) => p.size() + 1,
            Qualifier::LabelIs(_) => 1,
            Qualifier::And(a, b) | Qualifier::Or(a, b) => 1 + a.size() + b.size(),
            Qualifier::Not(a) => 1 + a.size(),
        }
    }
}

/// A path inside a qualifier: a relative X path, optionally ending in an
/// attribute access `@name`.
#[derive(Debug, Clone, PartialEq)]
pub struct QPath {
    /// The relative element path.
    pub path: Path,
    /// Trailing `@name` attribute access, if any.
    pub attr: Option<String>,
}

impl QPath {
    /// ε (the context node itself).
    pub fn self_path() -> Self {
        QPath {
            path: Path::empty(),
            attr: None,
        }
    }

    /// `@name` on the context node.
    pub fn attr_only(name: impl Into<String>) -> Self {
        QPath {
            path: Path::empty(),
            attr: Some(name.into()),
        }
    }

    fn size(&self) -> usize {
        self.path.size() + usize::from(self.attr.is_some())
    }
}

/// Comparison operators available in qualifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// Applies the operator to an ordering between two values.
    pub fn matches(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        matches!(
            (self, ord),
            (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less)
                | (CmpOp::Ne, Greater)
                | (CmpOp::Lt, Less)
                | (CmpOp::Le, Less)
                | (CmpOp::Le, Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater)
                | (CmpOp::Ge, Equal)
        )
    }
}

/// Comparison literals: strings compare for (in)equality as strings;
/// numbers compare numerically against the node's text parsed as f64.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// A string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
}

impl Literal {
    /// Compares a node's string value against this literal under `op`.
    pub fn compare(&self, text: &str, op: CmpOp) -> bool {
        match self {
            Literal::Str(s) => op.matches(text.cmp(s)),
            Literal::Num(n) => match text.trim().parse::<f64>() {
                Ok(v) => v.partial_cmp(n).map(|o| op.matches(o)).unwrap_or(false),
                Err(_) => false,
            },
        }
    }
}

// ---- Display: round-trippable concrete syntax ----

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.steps.is_empty() {
            return write!(f, ".");
        }
        let mut pending_slash = false;
        for step in &self.steps {
            match &step.kind {
                StepKind::Descendant => {
                    write!(f, "//")?;
                    pending_slash = false;
                    continue;
                }
                kind => {
                    if pending_slash {
                        write!(f, "/")?;
                    }
                    write!(f, "{kind}")?;
                }
            }
            if let Some(q) = &step.qualifier {
                write!(f, "[{q}]")?;
            }
            pending_slash = true;
        }
        Ok(())
    }
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepKind::Label(l) => write!(f, "{l}"),
            StepKind::Wildcard => write!(f, "*"),
            StepKind::Descendant => Ok(()), // rendered by Path as '//'
        }
    }
}

impl fmt::Display for Qualifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qualifier::Exists(p) => write!(f, "{p}"),
            Qualifier::Cmp(p, op, lit) => write!(f, "{p} {op} {lit}"),
            Qualifier::LabelIs(l) => write!(f, "label() = {l}"),
            Qualifier::And(a, b) => write!(f, "({a} and {b})"),
            Qualifier::Or(a, b) => write!(f, "({a} or {b})"),
            Qualifier::Not(a) => write!(f, "not({a})"),
        }
    }
}

impl fmt::Display for QPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.path.is_empty(), &self.attr) {
            (true, None) => write!(f, "."),
            (true, Some(a)) => write!(f, "@{a}"),
            (false, None) => write!(f, "{}", self.path),
            (false, Some(a)) => write!(f, "{}/@{a}", self.path),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "\"{s}\""),
            Literal::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_matches() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Eq.matches(Equal));
        assert!(!CmpOp::Eq.matches(Less));
        assert!(CmpOp::Ne.matches(Less));
        assert!(CmpOp::Le.matches(Equal));
        assert!(CmpOp::Le.matches(Less));
        assert!(!CmpOp::Lt.matches(Equal));
        assert!(CmpOp::Ge.matches(Greater));
    }

    #[test]
    fn literal_compare_string() {
        let l = Literal::Str("HP".into());
        assert!(l.compare("HP", CmpOp::Eq));
        assert!(!l.compare("IBM", CmpOp::Eq));
        assert!(l.compare("IBM", CmpOp::Ne));
    }

    #[test]
    fn literal_compare_numeric() {
        let l = Literal::Num(15.0);
        assert!(l.compare("12", CmpOp::Lt));
        assert!(l.compare(" 15 ", CmpOp::Eq));
        assert!(!l.compare("20", CmpOp::Lt));
        assert!(l.compare("20", CmpOp::Gt));
        // Non-numeric text never satisfies a numeric comparison.
        assert!(!l.compare("abc", CmpOp::Lt));
        assert!(!l.compare("abc", CmpOp::Eq));
    }

    #[test]
    fn path_size() {
        let p = Path {
            steps: vec![
                Step::plain(StepKind::Descendant),
                Step {
                    kind: StepKind::Label("part".into()),
                    qualifier: Some(Qualifier::Exists(QPath::self_path())),
                },
            ],
        };
        assert!(p.size() >= 3);
        assert_eq!(Path::empty().size(), 1);
    }
}
