use std::fmt;

/// Tokens of the X fragment's concrete syntax.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/` — child axis separator.
    Slash,
    /// `//` — descendant-or-self shorthand.
    DoubleSlash,
    /// `*` — wildcard node test.
    Star,
    /// `.` — self (ε).
    Dot,
    /// `@` — attribute accessor prefix.
    At,
    /// `[` opening a qualifier.
    LBracket,
    /// `]` closing a qualifier.
    RBracket,
    /// `(` grouping.
    LParen,
    /// `)` grouping.
    RParen,
    /// `=`.
    Eq,
    /// `!=`.
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `and`.
    And,
    /// `or`.
    Or,
    /// `not`.
    Not,
    /// `label()` — the label test of the fragment.
    LabelFn,
    /// `text()` — synonym for `.` in comparison positions.
    TextFn,
    /// An element label.
    Name(String),
    /// A quoted string literal.
    Str(String),
    /// A numeric literal.
    Num(f64),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Slash => write!(f, "/"),
            Token::DoubleSlash => write!(f, "//"),
            Token::Star => write!(f, "*"),
            Token::Dot => write!(f, "."),
            Token::At => write!(f, "@"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "!="),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::Not => write!(f, "not"),
            Token::LabelFn => write!(f, "label()"),
            Token::TextFn => write!(f, "text()"),
            Token::Name(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::Num(n) => write!(f, "{n}"),
        }
    }
}

/// Lexer error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Byte offset of the offending character.
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

/// Tokenizes an X expression. Keywords `and`/`or`/`not` are recognized
/// contextually by the parser where needed; the lexer classifies them
/// eagerly, and the parser re-interprets `Name` vs keyword as required.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '/' => {
                if chars.get(i + 1) == Some(&'/') {
                    out.push(Token::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Token::Slash);
                    i += 1;
                }
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '@' => {
                out.push(Token::At);
                i += 1;
            }
            '[' => {
                out.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Token::RBracket);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != quote {
                    j += 1;
                }
                if j >= chars.len() {
                    return Err(LexError {
                        pos: i,
                        message: "unterminated string literal".into(),
                    });
                }
                out.push(Token::Str(chars[start..j].iter().collect()));
                i = j + 1;
            }
            '.' => {
                if chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // A number like .5
                    let (num, next) = lex_number(&chars, i)?;
                    out.push(Token::Num(num));
                    i = next;
                } else {
                    out.push(Token::Dot);
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let (num, next) = lex_number(&chars, i)?;
                out.push(Token::Num(num));
                i = next;
            }
            c if is_name_start(c) => {
                let start = i;
                let mut j = i;
                while j < chars.len() && is_name_char(chars[j]) {
                    j += 1;
                }
                let name: String = chars[start..j].iter().collect();
                i = j;
                // Function-call forms: name()
                if chars.get(i) == Some(&'(')
                    && chars.get(i + 1) == Some(&')')
                    && matches!(name.as_str(), "label" | "text")
                {
                    out.push(if name == "label" {
                        Token::LabelFn
                    } else {
                        Token::TextFn
                    });
                    i += 2;
                    continue;
                }
                out.push(match name.as_str() {
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    _ => Token::Name(name),
                });
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    message: format!("unexpected character '{c}'"),
                })
            }
        }
    }
    Ok(out)
}

fn lex_number(chars: &[char], start: usize) -> Result<(f64, usize), LexError> {
    let mut j = start;
    let mut seen_dot = false;
    while j < chars.len() {
        let c = chars[j];
        if c.is_ascii_digit() {
            j += 1;
        } else if c == '.' && !seen_dot && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
            seen_dot = true;
            j += 1;
        } else {
            break;
        }
    }
    let text: String = chars[start..j].iter().collect();
    text.parse::<f64>().map(|n| (n, j)).map_err(|_| LexError {
        pos: start,
        message: format!("invalid number '{text}'"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_simple_path() {
        assert_eq!(
            lex("/site/people/person").unwrap(),
            vec![
                Token::Slash,
                Token::Name("site".into()),
                Token::Slash,
                Token::Name("people".into()),
                Token::Slash,
                Token::Name("person".into()),
            ]
        );
    }

    #[test]
    fn lex_double_slash_and_star() {
        assert_eq!(
            lex("//part/*").unwrap(),
            vec![
                Token::DoubleSlash,
                Token::Name("part".into()),
                Token::Slash,
                Token::Star
            ]
        );
    }

    #[test]
    fn lex_qualifier_tokens() {
        let toks = lex("person[@id = \"person10\"]").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Name("person".into()),
                Token::LBracket,
                Token::At,
                Token::Name("id".into()),
                Token::Eq,
                Token::Str("person10".into()),
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn lex_comparison_operators() {
        let toks = lex("a >= 1 and b <= 2 or not(c != 'x') and d < .5").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Ne));
        assert!(toks.contains(&Token::And));
        assert!(toks.contains(&Token::Or));
        assert!(toks.contains(&Token::Not));
        assert!(toks.contains(&Token::Num(0.5)));
    }

    #[test]
    fn lex_label_and_text_functions() {
        assert_eq!(
            lex("label() = part").unwrap(),
            vec![Token::LabelFn, Token::Eq, Token::Name("part".into())]
        );
        assert_eq!(
            lex("text() = 'x'").unwrap(),
            vec![Token::TextFn, Token::Eq, Token::Str("x".into())]
        );
    }

    #[test]
    fn lex_numbers() {
        assert_eq!(lex("15").unwrap(), vec![Token::Num(15.0)]);
        assert_eq!(lex("3.25").unwrap(), vec![Token::Num(3.25)]);
    }

    #[test]
    fn lex_names_with_underscores() {
        assert_eq!(
            lex("open_auction").unwrap(),
            vec![Token::Name("open_auction".into())]
        );
    }

    #[test]
    fn lex_errors() {
        assert!(lex("a ! b").is_err());
        assert!(lex("'unterminated").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn dot_vs_number() {
        assert_eq!(lex(".").unwrap(), vec![Token::Dot]);
        assert_eq!(lex("./a").unwrap()[0], Token::Dot);
    }
}
