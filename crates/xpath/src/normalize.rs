//! Qualifier normalization for the bottom-up dynamic program (Section 5).
//!
//! The paper normalizes each qualifier path to the form `η/p'` with
//! `η ∈ {*, //, ε[q]}` using rewriting rules (1)–(4), then evaluates the
//! resulting list `LQ` of sub-qualifiers bottom-up with `QualDP` (Fig. 7).
//!
//! [`QualTable`] is the compiled form of `LQ`: a hash-consed expression
//! pool, topologically sorted (sub-expressions strictly before their
//! containing expressions, which is exactly the order `QualDP` needs),
//! plus a map from selecting-path steps to the root expression of their
//! qualifier.
//!
//! The expression variants correspond one-to-one to the nine cases of
//! Fig. 7 (with attribute tests as a tenth, required by U2/U10 of the
//! paper's own workload).

use std::collections::HashMap;

use crate::ast::{CmpOp, Literal, Path, QPath, Qualifier, StepKind};

/// Index of a normalized expression within a [`QualTable`].
pub type ExprId = usize;

/// A normalized sub-qualifier — one entry of the paper's list `LQ`.
#[derive(Debug, Clone, PartialEq)]
pub enum NQual {
    /// Case (1) `ε` — trivially true.
    SelfTrue,
    /// Case (2) `ε[q']/p` — `sat(q') ∧ sat(p)` at the same node.
    SelfQual {
        /// The `[q']` checked at the node itself.
        qual: ExprId,
        /// The remainder `p` checked at the same node.
        rest: ExprId,
    },
    /// Case (3) `*/p` — `csat(p)`: some child satisfies `p`.
    Child(ExprId),
    /// Case (4) `//p` — `sat(p) ∨ dsat(p)`: self or some descendant.
    Desc(ExprId),
    /// Case (5) `ε op 's'` — comparison against the node's text.
    TextCmp(CmpOp, Literal),
    /// Case (6) `label() = l`.
    LabelIs(String),
    /// Extension: `@a op lit` at the node.
    AttrCmp(String, CmpOp, Literal),
    /// Extension: `@a` exists at the node.
    AttrExists(String),
    /// Case (7) `q1 ∧ q2`.
    And(ExprId, ExprId),
    /// Case (8) `q1 ∨ q2`.
    Or(ExprId, ExprId),
    /// Case (9) `¬q`.
    Not(ExprId),
}

/// Compiled `LQ`: expression pool in topological (children-first) order.
#[derive(Debug, Clone, Default)]
pub struct QualTable {
    /// The list LQ, topologically sorted (sub-expressions first).
    pub exprs: Vec<NQual>,
    /// For each step of the selecting path, the root expression of its
    /// qualifier (None when the step has no qualifier, i.e. `[true]`).
    pub step_roots: Vec<Option<ExprId>>,
    /// Hash-consing index.
    interned: HashMap<String, ExprId>,
}

impl QualTable {
    /// Compiles the qualifiers of a selecting path.
    pub fn from_path(path: &Path) -> QualTable {
        let mut t = QualTable::default();
        for step in &path.steps {
            let root = step.qualifier.as_ref().map(|q| t.translate_qual(q));
            t.step_roots.push(root);
        }
        t
    }

    /// Number of expressions — the |LQ| of the complexity bounds.
    pub fn len(&self) -> usize {
        self.exprs.len()
    }

    /// True when the path has no qualifiers at all (bottomUp degenerates
    /// to pure reachability pruning).
    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty()
    }

    fn intern(&mut self, e: NQual) -> ExprId {
        let key = key_of(&e);
        if let Some(&id) = self.interned.get(&key) {
            return id;
        }
        let id = self.exprs.len();
        self.exprs.push(e);
        self.interned.insert(key, id);
        id
    }

    /// Translates a source-level qualifier into the pool, returning its
    /// root id. Children are interned before parents, preserving the
    /// topological order QualDP requires.
    pub fn translate_qual(&mut self, q: &Qualifier) -> ExprId {
        match q {
            Qualifier::LabelIs(l) => self.intern(NQual::LabelIs(l.clone())),
            Qualifier::And(a, b) => {
                let ia = self.translate_qual(a);
                let ib = self.translate_qual(b);
                self.intern(NQual::And(ia, ib))
            }
            Qualifier::Or(a, b) => {
                let ia = self.translate_qual(a);
                let ib = self.translate_qual(b);
                self.intern(NQual::Or(ia, ib))
            }
            Qualifier::Not(a) => {
                let ia = self.translate_qual(a);
                self.intern(NQual::Not(ia))
            }
            Qualifier::Exists(qp) => {
                let terminal = match &qp.attr {
                    Some(a) => self.intern(NQual::AttrExists(a.clone())),
                    None => self.intern(NQual::SelfTrue),
                };
                self.translate_qpath(qp, terminal)
            }
            Qualifier::Cmp(qp, op, lit) => {
                let terminal = match &qp.attr {
                    Some(a) => self.intern(NQual::AttrCmp(a.clone(), *op, lit.clone())),
                    None => self.intern(NQual::TextCmp(*op, lit.clone())),
                };
                self.translate_qpath(qp, terminal)
            }
        }
    }

    /// Rewrites a qualifier path right-to-left using the paper's rules:
    /// `l → */ε[label()=l]` (rule 1) and `p[q] → p/ε[q]` (rule 2).
    fn translate_qpath(&mut self, qp: &QPath, terminal: ExprId) -> ExprId {
        let mut rest = terminal;
        for step in qp.path.steps.iter().rev() {
            match &step.kind {
                StepKind::Label(l) => {
                    let label_id = self.intern(NQual::LabelIs(l.clone()));
                    let guard = match &step.qualifier {
                        Some(q) => {
                            let qid = self.translate_qual(q);
                            self.intern(NQual::And(label_id, qid))
                        }
                        None => label_id,
                    };
                    let sq = self.intern(NQual::SelfQual { qual: guard, rest });
                    rest = self.intern(NQual::Child(sq));
                }
                StepKind::Wildcard => {
                    rest = match &step.qualifier {
                        Some(q) => {
                            let qid = self.translate_qual(q);
                            let sq = self.intern(NQual::SelfQual { qual: qid, rest });
                            self.intern(NQual::Child(sq))
                        }
                        None => self.intern(NQual::Child(rest)),
                    };
                }
                StepKind::Descendant => {
                    rest = self.intern(NQual::Desc(rest));
                }
            }
        }
        rest
    }
}

fn key_of(e: &NQual) -> String {
    match e {
        NQual::SelfTrue => "T".into(),
        NQual::SelfQual { qual, rest } => format!("S{qual},{rest}"),
        NQual::Child(p) => format!("C{p}"),
        NQual::Desc(p) => format!("D{p}"),
        NQual::TextCmp(op, lit) => format!("X{op:?}{}", lit_key(lit)),
        NQual::LabelIs(l) => format!("L{l}"),
        NQual::AttrCmp(a, op, lit) => format!("A{a}\u{0}{op:?}{}", lit_key(lit)),
        NQual::AttrExists(a) => format!("E{a}"),
        NQual::And(a, b) => format!("&{a},{b}"),
        NQual::Or(a, b) => format!("|{a},{b}"),
        NQual::Not(a) => format!("!{a}"),
    }
}

fn lit_key(l: &Literal) -> String {
    match l {
        Literal::Str(s) => format!("s{s}"),
        Literal::Num(n) => format!("n{}", n.to_bits()),
    }
}

/// A fixed-width bit vector holding one boolean per [`QualTable`]
/// expression. The per-node sat/csat/dsat annotations of `bottomUp` are
/// `SatVec`s — one or two machine words per node for realistic queries,
/// which is what keeps the annotation pass cheap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SatVec {
    words: Vec<u64>,
}

impl SatVec {
    /// All-false vector sized for `table`.
    pub fn new(len: usize) -> SatVec {
        SatVec {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Reads bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if v {
            *w |= mask;
        } else {
            *w &= !mask;
        }
    }

    /// In-place OR — the aggregation used for `csat`/`dsat`/`rsat`.
    pub fn or_assign(&mut self, other: &SatVec) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }
}

/// Local facts about one node, abstracting over the DOM (`Document` +
/// `NodeId`) and the SAX stack entry of `twoPassSAX`, which carries the
/// same information (label, attributes, accumulated text) without a tree.
pub trait NodeFacts {
    /// Element label (None for text nodes).
    fn label(&self) -> Option<&str>;
    /// Attribute lookup.
    fn attr(&self, name: &str) -> Option<&str>;
    /// Concatenated immediate text content.
    fn immediate_text(&self) -> String;
}

/// DOM adapter.
impl NodeFacts for (&xust_tree::Document, xust_tree::NodeId) {
    fn label(&self) -> Option<&str> {
        self.0.name(self.1)
    }

    fn attr(&self, name: &str) -> Option<&str> {
        self.0.attr(self.1, name)
    }

    fn immediate_text(&self) -> String {
        self.0.immediate_text(self.1)
    }
}

/// Evaluates all expressions of `table` at one node, given the
/// child/descendant aggregates — the paper's `QualDP` (Fig. 7), cases
/// (1)–(9). Runs in O(|LQ|) per node.
pub fn qual_dp(
    table: &QualTable,
    doc: &xust_tree::Document,
    node: xust_tree::NodeId,
    csat: &SatVec,
    dsat: &SatVec,
    sat: &mut SatVec,
) {
    qual_dp_facts(table, &(doc, node), csat, dsat, sat)
}

/// `QualDP` over abstract node facts (used directly by the SAX pass).
pub fn qual_dp_facts(
    table: &QualTable,
    facts: &dyn NodeFacts,
    csat: &SatVec,
    dsat: &SatVec,
    sat: &mut SatVec,
) {
    // A node's comparable text is needed by every TextCmp; compute at
    // most once.
    let mut text: Option<String> = None;
    for (id, e) in table.exprs.iter().enumerate() {
        let v = match e {
            NQual::SelfTrue => true,
            NQual::SelfQual { qual, rest } => sat.get(*qual) && sat.get(*rest),
            NQual::Child(p) => csat.get(*p),
            NQual::Desc(p) => sat.get(*p) || dsat.get(*p),
            NQual::TextCmp(op, lit) => {
                let t = text.get_or_insert_with(|| facts.immediate_text());
                lit.compare(t, *op)
            }
            NQual::LabelIs(l) => facts.label() == Some(l.as_str()),
            NQual::AttrCmp(a, op, lit) => {
                facts.attr(a).map(|v| lit.compare(v, *op)).unwrap_or(false)
            }
            NQual::AttrExists(a) => facts.attr(a).is_some(),
            NQual::And(a, b) => sat.get(*a) && sat.get(*b),
            NQual::Or(a, b) => sat.get(*a) || sat.get(*b),
            NQual::Not(a) => !sat.get(*a),
        };
        sat.set(id, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use xust_tree::Document;

    #[test]
    fn table_topological_order() {
        let p = parse_path(
            "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
        )
        .unwrap();
        let t = QualTable::from_path(&p);
        // Every referenced id must be smaller than the referencing id.
        for (id, e) in t.exprs.iter().enumerate() {
            let refs: Vec<ExprId> = match e {
                NQual::SelfQual { qual, rest } => vec![*qual, *rest],
                NQual::Child(p) | NQual::Desc(p) | NQual::Not(p) => vec![*p],
                NQual::And(a, b) | NQual::Or(a, b) => vec![*a, *b],
                _ => vec![],
            };
            for r in refs {
                assert!(r < id, "expr {id} references later expr {r}");
            }
        }
        // Steps: //(no qual), part[q1], //(no qual), part[q2]
        assert_eq!(t.step_roots.len(), 4);
        assert!(t.step_roots[0].is_none());
        assert!(t.step_roots[1].is_some());
        assert!(t.step_roots[3].is_some());
    }

    #[test]
    fn hash_consing_dedups() {
        let p = parse_path("a[x = '1']/b[x = '1']").unwrap();
        let t = QualTable::from_path(&p);
        // The two identical qualifiers share every expression.
        assert_eq!(t.step_roots[0], t.step_roots[1]);
    }

    #[test]
    fn satvec_bits() {
        let mut v = SatVec::new(130);
        v.set(0, true);
        v.set(64, true);
        v.set(129, true);
        assert!(v.get(0) && v.get(64) && v.get(129));
        assert!(!v.get(1) && !v.get(63) && !v.get(128));
        v.set(64, false);
        assert!(!v.get(64));
        let mut w = SatVec::new(130);
        w.set(5, true);
        v.or_assign(&w);
        assert!(v.get(5) && v.get(0));
        v.clear();
        assert!(!v.get(0) && !v.get(5));
    }

    /// Evaluates the table bottom-up over a whole document (reference
    /// implementation of the recursion, used to check qual_dp cases).
    fn annotate(doc: &Document, table: &QualTable) -> Vec<SatVec> {
        let mut sat = vec![SatVec::new(table.len()); doc.arena_len()];
        fn rec(
            doc: &Document,
            table: &QualTable,
            node: xust_tree::NodeId,
            sat: &mut Vec<SatVec>,
        ) -> (SatVec, SatVec) {
            // returns (sat_n, satsubtree = sat of n or descendants)
            let mut csat = SatVec::new(table.len());
            let mut dsat = SatVec::new(table.len());
            let children: Vec<_> = doc.children(node).collect();
            for c in children {
                let (cs, css) = rec(doc, table, c, sat);
                csat.or_assign(&cs);
                dsat.or_assign(&css);
            }
            let mut s = SatVec::new(table.len());
            qual_dp(table, doc, node, &csat, &dsat, &mut s);
            let mut subtree = dsat.clone();
            subtree.or_assign(&s);
            sat[node.index()] = s.clone();
            (s, subtree)
        }
        if let Some(r) = doc.root() {
            rec(doc, table, r, &mut sat);
        }
        sat
    }

    #[test]
    fn qual_dp_agrees_with_direct_eval() {
        let doc = Document::parse(
            r#"<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>"#,
        )
        .unwrap();
        let p =
            parse_path("//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]").unwrap();
        let table = QualTable::from_path(&p);
        let root_expr = table.step_roots[1].unwrap();
        let sat = annotate(&doc, &table);
        let q = p.steps[1].qualifier.as_ref().unwrap();
        for n in doc.descendants_or_self(doc.root().unwrap()) {
            if !doc.is_element(n) {
                continue;
            }
            let direct = crate::eval::eval_qualifier(&doc, n, q);
            assert_eq!(
                sat[n.index()].get(root_expr),
                direct,
                "node {:?} <{}>",
                n,
                doc.name(n).unwrap_or("?")
            );
        }
    }

    #[test]
    fn qual_dp_descendant_qualifier() {
        let doc = Document::parse("<a><b><c><d>hit</d></c></b><b/></a>").unwrap();
        let p = parse_path("b[.//d = 'hit']").unwrap();
        let table = QualTable::from_path(&p);
        let root_expr = table.step_roots[0].unwrap();
        let sat = annotate(&doc, &table);
        let root = doc.root().unwrap();
        let bs: Vec<_> = doc.element_children(root).collect();
        assert!(sat[bs[0].index()].get(root_expr));
        assert!(!sat[bs[1].index()].get(root_expr));
    }

    #[test]
    fn qual_dp_attr_cases() {
        let doc = Document::parse(r#"<db><p id="p10"/><p id="p11"/><p/></db>"#).unwrap();
        let p = parse_path("p[@id = 'p10']").unwrap();
        let table = QualTable::from_path(&p);
        let root_expr = table.step_roots[0].unwrap();
        let sat = annotate(&doc, &table);
        let root = doc.root().unwrap();
        let ps: Vec<_> = doc.element_children(root).collect();
        assert!(sat[ps[0].index()].get(root_expr));
        assert!(!sat[ps[1].index()].get(root_expr));
        assert!(!sat[ps[2].index()].get(root_expr));
    }

    #[test]
    fn qual_dp_numeric_comparisons() {
        let doc =
            Document::parse("<db><a><v>10</v></a><a><v>20</v></a><a><v>x</v></a></db>").unwrap();
        for (expr, expected) in [
            ("a[v > 15]", vec![false, true, false]),
            ("a[v <= 10]", vec![true, false, false]),
            ("a[v != 'x']", vec![true, true, false]),
        ] {
            let p = parse_path(expr).unwrap();
            let table = QualTable::from_path(&p);
            let root_expr = table.step_roots[0].unwrap();
            let sat = annotate(&doc, &table);
            let root = doc.root().unwrap();
            let got: Vec<bool> = doc
                .element_children(root)
                .map(|n| sat[n.index()].get(root_expr))
                .collect();
            assert_eq!(got, expected, "{expr}");
        }
    }
}
