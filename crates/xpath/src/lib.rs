#![warn(missing_docs)]
//! `xust-xpath` — the XPath fragment **X** of *Querying XML with Update
//! Syntax* (Section 2):
//!
//! ```text
//! p ::= ε | l | * | p/p | p//p | p[q]
//! q ::= p | p = 's' | label() = l | q ∧ q | q ∨ q | ¬q
//! ```
//!
//! plus the attribute tests and numeric comparisons that the paper's own
//! experimental workload (Fig. 11) requires.
//!
//! The crate provides:
//! * an AST in the paper's normal form β₁\[q₁\]/…/βₖ\[qₖ\] ([`Path`]),
//! * a parser ([`parse_path`], [`parse_qualifier`]),
//! * a direct DOM evaluator ([`eval_path`], [`eval_qualifier`]) — the
//!   "native" `checkp()` oracle of the topDown/GENTOP method,
//! * the qualifier normalization and dynamic program of Section 5
//!   ([`QualTable`], [`qual_dp`]) used by `bottomUp`.
//!
//! # Example
//!
//! ```
//! use xust_tree::Document;
//! use xust_xpath::{parse_path, eval_path};
//!
//! let doc = Document::parse(
//!     "<db><part><pname>keyboard</pname></part><part><pname>mouse</pname></part></db>",
//! ).unwrap();
//! let path = parse_path("part[pname = 'keyboard']").unwrap();
//! let hits = eval_path(&doc, doc.root().unwrap(), &path);
//! assert_eq!(hits.len(), 1);
//! ```

mod ast;
mod eval;
mod lexer;
mod normalize;
mod parser;

pub use ast::{CmpOp, Literal, Path, QPath, Qualifier, Step, StepKind};
pub use eval::{eval_path, eval_path_root, eval_qualifier};
pub use lexer::{lex, LexError, Token};
pub use normalize::{qual_dp, qual_dp_facts, ExprId, NQual, NodeFacts, QualTable, SatVec};
pub use parser::{parse_path, parse_qualifier, ParseError};
