//! Direct (DOM-walking) evaluation of X paths and qualifiers.
//!
//! This is the "native qualifier evaluation facility" of the paper: the
//! `topDown`/GENTOP method calls [`eval_qualifier`] as its `checkp()`
//! oracle, and the copy-and-update baseline uses [`eval_path`] to compute
//! `r[[p]]` before applying the update.

use std::collections::HashSet;

use xust_intern::Interner;
use xust_tree::{Document, NodeId};

use crate::ast::{Path, QPath, Qualifier, Step, StepKind};

/// Evaluation context: either a concrete node or the virtual *document
/// node* above the root element. Embedded update paths (`$a/p` with
/// `$a := doc("T")`) are rooted at the document node, so that `/site/…`
/// matches the root element's own label — exactly how the selecting NFA
/// consumes the root's label as its first input letter.
type Ctx = Option<NodeId>;

/// Evaluates `path` at context node `ctx` (child-axis semantics relative
/// to `ctx`, used for qualifier paths), returning `ctx[[p]]` — the set of
/// element nodes reachable via the path, deduplicated, in document order
/// (the order XQuery path expressions must deliver).
pub fn eval_path(doc: &Document, ctx: NodeId, path: &Path) -> Vec<NodeId> {
    eval_from(doc, Some(ctx), path)
}

/// Evaluates `path` from the virtual document node: `r[[p]]` of the
/// paper, where the first step can select the root element itself.
pub fn eval_path_root(doc: &Document, path: &Path) -> Vec<NodeId> {
    eval_from(doc, None, path)
}

fn eval_from(doc: &Document, ctx: Ctx, path: &Path) -> Vec<NodeId> {
    if path.is_empty() {
        return match ctx {
            Some(n) => vec![n],
            None => doc.root().into_iter().collect(),
        };
    }
    let mut current: Vec<Ctx> = vec![ctx];
    for step in &path.steps {
        current = eval_step(doc, &current, step);
        if current.is_empty() {
            break;
        }
    }
    let mut out: Vec<NodeId> = current.into_iter().flatten().collect();
    // A child step applied to *nested* contexts (produced by `//`) emits
    // anchor-major order; XQuery requires document order.
    out.sort_by(|&a, &b| doc.doc_order_cmp(a, b));
    out
}

fn children_of(doc: &Document, ctx: Ctx) -> Vec<NodeId> {
    match ctx {
        Some(n) => doc.children(n).collect(),
        None => doc.root().into_iter().collect(),
    }
}

fn eval_step(doc: &Document, contexts: &[Ctx], step: &Step) -> Vec<Ctx> {
    let mut out: Vec<Ctx> = Vec::new();
    // Resolve a label step once per step application — outside the
    // context loop. A label the interner has never seen matches no node
    // in the process, so the whole step yields nothing.
    let want = match &step.kind {
        StepKind::Label(l) => match Interner::global().lookup(l) {
            Some(want) => Some(want),
            None => return out,
        },
        _ => None,
    };
    let mut seen: HashSet<Ctx> = HashSet::new();
    let mut push = |n: Ctx, out: &mut Vec<Ctx>| {
        if seen.insert(n) {
            out.push(n);
        }
    };
    for &ctx in contexts {
        match &step.kind {
            StepKind::Label(_) => {
                let want = want.expect("resolved above");
                for c in children_of(doc, ctx) {
                    if doc.name_sym(c) == Some(want) && qualifier_holds(doc, c, step) {
                        push(Some(c), &mut out);
                    }
                }
            }
            StepKind::Wildcard => {
                for c in children_of(doc, ctx) {
                    if doc.is_element(c) && qualifier_holds(doc, c, step) {
                        push(Some(c), &mut out);
                    }
                }
            }
            StepKind::Descendant => {
                // descendant-or-self::node() restricted to elements: text
                // nodes can never be selected by a subsequent β in X.
                if step.qualifier.is_none() {
                    push(ctx, &mut out);
                }
                let start = match ctx {
                    Some(n) => Some(n),
                    None => doc.root(),
                };
                if let Some(start) = start {
                    for d in doc.descendants_or_self(start) {
                        if doc.is_element(d) && qualifier_holds(doc, d, step) {
                            push(Some(d), &mut out);
                        }
                    }
                }
            }
        }
    }
    out
}

fn qualifier_holds(doc: &Document, node: NodeId, step: &Step) -> bool {
    match &step.qualifier {
        None => true,
        Some(q) => eval_qualifier(doc, node, q),
    }
}

/// Evaluates a qualifier at `node` — the semantics of `checkp(q, n)`:
/// true iff `n[[q]]` is non-empty (with comparisons existential over the
/// qualifier path's result).
pub fn eval_qualifier(doc: &Document, node: NodeId, q: &Qualifier) -> bool {
    match q {
        Qualifier::Exists(qp) => qpath_exists(doc, node, qp),
        Qualifier::Cmp(qp, op, lit) => {
            qpath_values(doc, node, qp, &mut |text| lit.compare(text, *op))
        }
        Qualifier::LabelIs(l) => match Interner::global().lookup(l) {
            Some(want) => doc.name_sym(node) == Some(want),
            None => false,
        },
        Qualifier::And(a, b) => eval_qualifier(doc, node, a) && eval_qualifier(doc, node, b),
        Qualifier::Or(a, b) => eval_qualifier(doc, node, a) || eval_qualifier(doc, node, b),
        Qualifier::Not(a) => !eval_qualifier(doc, node, a),
    }
}

fn qpath_exists(doc: &Document, node: NodeId, qp: &QPath) -> bool {
    let targets = eval_path(doc, node, &qp.path);
    match &qp.attr {
        None => !targets.is_empty(),
        Some(a) => targets.iter().any(|&t| doc.attr(t, a).is_some()),
    }
}

/// Feeds the comparable string value of each node selected by the
/// qualifier path to `pred`; returns true as soon as one satisfies it.
fn qpath_values(
    doc: &Document,
    node: NodeId,
    qp: &QPath,
    pred: &mut dyn FnMut(&str) -> bool,
) -> bool {
    let targets = eval_path(doc, node, &qp.path);
    for t in targets {
        match &qp.attr {
            Some(a) => {
                if let Some(v) = doc.attr(t, a) {
                    if pred(v) {
                        return true;
                    }
                }
            }
            None => {
                // The comparable value of an element is its immediate
                // text — QualDP case (5): `text() = s`.
                if pred(&doc.immediate_text(t)) {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_path, parse_qualifier};

    fn doc() -> Document {
        Document::parse(
            r#"<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price><country>A</country></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price><country>B</country></supplier></part></db>"#,
        )
        .unwrap()
    }

    fn names(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes
            .iter()
            .map(|&n| doc.name(n).unwrap().to_string())
            .collect()
    }

    fn select(d: &Document, p: &str) -> Vec<NodeId> {
        eval_path(d, d.root().unwrap(), &parse_path(p).unwrap())
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let r = select(&d, "part/pname");
        assert_eq!(names(&d, &r), ["pname", "pname"]);
    }

    #[test]
    fn descendant_step() {
        let d = doc();
        let r = select(&d, "//pname");
        assert_eq!(r.len(), 3);
        let r = select(&d, "//price");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn wildcard_step() {
        let d = doc();
        let r = select(&d, "part/*");
        // children of both top-level parts: pname, supplier, part, pname, supplier
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn descendant_includes_self() {
        let d = doc();
        // `.//part` from root: both top parts + nested part.
        let r = select(&d, "//part");
        assert_eq!(r.len(), 3);
        // From the document node, `//db` matches the root element itself.
        let r = eval_path_root(&d, &parse_path("//db").unwrap());
        assert_eq!(r.len(), 1);
        // `/db/part` from the document node selects the two top parts.
        let r = eval_path_root(&d, &parse_path("/db/part").unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn qualifier_string_eq() {
        let d = doc();
        let r = select(&d, "part[pname = 'keyboard']");
        assert_eq!(r.len(), 1);
        let r = select(&d, "part[pname = 'nosuch']");
        assert!(r.is_empty());
    }

    #[test]
    fn qualifier_numeric() {
        let d = doc();
        let r = select(&d, "part/supplier[price < 15]");
        assert_eq!(r.len(), 1);
        let r = select(&d, "part/supplier[price >= 12]");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn qualifier_exists() {
        let d = doc();
        let r = select(&d, "part[supplier]");
        assert_eq!(r.len(), 2);
        let r = select(&d, "part[widget]");
        assert!(r.is_empty());
    }

    #[test]
    fn qualifier_not_and_or() {
        let d = doc();
        let r = select(&d, "part[not(pname = 'keyboard')]");
        assert_eq!(r.len(), 1);
        let r = select(&d, "part[pname = 'keyboard' or pname = 'mouse']");
        assert_eq!(r.len(), 2);
        let r = select(&d, "part[supplier/sname = 'HP' and supplier/country = 'A']");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn paper_example_p1() {
        // Example 3.1: //part[pname='keyboard']//part[¬supplier/sname='HP'
        // ∧ ¬supplier/price<15] — nested part under keyboard has no
        // supplier at all, so both negations hold.
        let d = doc();
        let r = select(
            &d,
            "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
        );
        assert_eq!(r.len(), 1);
        assert_eq!(d.immediate_text(d.first_child(r[0]).unwrap()), "key");
    }

    #[test]
    fn dedup_overlapping_descendants() {
        let d = Document::parse("<a><b><b><c/></b></b></a>").unwrap();
        // //b//c: both b's reach the same c; result must be one node.
        let r = select(&d, "//b//c");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn attribute_qualifier() {
        let d = Document::parse(r#"<db><p id="p1"/><p id="p2"/><p/></db>"#).unwrap();
        let r = select(&d, "p[@id = 'p2']");
        assert_eq!(r.len(), 1);
        let r = select(&d, "p[@id]");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn label_qualifier() {
        let d = doc();
        let r = select(&d, "*[label() = part]");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn self_comparison() {
        let d = Document::parse("<db><x>v</x><x>w</x></db>").unwrap();
        let r = select(&d, "x[. = 'v']");
        assert_eq!(r.len(), 1);
        let r = select(&d, "x[text() = 'w']");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn empty_path_selects_context() {
        let d = doc();
        let root = d.root().unwrap();
        let r = eval_path(&d, root, &Path::empty());
        assert_eq!(r, vec![root]);
    }

    #[test]
    fn qualifier_attr_on_path() {
        let d = Document::parse(r#"<db><s id="3"><v/></s><s id="4"/></db>"#).unwrap();
        let q = parse_qualifier("s/@id = '3'").unwrap();
        assert!(eval_qualifier(&d, d.root().unwrap(), &q));
        let q = parse_qualifier("s/@id = '9'").unwrap();
        assert!(!eval_qualifier(&d, d.root().unwrap(), &q));
    }

    #[test]
    fn numeric_on_non_numeric_text_false() {
        let d = Document::parse("<db><x>abc</x></db>").unwrap();
        let r = select(&d, "x[. < 5]");
        assert!(r.is_empty());
        let r = select(&d, "x[. >= 5]");
        assert!(r.is_empty());
    }
}
