use std::fmt;

use crate::ast::{CmpOp, Literal, Path, QPath, Qualifier, Step, StepKind};
use crate::lexer::{lex, LexError, Token};

/// Parse error for X expressions.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parses an X expression, e.g.
/// `/site/open_auctions/open_auction[initial > 10 and reserve > 50]/bidder`.
///
/// A leading `/` is optional (paths are always evaluated at a context
/// node, the document root for embedded update paths).
pub fn parse_path(input: &str) -> Result<Path, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(tokens);
    let path = p.path()?;
    p.expect_eof()?;
    Ok(path)
}

/// Parses a standalone qualifier expression (without the brackets).
pub fn parse_qualifier(input: &str) -> Result<Qualifier, ParseError> {
    let tokens = lex(input)?;
    let mut p = Parser::new(tokens);
    let q = p.qualifier()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected '{t}'")))
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ParseError {
                message: format!("unexpected trailing token '{t}'"),
            }),
        }
    }

    fn error(&self, what: &str) -> ParseError {
        let found = self
            .peek()
            .map(|t| format!("'{t}'"))
            .unwrap_or_else(|| "end of input".into());
        ParseError {
            message: format!("{what}, found {found} at token {}", self.pos),
        }
    }

    /// path := ['/' | '//'] step (('/' | '//') step)*  |  '.'
    fn path(&mut self) -> Result<Path, ParseError> {
        let mut steps = Vec::new();
        // `.` alone (or `./rest`) — self.
        if self.eat(&Token::Dot) && (self.peek().is_none() || self.peek() == Some(&Token::RBracket))
        {
            return Ok(Path::empty());
        }
        // `./p` — just continue with the separator.
        // Optional leading separator.
        if self.eat(&Token::DoubleSlash) {
            steps.push(Step::plain(StepKind::Descendant));
        } else {
            self.eat(&Token::Slash);
        }
        loop {
            steps.push(self.step()?);
            // Stop before a trailing attribute access `…/@name` — that
            // belongs to the enclosing qualifier path (`qpath`).
            if self.peek() == Some(&Token::Slash)
                && self.tokens.get(self.pos + 1) == Some(&Token::At)
            {
                break;
            }
            if self.eat(&Token::DoubleSlash) {
                steps.push(Step::plain(StepKind::Descendant));
            } else if !self.eat(&Token::Slash) {
                break;
            }
        }
        Ok(Path { steps })
    }

    /// step := (name | '*') ('[' qualifier ']')*
    fn step(&mut self) -> Result<Step, ParseError> {
        let kind = match self.next() {
            Some(Token::Name(n)) => StepKind::Label(n),
            Some(Token::Star) => StepKind::Wildcard,
            // `and`/`or`/`not` are legal element names when they appear in
            // step position.
            Some(Token::And) => StepKind::Label("and".into()),
            Some(Token::Or) => StepKind::Label("or".into()),
            Some(Token::Not) => StepKind::Label("not".into()),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                return Err(self.error("expected step (name or '*')"));
            }
        };
        let mut qualifier: Option<Qualifier> = None;
        // Multiple qualifiers conjoin: p[q1][q2] ≡ p[q1 ∧ q2]
        // (normalization rule 3 of Section 5).
        while self.eat(&Token::LBracket) {
            let q = self.qualifier()?;
            self.expect(&Token::RBracket)?;
            qualifier = Some(match qualifier {
                None => q,
                Some(prev) => Qualifier::and(prev, q),
            });
        }
        Ok(Step { kind, qualifier })
    }

    /// qualifier := or_expr
    fn qualifier(&mut self) -> Result<Qualifier, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Qualifier, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&Token::Or) {
            let right = self.and_expr()?;
            left = Qualifier::or(left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Qualifier, ParseError> {
        let mut left = self.unary_expr()?;
        while self.eat(&Token::And) {
            let right = self.unary_expr()?;
            left = Qualifier::and(left, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Qualifier, ParseError> {
        if self.eat(&Token::Not) {
            self.expect(&Token::LParen)?;
            let inner = self.qualifier()?;
            self.expect(&Token::RParen)?;
            return Ok(Qualifier::not(inner));
        }
        if self.eat(&Token::LParen) {
            let inner = self.qualifier()?;
            self.expect(&Token::RParen)?;
            return Ok(inner);
        }
        self.atom()
    }

    /// atom := label() = l | qpath (op literal)?
    fn atom(&mut self) -> Result<Qualifier, ParseError> {
        if self.eat(&Token::LabelFn) {
            self.expect(&Token::Eq)?;
            let l = match self.next() {
                Some(Token::Name(n)) => n,
                Some(Token::Str(s)) => s,
                _ => return Err(self.error("expected label name after 'label() ='")),
            };
            return Ok(Qualifier::LabelIs(l));
        }
        let qpath = self.qpath()?;
        if let Some(op) = self.cmp_op() {
            let lit = match self.next() {
                Some(Token::Str(s)) => Literal::Str(s),
                Some(Token::Num(n)) => Literal::Num(n),
                _ => return Err(self.error("expected string or number literal after comparison")),
            };
            Ok(Qualifier::Cmp(qpath, op, lit))
        } else {
            if qpath.path.is_empty() && qpath.attr.is_none() {
                return Err(self.error("'.' qualifier needs a comparison"));
            }
            Ok(Qualifier::Exists(qpath))
        }
    }

    /// qpath := '.' | text() | '@'name | path ('/@'name)?
    fn qpath(&mut self) -> Result<QPath, ParseError> {
        if self.eat(&Token::TextFn) {
            return Ok(QPath::self_path());
        }
        if self.eat(&Token::At) {
            let name = self.attr_name()?;
            return Ok(QPath::attr_only(name));
        }
        if self.peek() == Some(&Token::Dot) {
            // `.` or `./p…`
            let save = self.pos;
            self.pos += 1;
            match self.peek() {
                Some(Token::Slash) | Some(Token::DoubleSlash) => {
                    self.pos = save; // let `path()` re-handle the dot
                }
                _ => return Ok(QPath::self_path()),
            }
        }
        let path = self.path()?;
        // A trailing attribute access `…/@name` (path() stops before it).
        let mut attr = None;
        if self.peek() == Some(&Token::Slash) && self.tokens.get(self.pos + 1) == Some(&Token::At) {
            self.pos += 2;
            attr = Some(self.attr_name()?);
        }
        Ok(QPath { path, attr })
    }

    fn attr_name(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Name(n)) => Ok(n),
            _ => {
                self.pos = self.pos.saturating_sub(1);
                Err(self.error("expected attribute name after '@'"))
            }
        }
    }

    fn cmp_op(&mut self) -> Option<CmpOp> {
        let op = match self.peek()? {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            _ => return None,
        };
        self.pos += 1;
        Some(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(s: &str) -> String {
        parse_path(s).unwrap().to_string()
    }

    #[test]
    fn parse_simple() {
        let p = parse_path("/site/people/person").unwrap();
        assert_eq!(p.steps.len(), 3);
        assert_eq!(p.to_string(), "site/people/person");
    }

    #[test]
    fn parse_descendant() {
        let p = parse_path("//part").unwrap();
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].kind, StepKind::Descendant);
        assert_eq!(p.to_string(), "//part");
    }

    #[test]
    fn parse_inner_descendant() {
        let p = parse_path("/site/regions//item").unwrap();
        assert_eq!(p.to_string(), "site/regions//item");
    }

    #[test]
    fn parse_wildcard() {
        let p = parse_path("a/*/b").unwrap();
        assert_eq!(p.steps[1].kind, StepKind::Wildcard);
    }

    #[test]
    fn parse_attribute_qualifier() {
        let p = parse_path("/site/people/person[@id = \"person10\"]").unwrap();
        let q = p.steps[2].qualifier.as_ref().unwrap();
        assert_eq!(
            *q,
            Qualifier::Cmp(
                QPath::attr_only("id"),
                CmpOp::Eq,
                Literal::Str("person10".into())
            )
        );
    }

    #[test]
    fn parse_numeric_qualifier() {
        let p = parse_path("/site/people/person[profile/age > 20]").unwrap();
        let q = p.steps[2].qualifier.as_ref().unwrap();
        match q {
            Qualifier::Cmp(qp, CmpOp::Gt, Literal::Num(n)) => {
                assert_eq!(qp.path.to_string(), "profile/age");
                assert_eq!(*n, 20.0);
            }
            other => panic!("unexpected qualifier {other:?}"),
        }
    }

    #[test]
    fn parse_u7_nested() {
        let p = parse_path(
            "/site/open_auctions/open_auction[bidder/increase>5]/annotation[happiness < 20]/description//text",
        )
        .unwrap();
        assert_eq!(p.steps.len(), 7); // site, open_auctions, open_auction, annotation, description, //, text
        assert!(p.steps[2].qualifier.is_some());
        assert!(p.steps[3].qualifier.is_some());
    }

    #[test]
    fn parse_u8_conjunction() {
        let p = parse_path("/site/open_auctions/open_auction[initial > 10 and reserve >50]/bidder")
            .unwrap();
        let q = p.steps[2].qualifier.as_ref().unwrap();
        assert!(matches!(q, Qualifier::And(_, _)));
    }

    #[test]
    fn parse_u10_not() {
        let p = parse_path(
            "/site//open_auctions/open_auction[not(@id =\"open_auction2\")]/bidder[increase > 10]",
        )
        .unwrap();
        let q = p.steps[3].qualifier.as_ref().unwrap();
        assert!(matches!(q, Qualifier::Not(_)));
    }

    #[test]
    fn parse_dot_comparison() {
        let q = parse_qualifier("not(./c = 'A')").unwrap();
        match q {
            Qualifier::Not(inner) => match *inner {
                Qualifier::Cmp(qp, CmpOp::Eq, Literal::Str(s)) => {
                    assert_eq!(qp.path.to_string(), "c");
                    assert_eq!(s, "A");
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_label_test() {
        let q = parse_qualifier("label() = part").unwrap();
        assert_eq!(q, Qualifier::LabelIs("part".into()));
    }

    #[test]
    fn parse_text_fn() {
        let q = parse_qualifier("text() = 'keyboard'").unwrap();
        assert_eq!(
            q,
            Qualifier::Cmp(
                QPath::self_path(),
                CmpOp::Eq,
                Literal::Str("keyboard".into())
            )
        );
    }

    #[test]
    fn parse_or_and_precedence() {
        // a and b or c and d  ==  (a and b) or (c and d)
        let q = parse_qualifier("a and b or c and d").unwrap();
        match q {
            Qualifier::Or(l, r) => {
                assert!(matches!(*l, Qualifier::And(_, _)));
                assert!(matches!(*r, Qualifier::And(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_multiple_qualifiers_conjoin() {
        let p = parse_path("part[pname = 'kb'][supplier]").unwrap();
        let q = p.steps[0].qualifier.as_ref().unwrap();
        assert!(matches!(q, Qualifier::And(_, _)));
    }

    #[test]
    fn parse_qualifier_path_with_attr() {
        let q = parse_qualifier("supplier/@id = '3'").unwrap();
        match q {
            Qualifier::Cmp(qp, CmpOp::Eq, _) => {
                assert_eq!(qp.path.to_string(), "supplier");
                assert_eq!(qp.attr.as_deref(), Some("id"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_path("").is_err());
        assert!(parse_path("a/").is_err());
        assert!(parse_path("a[").is_err());
        assert!(parse_path("a[b").is_err());
        assert!(parse_path("a]b").is_err());
        assert!(parse_path("a[not b]").is_err());
        assert!(parse_path("a[b =]").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "site/people/person",
            "//part",
            "site/regions//item",
            "a/*/b",
            "part[pname = \"keyboard\"]",
        ] {
            let once = roundtrip(s);
            let twice = parse_path(&once).unwrap().to_string();
            assert_eq!(once, twice, "display must be a fixpoint for {s}");
        }
    }

    #[test]
    fn all_fig11_queries_parse() {
        let queries = [
            "/site/people/person",
            "/site/people/person[@id = \"person10\"]",
            "/site/people/person[profile/age > 20]",
            "/site/regions//item",
            "/site//description",
            "/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword",
            "/site/open_auctions/open_auction[bidder/increase>5]/annotation[happiness < 20]/description//text",
            "/site/open_auctions/open_auction[initial > 10 and reserve >50]/bidder",
            "/site/regions//item[location =\"United States\"]",
            "/site//open_auctions/open_auction[not(@id =\"open_auction2\")]/bidder[increase > 10]",
        ];
        for q in queries {
            parse_path(q).unwrap_or_else(|e| panic!("{q}: {e}"));
        }
    }
}
