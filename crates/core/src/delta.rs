//! Delta/relevance analysis for live updates.
//!
//! When the serving layer applies an update to a stored document it
//! wants to keep, not drop, every cached view result the write provably
//! cannot affect. This module provides the two label sets that decision
//! is made from:
//!
//! * the **static alphabet** of an update or view
//!   ([`update_alphabet`], [`CompiledTransform::alphabet`][crate::CompiledTransform::alphabet]):
//!   every label its selecting/filtering NFAs can test, every label its
//!   constant fragments can introduce, the rename target, plus a
//!   wildcard bit — the labels its *behaviour* can depend on;
//! * the **dynamic delta** of one concrete application
//!   ([`touched_labels_into`]): the labels a write actually added,
//!   removed, or renamed, together with the labels of every
//!   ancestor-or-self of each target node.
//!
//! Ancestors matter because an update deep inside a subtree changes the
//! XPath *string value* of every ancestor — deliberately conservative:
//! the current evaluator's comparisons read only a node's immediate
//! text (`eval_qualifier`), but the footprint guards the full
//! string-value semantics so tightening the evaluator cannot silently
//! unsound retention — and because a view that deletes a node also
//! deletes everything the update did inside it. Recording ancestor
//! labels makes the disjointness test `delta ∩ alphabet = ∅` catch
//! both, so retention stays sound (the differential update-fuzz
//! harness in `tests/update_maintenance.rs` checks
//! retained-and-maintained output byte-for-byte against full
//! recompute).
//!
//! Footprints are label sets over the document's vocabulary *at
//! recording time*: a retained rename write renames the recorded nodes
//! out from under them, so maintenance must carry the sets into the
//! new vocabulary via [`TouchedLabels::apply_renames`] with the
//! [`RenameMapping`]s the write captured.

use xust_automata::{FilteringNfa, LabelSet, SelectingNfa};
use xust_intern::{intern, Sym};
use xust_tree::{Document, NodeId};
use xust_xpath::{Path, Qualifier};

use crate::query::UpdateOp;

/// Collects the label footprint of a path's qualifiers that the NFAs do
/// not carry: `label() = l` tests. Everything else a qualifier can test
/// is already a filtering-NFA transition.
fn label_is_labels(q: &Qualifier, out: &mut LabelSet) {
    match q {
        Qualifier::LabelIs(l) => out.insert(intern(l)),
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            label_is_labels(a, out);
            label_is_labels(b, out);
        }
        Qualifier::Not(a) => label_is_labels(a, out),
        Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => {
            for step in &qp.path.steps {
                if let Some(q) = &step.qualifier {
                    label_is_labels(q, out);
                }
            }
        }
    }
}

/// Folds the `label() = l` test labels of a path's qualifiers into
/// `out` — the one sensitivity the NFA alphabets miss. Callers that
/// already hold compiled NFAs combine this with their
/// `collect_alphabet`; [`path_alphabet_into`] does both from scratch.
pub fn qualifier_label_tests_into(path: &Path, out: &mut LabelSet) {
    for step in &path.steps {
        if let Some(q) = &step.qualifier {
            label_is_labels(q, out);
        }
    }
}

/// Folds the full static sensitivity footprint of a path into `out`:
/// both NFA alphabets (label transitions + wildcard bit) and any
/// `label() = l` qualifier labels.
pub fn path_alphabet_into(path: &Path, out: &mut LabelSet) {
    SelectingNfa::new(path).collect_alphabet(out);
    FilteringNfa::new(path).collect_alphabet(out);
    qualifier_label_tests_into(path, out);
}

/// Folds the labels an operation can *introduce* into `out`: every
/// element label of an inserted/replacement fragment, and the rename
/// target label.
pub fn op_alphabet_into(op: &UpdateOp, out: &mut LabelSet) {
    match op {
        UpdateOp::Insert { elem, .. } | UpdateOp::Replace { elem } => {
            fragment_labels_into(elem, out)
        }
        UpdateOp::Rename { name } => out.insert(*name),
        UpdateOp::Delete => {}
    }
}

/// The static alphabet of one update rule `(p, u)`: selection
/// sensitivity (NFAs over `p`) plus introduction footprint (`u`'s
/// fragments / rename label). Building the NFAs is O(|p|).
pub fn update_alphabet(path: &Path, op: &UpdateOp) -> LabelSet {
    let mut out = LabelSet::new();
    path_alphabet_into(path, &mut out);
    op_alphabet_into(op, &mut out);
    out
}

/// The *value alphabet* of a path: the labels whose **string values**
/// (or qualifier truth) the selection reads — the anchor label of every
/// qualifier-bearing step plus every label on a qualifier path,
/// recursively. A step with no qualifier contributes nothing: plain
/// traversal never reads content, only structure. A qualifier anchored
/// at a wildcard step marks the wildcard bit.
pub fn value_alphabet_into(path: &Path, out: &mut LabelSet) {
    fn qual_paths(q: &Qualifier, out: &mut LabelSet) {
        match q {
            Qualifier::LabelIs(_) => {} // reads the label, not content
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                qual_paths(a, out);
                qual_paths(b, out);
            }
            Qualifier::Not(a) => qual_paths(a, out),
            Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => {
                for step in &qp.path.steps {
                    match &step.kind {
                        xust_xpath::StepKind::Label(l) => out.insert(intern(l)),
                        xust_xpath::StepKind::Wildcard => out.mark_wildcard(),
                        xust_xpath::StepKind::Descendant => {}
                    }
                    if let Some(q) = &step.qualifier {
                        qual_paths(q, out);
                    }
                }
            }
        }
    }
    for step in &path.steps {
        if let Some(q) = &step.qualifier {
            match &step.kind {
                xust_xpath::StepKind::Label(l) => out.insert(intern(l)),
                xust_xpath::StepKind::Wildcard => out.mark_wildcard(),
                xust_xpath::StepKind::Descendant => {}
            }
            qual_paths(q, out);
        }
    }
}

/// The *qualifier anchor alphabet* of a path: the label of every step
/// that carries a qualifier (the node the qualifier's truth is
/// evaluated **at**). Wildcard and descendant anchors mark the wildcard
/// bit — any label can anchor them.
///
/// This is the eligibility test for in-place result patching
/// ([`crate::patch`]): an update can flip a qualifier verdict only at
/// ancestors-or-self of its targets (qualifier inputs are string values
/// and labels, both of which propagate changes upward only). Every such
/// ancestor lies on an update-site chain, so when the chain labels are
/// disjoint from this set, no selection decision *outside* the patched
/// regions can have changed.
pub fn qualifier_anchor_alphabet_into(path: &Path, out: &mut LabelSet) {
    for step in &path.steps {
        if step.qualifier.is_some() {
            match &step.kind {
                xust_xpath::StepKind::Label(l) => out.insert(intern(l)),
                xust_xpath::StepKind::Wildcard | xust_xpath::StepKind::Descendant => {
                    out.mark_wildcard()
                }
            }
        }
    }
}

/// Every element label in `frag` (the constant element of an insert or
/// replace).
pub fn fragment_labels_into(frag: &Document, out: &mut LabelSet) {
    if let Some(root) = frag.root() {
        for n in frag.descendants_or_self(root) {
            if let Some(sym) = frag.name_sym(n) {
                out.insert(sym);
            }
        }
    }
}

/// The concrete label effect of one applied rename: the labels its
/// matched targets carried **before** the rename, and the single label
/// they all carry after. Collected by the write path (one mapping per
/// rename rule, in application order) and replayed by cache maintenance
/// onto every *retained* entry's [`TouchedLabels`] — see
/// [`TouchedLabels::apply_renames`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameMapping {
    /// Labels the rename's targets had pre-apply (empty ⇒ no targets).
    pub old: LabelSet,
    /// The label every target has post-apply.
    pub new: Sym,
}

impl RenameMapping {
    /// The mapping of applying `rename … as name` to `targets`, read off
    /// the **pre-apply** document. `None` when nothing matched (an
    /// empty rename maps no labels).
    pub fn capture(doc: &Document, targets: &[NodeId], name: Sym) -> Option<RenameMapping> {
        if targets.is_empty() {
            return None;
        }
        let mut old = LabelSet::new();
        for &t in targets {
            if let Some(sym) = doc.name_sym(t) {
                old.insert(sym);
            }
        }
        Some(RenameMapping { old, new: name })
    }
}

/// The two faces of a concrete update's (or a view materialization's)
/// footprint, recorded dynamically while applying:
///
/// * **structural** — labels of nodes that appeared, disappeared, or
///   changed label: whole removed subtrees (delete/replace), inserted
///   fragments (insert/replace), rename old + new. What another
///   query's *traversal* can observe.
/// * **valued** — ancestor-or-self labels of every target: the nodes
///   whose *string value* the change altered (text anywhere in a
///   subtree contributes to every ancestor's value). What another
///   query's *qualifier comparisons* can observe. Renames contribute
///   nothing here — a label is not text.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TouchedLabels {
    /// Labels added, removed, or renamed.
    pub structural: LabelSet,
    /// Ancestor-or-self labels of every target (value perturbation).
    pub valued: LabelSet,
}

impl TouchedLabels {
    /// An empty footprint.
    pub fn new() -> TouchedLabels {
        TouchedLabels::default()
    }

    /// True when nothing was touched.
    pub fn is_empty(&self) -> bool {
        self.structural.is_empty() && self.valued.is_empty()
    }

    /// Folds `other` in.
    pub fn union_with(&mut self, other: &TouchedLabels) {
        self.structural.union_with(&other.structural);
        self.valued.union_with(&other.valued);
    }

    /// Records one application of `op` to `targets`. **Must be called
    /// on the pre-apply document** (targets reference nodes that delete
    /// will recycle).
    pub fn record(&mut self, doc: &Document, targets: &[NodeId], op: &UpdateOp) {
        for &t in targets {
            if !matches!(op, UpdateOp::Rename { .. }) {
                // Ancestor-or-self chain (`ancestors` excludes `t`).
                if let Some(sym) = doc.name_sym(t) {
                    self.valued.insert(sym);
                }
                for a in doc.ancestors(t) {
                    if let Some(sym) = doc.name_sym(a) {
                        self.valued.insert(sym);
                    }
                }
            }
            match op {
                UpdateOp::Delete | UpdateOp::Replace { .. } => {
                    for n in doc.descendants_or_self(t) {
                        if let Some(sym) = doc.name_sym(n) {
                            self.structural.insert(sym);
                        }
                    }
                }
                UpdateOp::Rename { .. } => {
                    if let Some(sym) = doc.name_sym(t) {
                        self.structural.insert(sym);
                    }
                }
                UpdateOp::Insert { .. } => {}
            }
        }
        if !targets.is_empty() {
            op_alphabet_into(op, &mut self.structural);
        }
    }

    /// Carries this footprint across a *retained* rename write: for each
    /// mapping, in application order, any set that contains one of the
    /// rename's old labels gains the new label too.
    ///
    /// A cached view result stores the footprint of its own updates in
    /// the label vocabulary the document had **at materialization time**.
    /// A retained rename applied to base and cached result alike leaves
    /// the diverged *nodes* where they were but changes their *names*,
    /// so a later update that reads a renamed ancestor under its new
    /// label would slip past the disjointness test if the stored sets
    /// kept only the old names. The old labels are deliberately kept: a
    /// selective rename (`z/a[q]`) may have renamed only some of the
    /// nodes a label covers, so the post-rename footprint is the union.
    /// Processing mappings in order makes chained renames (`a→b`, then
    /// `b→c`, possibly across separate writes) accumulate correctly.
    pub fn apply_renames(&mut self, renames: &[RenameMapping]) {
        for r in renames {
            if self.structural.intersects(&r.old) {
                self.structural.insert(r.new);
            }
            if self.valued.intersects(&r.old) {
                self.valued.insert(r.new);
            }
        }
    }

    /// The flattened footprint (structural ∪ valued) — the *dynamic
    /// delta* an update presents to view alphabets.
    pub fn flatten(&self) -> LabelSet {
        let mut out = self.structural.clone();
        out.union_with(&self.valued);
        out
    }
}

/// The flattened dynamic delta of applying `op` to `targets` in `doc`:
/// labels of every ancestor-or-self of each target, the whole removed
/// subtree for delete/replace, the introduced fragment for
/// insert/replace, and the new label for rename. **Must be called on
/// the pre-apply document.**
pub fn touched_labels_into(doc: &Document, targets: &[NodeId], op: &UpdateOp, out: &mut LabelSet) {
    let mut touched = TouchedLabels::new();
    touched.record(doc, targets, op);
    out.union_with(&touched.structural);
    out.union_with(&touched.valued);
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::{eval_path_root, parse_path};

    fn syms(set: &LabelSet, labels: &[&str]) -> Vec<bool> {
        labels.iter().map(|l| set.contains(intern(l))).collect()
    }

    #[test]
    fn update_alphabet_covers_path_qualifiers_and_fragment() {
        let path = parse_path("//part[supplier/sname = 'HP']").unwrap();
        let op = UpdateOp::Insert {
            elem: Document::parse("<note><by>x</by></note>").unwrap(),
            pos: Default::default(),
        };
        let a = update_alphabet(&path, &op);
        assert_eq!(
            syms(&a, &["part", "supplier", "sname", "note", "by", "price"]),
            [true, true, true, true, true, false]
        );
        assert!(!a.has_wildcard());
    }

    #[test]
    fn label_is_qualifiers_are_in_the_alphabet() {
        let path = parse_path("//a[label() = b]").unwrap();
        let a = update_alphabet(&path, &UpdateOp::Delete);
        assert!(a.contains(intern("b")));
    }

    #[test]
    fn wildcard_paths_are_flagged() {
        let path = parse_path("r/*/x").unwrap();
        assert!(update_alphabet(&path, &UpdateOp::Delete).has_wildcard());
    }

    #[test]
    fn rename_alphabet_includes_the_new_label() {
        let path = parse_path("//old").unwrap();
        let a = update_alphabet(
            &path,
            &UpdateOp::Rename {
                name: intern("brand-new"),
            },
        );
        assert!(a.contains(intern("old")) && a.contains(intern("brand-new")));
    }

    #[test]
    fn delete_delta_has_subtree_and_ancestors() {
        let doc = Document::parse("<r><mid><x><deep>t</deep></x></mid><other/></r>").unwrap();
        let path = parse_path("//x").unwrap();
        let targets = eval_path_root(&doc, &path);
        let mut delta = LabelSet::new();
        touched_labels_into(&doc, &targets, &UpdateOp::Delete, &mut delta);
        // Subtree: x, deep. Ancestors-or-self: r, mid, x. Untouched: other.
        assert_eq!(
            syms(&delta, &["x", "deep", "r", "mid", "other"]),
            [true, true, true, true, false]
        );
    }

    #[test]
    fn insert_delta_has_fragment_and_ancestors_but_not_siblings() {
        let doc = Document::parse("<r><mid><x/></mid><sib/></r>").unwrap();
        let path = parse_path("//x").unwrap();
        let targets = eval_path_root(&doc, &path);
        let op = UpdateOp::Insert {
            elem: Document::parse("<fresh/>").unwrap(),
            pos: Default::default(),
        };
        let mut delta = LabelSet::new();
        touched_labels_into(&doc, &targets, &op, &mut delta);
        assert_eq!(
            syms(&delta, &["fresh", "x", "mid", "r", "sib"]),
            [true, true, true, true, false]
        );
    }

    #[test]
    fn rename_mapping_captures_pre_apply_labels() {
        let doc = Document::parse("<r><a/><z><a/><w/></z></r>").unwrap();
        let path = parse_path("//a").unwrap();
        let targets = eval_path_root(&doc, &path);
        let m = RenameMapping::capture(&doc, &targets, intern("b")).unwrap();
        assert_eq!(syms(&m.old, &["a", "w", "r"]), [true, false, false]);
        assert_eq!(m.new, intern("b"));
        assert!(RenameMapping::capture(&doc, &[], intern("b")).is_none());
    }

    #[test]
    fn apply_renames_unions_new_labels_and_chains_in_order() {
        let mut t = TouchedLabels {
            structural: [intern("s")].into_iter().collect(),
            valued: [intern("r"), intern("a")].into_iter().collect(),
        };
        let renames = [
            RenameMapping {
                old: [intern("a")].into_iter().collect(),
                new: intern("b"),
            },
            // Chained: reads the label the previous mapping introduced.
            RenameMapping {
                old: [intern("b")].into_iter().collect(),
                new: intern("c"),
            },
            // Disjoint from every set: must change nothing.
            RenameMapping {
                old: [intern("zzz")].into_iter().collect(),
                new: intern("qqq"),
            },
        ];
        t.apply_renames(&renames);
        assert_eq!(
            syms(&t.valued, &["r", "a", "b", "c", "qqq"]),
            [true, true, true, true, false]
        );
        assert_eq!(
            syms(&t.structural, &["s", "b", "qqq"]),
            [true, false, false]
        );
    }

    #[test]
    fn qualifier_anchor_alphabet_marks_anchors_only() {
        let mut out = LabelSet::new();
        qualifier_anchor_alphabet_into(
            &parse_path("site/people/person[name = 'x']/address").unwrap(),
            &mut out,
        );
        assert_eq!(
            syms(&out, &["person", "site", "people", "name", "address"]),
            [true, false, false, false, false]
        );
        assert!(!out.has_wildcard());
        // No qualifiers at all: empty — always patch-eligible.
        let mut none = LabelSet::new();
        qualifier_anchor_alphabet_into(&parse_path("//person/name").unwrap(), &mut none);
        assert!(none.is_empty());
        // Descendant-step anchor: any label could anchor it.
        let mut wild = LabelSet::new();
        qualifier_anchor_alphabet_into(&parse_path("a//*[b = '1']").unwrap(), &mut wild);
        assert!(wild.has_wildcard());
    }

    #[test]
    fn no_targets_means_empty_delta() {
        let doc = Document::parse("<r><a/></r>").unwrap();
        let path = parse_path("//nope").unwrap();
        let targets = eval_path_root(&doc, &path);
        assert!(targets.is_empty());
        let op = UpdateOp::Insert {
            elem: Document::parse("<fresh/>").unwrap(),
            pos: Default::default(),
        };
        let mut delta = LabelSet::new();
        touched_labels_into(&doc, &targets, &op, &mut delta);
        assert!(delta.is_empty(), "nothing touched, nothing recorded");
    }
}
