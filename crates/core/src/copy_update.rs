//! The copy-and-update baseline (≈ GalaXUpdate in the experiments).
//!
//! This implements the *conceptual semantics* of Section 2 literally:
//! (a) copy the input tree, (b) evaluate `r[[p]]` on the copy, (c) apply
//! the update in place, (d) return the copy. It always costs Ω(|T|) time
//! *and* space — the profile the paper attributes to Galax ("it appears
//! that Galax implements transform queries by taking a snapshot") — and
//! it is the ground truth the other four methods are tested against.

use xust_tree::{Document, NodeId};
use xust_xpath::eval_path_root;

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// Evaluates `Qt(T)` by snapshot-and-update.
pub fn copy_update(doc: &Document, q: &TransformQuery) -> Document {
    let mut copy = doc.clone();
    let targets = eval_path_root(&copy, &q.path);
    apply_update(&mut copy, &targets, &q.op);
    copy
}

/// Applies an update to an already-materialized node set — the shared
/// "execute `u` on `r[[p]]`" primitive (also used to *destructively*
/// update documents, which transform queries by definition never do to
/// their source).
pub fn apply_update(doc: &mut Document, targets: &[NodeId], op: &UpdateOp) {
    match op {
        UpdateOp::Insert { elem, pos } => {
            let src_root = match elem.root() {
                Some(r) => r,
                None => return,
            };
            for &v in targets {
                // Sibling positions are undefined at the root (a document
                // has exactly one root): skip, matching every method.
                if pos.is_sibling() && doc.parent(v).is_none() {
                    continue;
                }
                // Each selected node receives its own fresh copy of e.
                let copy = doc.deep_copy_from(elem, src_root);
                match pos {
                    InsertPos::LastInto => doc.append_child(v, copy),
                    InsertPos::FirstInto => doc.prepend_child(v, copy),
                    InsertPos::Before => doc.insert_before(v, copy),
                    InsertPos::After => doc.insert_after(v, copy),
                }
            }
        }
        UpdateOp::Delete => {
            for &v in targets {
                // `delete` (not `detach`): the subtree is gone for good,
                // so its arena slots are recycled. Safe on nested target
                // lists (`//part` selecting a part inside a part): a
                // node already recycled by an ancestor's delete is a
                // no-op.
                doc.delete(v);
            }
        }
        UpdateOp::Replace { elem } => {
            let src_root = match elem.root() {
                Some(r) => r,
                None => return,
            };
            for &v in targets {
                let copy = doc.deep_copy_from(elem, src_root);
                doc.replace(v, copy);
            }
        }
        UpdateOp::Rename { name } => {
            for &v in targets {
                doc.rename(v, *name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>kb</pname><supplier><price>9</price></supplier></part><part><pname>mouse</pname></part></db>",
        )
        .unwrap()
    }

    #[test]
    fn delete_prices() {
        let q = TransformQuery::delete("d", parse_path("//price").unwrap());
        let out = copy_update(&doc(), &q);
        assert_eq!(
            out.serialize(),
            "<db><part><pname>kb</pname><supplier/></part><part><pname>mouse</pname></part></db>"
        );
        // Source untouched (non-destructive).
        assert!(doc().serialize().contains("price"));
    }

    #[test]
    fn insert_into_each_target() {
        let q = TransformQuery::insert(
            "d",
            parse_path("db/part").unwrap(),
            Document::parse("<tag/>").unwrap(),
        );
        let out = copy_update(&doc(), &q);
        assert_eq!(out.serialize().matches("<tag/>").count(), 2);
        // Inserted as *last* child.
        assert!(out
            .serialize()
            .contains("<pname>mouse</pname><tag/></part>"));
    }

    #[test]
    fn destructive_updates_keep_arena_bounded() {
        // The serve layer applies updates destructively to long-lived
        // documents; repeated insert→delete cycles must reuse arena
        // slots instead of leaking one per deleted node.
        let mut d = doc();
        let insert = TransformQuery::insert(
            "d",
            parse_path("db/part").unwrap(),
            Document::parse("<tmp><t>x</t></tmp>").unwrap(),
        );
        let delete = TransformQuery::delete("d", parse_path("//tmp").unwrap());
        let mut high_water = 0;
        for cycle in 0..50 {
            let targets = xust_xpath::eval_path_root(&d, &insert.path);
            apply_update(&mut d, &targets, &insert.op);
            if cycle == 0 {
                high_water = d.arena_len();
            } else {
                assert_eq!(d.arena_len(), high_water, "arena leaked on cycle {cycle}");
            }
            let targets = xust_xpath::eval_path_root(&d, &delete.path);
            apply_update(&mut d, &targets, &delete.op);
        }
        assert_eq!(d.serialize(), doc().serialize());
    }

    #[test]
    fn nested_delete_targets_are_safe() {
        // `//part` selects an ancestor part AND its nested part; the
        // recycling delete must handle the descendant having already
        // been freed.
        let d = Document::parse("<db><part><part><pname>k</pname></part></part></db>").unwrap();
        let q = TransformQuery::delete("d", parse_path("//part").unwrap());
        let out = copy_update(&d, &q);
        assert_eq!(out.serialize(), "<db/>");
    }

    #[test]
    fn replace_supplier() {
        let q = TransformQuery::replace(
            "d",
            parse_path("db/part/supplier").unwrap(),
            Document::parse("<redacted/>").unwrap(),
        );
        let out = copy_update(&doc(), &q);
        assert!(out.serialize().contains("<redacted/>"));
        assert!(!out.serialize().contains("price"));
    }

    #[test]
    fn rename_parts() {
        let q = TransformQuery::rename("d", parse_path("db/part").unwrap(), "component");
        let out = copy_update(&doc(), &q);
        assert_eq!(out.serialize().matches("<component>").count(), 2);
        assert!(!out.serialize().contains("<part>"));
    }

    #[test]
    fn delete_root_yields_empty() {
        let q = TransformQuery::delete("d", parse_path("//db").unwrap());
        let out = copy_update(&doc(), &q);
        assert_eq!(out.root(), None);
        assert_eq!(out.serialize(), "");
    }

    #[test]
    fn rename_root() {
        let q = TransformQuery::rename("d", xust_xpath::Path::empty(), "newdb");
        let out = copy_update(&doc(), &q);
        assert!(out.serialize().starts_with("<newdb>"));
    }

    #[test]
    fn nested_targets_insert() {
        let d = Document::parse("<a><b><b/></b></a>").unwrap();
        let q = TransformQuery::insert(
            "d",
            parse_path("//b").unwrap(),
            Document::parse("<x/>").unwrap(),
        );
        let out = copy_update(&d, &q);
        assert_eq!(out.serialize(), "<a><b><b><x/></b><x/></b></a>");
    }

    #[test]
    fn overlapping_delete_targets() {
        let d = Document::parse("<a><b><b/></b><b/></a>").unwrap();
        let q = TransformQuery::delete("d", parse_path("//b").unwrap());
        let out = copy_update(&d, &q);
        assert_eq!(out.serialize(), "<a/>");
    }
}
