//! Streaming evaluation of multi-update transform queries: the
//! `twoPassSAX` architecture (Section 6) generalized to
//! `modify do (u1, …, uk)` with snapshot semantics.
//!
//! **Pass 1** parses the input once and runs k independent qualifier
//! prepasses ([`crate::PathPrepass`]) side by side — one bottom-up
//! `QualDP` per embedded path, all fed from the same event stream.
//! **Pass 2** re-parses, replays the k truth lists through k
//! [`crate::PathSelector`]s, merges the per-node effects under the
//! conflict rules of [`crate::multi`], and emits the transformed
//! document as events.
//!
//! Memory is O(depth · Σ|pᵢ|) + Σ|Ldᵢ| — independent of |T|, like the
//! single-update streaming method.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path as FsPath;

use xust_intern::Sym;
use xust_sax::{SaxEvent, SaxParser};

use crate::multi::MultiTransformQuery;
use crate::query::{InsertPos, UpdateOp};
use crate::sax2pass::{
    doc_events, EventSink, LdStorage, PathPrepass, PathSelector, PreparedPath, SaxStats,
    SaxTransformError, WriterSink,
};

/// Streaming multi-update transform over two reads of the input.
pub fn multi_two_pass_sax<R1: Read, R2: Read, W: Write>(
    mut pass1: SaxParser<R1>,
    mut pass2: SaxParser<R2>,
    q: &MultiTransformQuery,
    out: W,
    storage: LdStorage,
) -> Result<SaxStats, SaxTransformError> {
    // Pass 1: k qualifier prepasses over one parse.
    let mut prepasses: Vec<PathPrepass> = q
        .updates
        .iter()
        .map(|(p, _)| PathPrepass::new(p, storage))
        .collect();
    while let Some(ev) = pass1.next_event()? {
        for pre in &mut prepasses {
            pre.feed(ev.clone());
        }
    }
    let prepared: Vec<PreparedPath> = prepasses
        .into_iter()
        .map(PathPrepass::finish)
        .collect::<Result<_, _>>()?;
    let mut stats = SaxStats::default();
    for p in &prepared {
        stats.elements = stats.elements.max(p.stats.elements);
        stats.ld_entries += p.stats.ld_entries;
        stats.max_depth = stats.max_depth.max(p.stats.max_depth);
    }

    // Per-update constant-element event streams.
    let elem_events: Vec<Vec<SaxEvent>> = q
        .updates
        .iter()
        .map(|(_, op)| match op {
            UpdateOp::Insert { elem, .. } | UpdateOp::Replace { elem } => doc_events(elem),
            _ => Vec::new(),
        })
        .collect();

    // Pass 2: replay through k selectors, merge effects, emit.
    let mut selectors: Vec<PathSelector<'_>> =
        prepared.iter().map(PreparedPath::selector).collect();
    let ops: Vec<&UpdateOp> = q.updates.iter().map(|(_, op)| op).collect();
    let mut sink = WriterSink::new(out);
    let mut stack: Vec<MFrame> = Vec::new();
    let mut suppress: usize = 0;

    while let Some(ev) = pass2.next_event()? {
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => {}
            SaxEvent::StartElement { name, attrs } => {
                // Every selector advances on every element — the cursor
                // replay must see the same stream as pass 1, suppressed
                // regions included.
                let at_root = stack.is_empty();
                let mut acts = Merged::default();
                for (i, sel) in selectors.iter_mut().enumerate() {
                    if sel.start_element(name) {
                        acts.absorb(i, ops[i]);
                    }
                }
                let mut frame = MFrame::default();
                if suppress > 0 {
                    suppress += 1;
                    frame.silent = true;
                } else {
                    if !at_root {
                        for &i in &acts.ins_before {
                            splice(&mut sink, &elem_events[i])?;
                        }
                        frame.ins_after = acts.ins_after;
                    }
                    if acts.deleted {
                        suppress += 1;
                        frame.suppressing = true;
                    } else if let Some(i) = acts.replace {
                        splice(&mut sink, &elem_events[i])?;
                        suppress += 1;
                        frame.suppressing = true;
                    } else {
                        let out_name = acts.rename.unwrap_or(name);
                        sink.event(SaxEvent::StartElement {
                            name: out_name,
                            attrs,
                        })?;
                        for &i in &acts.ins_first {
                            splice(&mut sink, &elem_events[i])?;
                        }
                        frame.end_name = Some(out_name);
                        frame.ins_last = acts.ins_last;
                    }
                }
                stack.push(frame);
                stats.max_depth = stats.max_depth.max(stack.len());
            }
            SaxEvent::Text(t) => {
                if suppress == 0 && !stack.is_empty() {
                    sink.event(SaxEvent::Text(t))?;
                }
            }
            SaxEvent::EndElement(_) => {
                for sel in &mut selectors {
                    sel.end_element();
                }
                let frame = stack
                    .pop()
                    .ok_or_else(|| SaxTransformError::Desync("end element without start".into()))?;
                if frame.silent {
                    suppress = suppress.saturating_sub(1);
                    continue;
                }
                if let Some(name) = frame.end_name {
                    for &i in &frame.ins_last {
                        splice(&mut sink, &elem_events[i])?;
                    }
                    sink.event(SaxEvent::EndElement(name))?;
                }
                if frame.suppressing {
                    suppress = suppress.saturating_sub(1);
                }
                // Sibling inserts survive delete/replace of their anchor
                // (conflict rule 5): emitted once the anchor is fully
                // consumed, in update order.
                for &i in &frame.ins_after {
                    splice(&mut sink, &elem_events[i])?;
                }
            }
        }
    }
    sink.finish()?;
    Ok(stats)
}

/// Convenience: transform a string, returning the serialized result.
pub fn multi_two_pass_sax_str(
    xml: &str,
    q: &MultiTransformQuery,
) -> Result<String, SaxTransformError> {
    let mut out = Vec::new();
    multi_two_pass_sax(
        SaxParser::from_str(xml),
        SaxParser::from_str(xml),
        q,
        &mut out,
        LdStorage::Memory,
    )?;
    Ok(String::from_utf8(out).expect("writer produces UTF-8"))
}

/// Convenience: transform file → file with bounded memory.
pub fn multi_two_pass_sax_files(
    input: impl AsRef<FsPath>,
    q: &MultiTransformQuery,
    output: impl AsRef<FsPath>,
    storage: LdStorage,
) -> Result<SaxStats, SaxTransformError> {
    let p1 = SaxParser::from_file(&input)?;
    let p2 = SaxParser::from_file(&input)?;
    let out = BufWriter::new(File::create(output)?);
    multi_two_pass_sax::<BufReader<File>, BufReader<File>, _>(p1, p2, q, out, storage)
}

/// Streams a whole batch of `(input, output)` file pairs through the
/// multi-update transform in parallel, fanning the jobs across
/// `threads` work-stealing workers (see
/// [`crate::multi::parallel_map_stats`]). Per-job memory stays
/// O(depth · Σ|pᵢ|) + Σ|Ldᵢ|, so total memory is bounded by the worker
/// count, not the batch size. Results are returned in job order; the
/// first failing job's error aborts the batch result (all jobs still
/// run to completion).
pub fn multi_two_pass_sax_files_batch(
    jobs: &[(std::path::PathBuf, std::path::PathBuf)],
    q: &MultiTransformQuery,
    storage: LdStorage,
    threads: usize,
) -> Result<Vec<SaxStats>, SaxTransformError> {
    let results = crate::multi::parallel_map(jobs.to_vec(), threads, |_, (input, output)| {
        multi_two_pass_sax_files(input, q, output, storage)
    });
    results.into_iter().collect()
}

fn splice(sink: &mut dyn EventSink, events: &[SaxEvent]) -> Result<(), SaxTransformError> {
    for ev in events {
        sink.event(ev.clone())?;
    }
    Ok(())
}

/// Merged per-node effects, as *indices* into the update list (so the
/// constant-element event streams are shared, not cloned).
#[derive(Default)]
struct Merged {
    deleted: bool,
    replace: Option<usize>,
    rename: Option<Sym>,
    ins_first: Vec<usize>,
    ins_last: Vec<usize>,
    ins_before: Vec<usize>,
    ins_after: Vec<usize>,
}

impl Merged {
    fn absorb(&mut self, i: usize, op: &UpdateOp) {
        match op {
            UpdateOp::Delete => self.deleted = true,
            UpdateOp::Replace { .. } => {
                if self.replace.is_none() {
                    self.replace = Some(i);
                }
            }
            UpdateOp::Rename { name } => {
                if self.rename.is_none() {
                    self.rename = Some(*name);
                }
            }
            UpdateOp::Insert { pos, .. } => match pos {
                InsertPos::FirstInto => self.ins_first.push(i),
                InsertPos::LastInto => self.ins_last.push(i),
                InsertPos::Before => self.ins_before.push(i),
                InsertPos::After => self.ins_after.push(i),
            },
        }
    }
}

/// Per-open-element pass-2 state.
#[derive(Default)]
struct MFrame {
    /// End tag to emit (None when the element is suppressed).
    end_name: Option<Sym>,
    /// Started inside an already-suppressed region.
    silent: bool,
    /// This element itself is deleted/replaced.
    suppressing: bool,
    /// `insert … into` updates to splice before the end tag.
    ins_last: Vec<usize>,
    /// `insert … after` updates to splice after the element.
    ins_after: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{multi_snapshot, MultiTransformQuery};
    use crate::query::parse_transform;
    use xust_tree::Document;
    use xust_xpath::parse_path;

    fn agree(xml: &str, q: &MultiTransformQuery) -> String {
        let d = Document::parse(xml).unwrap();
        let expect = multi_snapshot(&d, q).serialize();
        let got = multi_two_pass_sax_str(xml, q).unwrap();
        assert_eq!(got, expect, "streaming multi deviates on {xml}");
        got
    }

    fn q(updates: Vec<(&str, UpdateOp)>) -> MultiTransformQuery {
        MultiTransformQuery::new(
            "d",
            updates
                .into_iter()
                .map(|(p, op)| (parse_path(p).unwrap(), op))
                .collect(),
        )
    }

    fn elem(s: &str) -> Document {
        Document::parse(s).unwrap()
    }

    #[test]
    fn independent_rules_stream() {
        let mq = q(vec![
            ("//price", UpdateOp::Delete),
            (
                "//part",
                UpdateOp::Insert {
                    elem: elem("<ok/>"),
                    pos: InsertPos::LastInto,
                },
            ),
        ]);
        let out = agree("<db><part><price>1</price></part><part/></db>", &mq);
        assert_eq!(out, "<db><part><ok/></part><part><ok/></part></db>");
    }

    #[test]
    fn conflict_rules_stream() {
        // delete dominates; first replace wins; sibling inserts survive.
        let mq = q(vec![
            ("//x", UpdateOp::Rename { name: "y".into() }),
            ("//x", UpdateOp::Delete),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<a/>"),
                    pos: InsertPos::After,
                },
            ),
        ]);
        assert_eq!(agree("<db><x/><z/></db>", &mq), "<db><a/><z/></db>");

        let mq = q(vec![
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<b/>"),
                    pos: InsertPos::Before,
                },
            ),
            ("//x", UpdateOp::Replace { elem: elem("<r/>") }),
            ("//x", UpdateOp::Replace { elem: elem("<s/>") }),
        ]);
        assert_eq!(agree("<db><x/></db>", &mq), "<db><b/><r/></db>");
    }

    #[test]
    fn qualified_paths_stream() {
        let mq = q(vec![
            ("//part[pname = 'kb']/price", UpdateOp::Delete),
            (
                "//part[not(price < 10)]",
                UpdateOp::Insert {
                    elem: elem("<pricey/>"),
                    pos: InsertPos::FirstInto,
                },
            ),
        ]);
        agree(
            "<db><part><pname>kb</pname><price>12</price></part><part><pname>m</pname><price>5</price></part></db>",
            &mq,
        );
    }

    #[test]
    fn nested_and_overlapping_targets_stream() {
        let mq = q(vec![
            ("//b", UpdateOp::Rename { name: "c".into() }),
            (
                "//b//b",
                UpdateOp::Insert {
                    elem: elem("<deep/>"),
                    pos: InsertPos::LastInto,
                },
            ),
        ]);
        agree("<db><b><b><b/></b></b></db>", &mq);
    }

    #[test]
    fn updates_inside_suppressed_regions_are_void() {
        let mq = q(vec![
            ("//top", UpdateOp::Delete),
            (
                "//sub",
                UpdateOp::Insert {
                    elem: elem("<never/>"),
                    pos: InsertPos::Before,
                },
            ),
        ]);
        assert_eq!(
            agree("<db><top><sub/></top><keep><sub/></keep></db>", &mq),
            "<db><keep><never/><sub/></keep></db>"
        );
    }

    #[test]
    fn root_effects_stream() {
        // ε-free paths only (streaming handles root via the selectors).
        let mq = q(vec![("//db", UpdateOp::Rename { name: "r2".into() })]);
        assert_eq!(agree("<db><x/></db>", &mq), "<r2><x/></r2>");
        let mq = q(vec![(
            "//db",
            UpdateOp::Insert {
                elem: elem("<s/>"),
                pos: InsertPos::After,
            },
        )]);
        // Sibling insert at root skipped.
        assert_eq!(agree("<db><x/></db>", &mq), "<db><x/></db>");
    }

    #[test]
    fn single_rule_matches_single_update_streaming() {
        let single = parse_transform(
            r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
        )
        .unwrap();
        let xml = "<db><part><price>1</price><pname>a</pname></part></db>";
        let via_single = crate::sax2pass::two_pass_sax_str(xml, &single).unwrap();
        let via_multi =
            multi_two_pass_sax_str(xml, &MultiTransformQuery::from_single(single)).unwrap();
        assert_eq!(via_single, via_multi);
    }

    #[test]
    fn files_roundtrip_multi() {
        let dir = std::env::temp_dir();
        let input = dir.join("xust_multi_sax_in.xml");
        let output = dir.join("xust_multi_sax_out.xml");
        let xml = "<db><part><price>1</price></part></db>";
        std::fs::write(&input, xml).unwrap();
        let mq = q(vec![("//price", UpdateOp::Delete)]);
        let stats = multi_two_pass_sax_files(&input, &mq, &output, LdStorage::TempFile).unwrap();
        assert_eq!(
            std::fs::read_to_string(&output).unwrap(),
            "<db><part/></db>"
        );
        assert!(stats.max_depth >= 2);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn files_batch_matches_sequential() {
        let dir = std::env::temp_dir();
        let mq = q(vec![
            ("//price", UpdateOp::Delete),
            (
                "//part",
                UpdateOp::Rename {
                    name: "item".into(),
                },
            ),
        ]);
        let jobs: Vec<(std::path::PathBuf, std::path::PathBuf)> = (0..6)
            .map(|i| {
                let input = dir.join(format!("xust_multi_batch_in_{i}.xml"));
                let output = dir.join(format!("xust_multi_batch_out_{i}.xml"));
                let mut xml = String::from("<db>");
                for j in 0..=i {
                    xml.push_str(&format!("<part><price>{j}</price><k>v{j}</k></part>"));
                }
                xml.push_str("</db>");
                std::fs::write(&input, xml).unwrap();
                (input, output)
            })
            .collect();
        let stats = multi_two_pass_sax_files_batch(&jobs, &mq, LdStorage::Memory, 3).unwrap();
        assert_eq!(stats.len(), jobs.len());
        for (input, output) in &jobs {
            let xml = std::fs::read_to_string(input).unwrap();
            let expect = multi_two_pass_sax_str(&xml, &mq).unwrap();
            assert_eq!(std::fs::read_to_string(output).unwrap(), expect);
            std::fs::remove_file(input).ok();
            std::fs::remove_file(output).ok();
        }
    }

    #[test]
    fn files_batch_surfaces_job_errors() {
        let dir = std::env::temp_dir();
        let good_in = dir.join("xust_multi_batch_ok.xml");
        let good_out = dir.join("xust_multi_batch_ok_out.xml");
        let bad_in = dir.join("xust_multi_batch_bad.xml");
        let bad_out = dir.join("xust_multi_batch_bad_out.xml");
        std::fs::write(&good_in, "<db><x/></db>").unwrap();
        std::fs::write(&bad_in, "<db><x></db>").unwrap();
        let mq = q(vec![("//x", UpdateOp::Delete)]);
        let jobs = vec![
            (good_in.clone(), good_out.clone()),
            (bad_in.clone(), bad_out.clone()),
        ];
        assert!(multi_two_pass_sax_files_batch(&jobs, &mq, LdStorage::Memory, 2).is_err());
        for f in [&good_in, &good_out, &bad_in, &bad_out] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn malformed_input_errors_multi() {
        let mq = q(vec![("//x", UpdateOp::Delete)]);
        assert!(multi_two_pass_sax_str("<a><b></a>", &mq).is_err());
    }
}
