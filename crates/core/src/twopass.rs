//! Algorithm `twoPass` — `bottomUp` followed by `topDown` (Fig. 10),
//! the experiments' **TD-BU**.
//!
//! After the bottom-up pass annotates every relevant node with qualifier
//! truth values, `checkp(q, n)` in the top-down pass is a constant-time
//! lookup, making the whole transform O(|T|·|p|²) combined and linear in
//! |T| — the paper's optimality argument (two passes are necessary for
//! evaluating the embedded XPath alone, per Koch \[19\]).

use xust_tree::Document;

use crate::bottomup::bottom_up;
use crate::query::TransformQuery;
use crate::topdown::top_down_with;

/// Evaluates `Qt(T)` with the two-pass method.
pub fn two_pass(doc: &Document, q: &TransformQuery) -> Document {
    // Pass 1 (Fig. 10 lines 1–3): filtering NFA + qualifier annotation.
    let ann = bottom_up(doc, &q.path);
    // Pass 2 (lines 4–6): selecting NFA with O(1) checkp.
    top_down_with(doc, q, &mut |_, n, step, _| ann.check(n, step))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_update::copy_update;
    use crate::query::UpdateOp;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>",
        )
        .unwrap()
    }

    fn agree(q: &TransformQuery) {
        let d = doc();
        let expected = copy_update(&d, q);
        let got = two_pass(&d, q);
        assert!(
            docs_eq(&expected, &got),
            "twoPass disagrees with copy-update for {} {}\nexpected: {}\ngot:      {}",
            q.op.kind(),
            q.path,
            expected.serialize(),
            got.serialize()
        );
    }

    #[test]
    fn all_ops_match_baseline() {
        let e = Document::parse("<mark/>").unwrap();
        for path in [
            "//price",
            "db/part/supplier",
            "//part[pname = 'keyboard']//part",
            "//supplier[price < 15]",
            "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
            "db/part[supplier/sname = 'IBM']/pname",
            "//part[pname = 'keyboard' or pname = 'mouse']",
            "zzz/nothing",
        ] {
            let p = parse_path(path).unwrap();
            agree(&TransformQuery::delete("d", p.clone()));
            agree(&TransformQuery::insert("d", p.clone(), e.clone()));
            agree(&TransformQuery::replace("d", p.clone(), e.clone()));
            agree(&TransformQuery::rename("d", p, "renamed"));
        }
    }

    #[test]
    fn paper_example_32() {
        // Example 3.2: insert supplier HP into every part selected by p1.
        let q = TransformQuery::insert(
            "d",
            parse_path(
                "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
            )
            .unwrap(),
            Document::parse("<supplier><sname>HP</sname></supplier>").unwrap(),
        );
        let out = two_pass(&doc(), &q);
        // Only the nested part (no supplier) qualifies.
        assert_eq!(
            out.serialize(),
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname><supplier><sname>HP</sname></supplier></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>"
        );
    }

    #[test]
    fn epsilon_path() {
        let q = TransformQuery::rename("d", xust_xpath::Path::empty(), "root2");
        let out = two_pass(&doc(), &q);
        assert!(out.serialize().starts_with("<root2>"));
    }

    #[test]
    fn security_view_example_11() {
        // Example 1.1: delete //supplier[country=…]/price as a security
        // view.
        let d = Document::parse(
            "<db><part><supplier><price>9</price><country>c1</country></supplier><supplier><price>8</price><country>ok</country></supplier></part></db>",
        )
        .unwrap();
        let q =
            TransformQuery::delete("d", parse_path("//supplier[country = 'c1']/price").unwrap());
        let out = two_pass(&d, &q);
        let expected = copy_update(&d, &q);
        assert!(docs_eq(&expected, &out));
        assert_eq!(out.serialize().matches("<price>").count(), 1);
        assert!(out.serialize().contains("<price>8</price>"));
    }

    #[test]
    fn matches_on_update_kind() {
        assert_eq!(UpdateOp::Delete.kind(), "delete");
    }
}
