//! Unified entry point over the five evaluation methods of the paper.

use std::fmt;

use xust_tree::Document;

use crate::copy_update::copy_update;
use crate::naive::{naive_direct, naive_xquery};
use crate::query::TransformQuery;
use crate::sax2pass::two_pass_sax_str;
use crate::topdown::top_down;
use crate::twopass::two_pass;

/// The five evaluation strategies compared in Section 7 (Fig. 12/13),
/// plus the rewriting variant run on the XQuery engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// Snapshot + in-place update (≈ GalaXUpdate).
    CopyUpdate,
    /// Section 3.1's rewriting plan, natively (NAIVE).
    Naive,
    /// Section 3.1's rewriting executed as generated XQuery text on the
    /// `xust-xquery` engine.
    NaiveXQuery,
    /// Section 3.3's automaton method with native qualifier evaluation
    /// (GENTOP).
    TopDown,
    /// Section 5's bottomUp + topDown (TD-BU).
    TwoPass,
    /// Section 6's streaming two-pass over SAX events.
    TwoPassSax,
}

impl Method {
    /// All methods, in the order the paper's figures list them.
    pub const ALL: [Method; 6] = [
        Method::CopyUpdate,
        Method::Naive,
        Method::NaiveXQuery,
        Method::TopDown,
        Method::TwoPass,
        Method::TwoPassSax,
    ];

    /// The label used in the paper's figures.
    pub fn paper_name(&self) -> &'static str {
        match self {
            Method::CopyUpdate => "GalaXUpdate",
            Method::Naive => "NAIVE",
            Method::NaiveXQuery => "NAIVE(xquery)",
            Method::TopDown => "GENTOP",
            Method::TwoPass => "TD-BU",
            Method::TwoPassSax => "twoPassSAX",
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.paper_name())
    }
}

/// Error from [`evaluate`].
#[derive(Debug)]
pub struct TransformError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform evaluation error: {}", self.message)
    }
}

impl std::error::Error for TransformError {}

/// Evaluates `Qt(T)` with the chosen method. All methods produce
/// structurally identical results (the cross-method equivalence tests and
/// proptests enforce this); they differ only in cost profile.
pub fn evaluate(
    doc: &Document,
    q: &TransformQuery,
    method: Method,
) -> Result<Document, TransformError> {
    match method {
        Method::CopyUpdate => Ok(copy_update(doc, q)),
        Method::Naive => Ok(naive_direct(doc, q)),
        Method::NaiveXQuery => naive_xquery(doc, q).map_err(|message| TransformError { message }),
        Method::TopDown => Ok(top_down(doc, q)),
        Method::TwoPass => Ok(two_pass(doc, q)),
        Method::TwoPassSax => {
            // DOM-in, DOM-out convenience wrapper; use
            // `sax2pass::two_pass_sax_files` for true streaming.
            let xml = doc.serialize();
            let out = two_pass_sax_str(&xml, q).map_err(|e| TransformError {
                message: e.to_string(),
            })?;
            if out.is_empty() {
                return Ok(Document::new());
            }
            Document::parse(&out).map_err(|e| TransformError {
                message: e.to_string(),
            })
        }
    }
}

/// Evaluates a transform query written in concrete syntax.
///
/// ```
/// use xust_tree::Document;
/// use xust_core::{evaluate_str, Method};
///
/// let doc = Document::parse("<db><part><price>9</price></part></db>").unwrap();
/// let out = evaluate_str(
///     &doc,
///     r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
///     Method::TwoPass,
/// ).unwrap();
/// assert_eq!(out.serialize(), "<db><part/></db>");
/// ```
pub fn evaluate_str(
    doc: &Document,
    query: &str,
    method: Method,
) -> Result<Document, TransformError> {
    let q = crate::query::parse_transform(query).map_err(|e| TransformError {
        message: e.to_string(),
    })?;
    evaluate(doc, &q, method)
}

/// Re-exported so callers of the streaming API can pick Ld storage.
pub use crate::sax2pass::LdStorage as SaxLdStorage;

#[cfg(test)]
mod tests {
    use super::*;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    #[test]
    fn all_methods_agree() {
        let doc = Document::parse(
            "<db><part><pname>kb</pname><supplier><price>9</price><country>A</country></supplier></part><part><pname>m</pname><supplier><price>20</price><country>B</country></supplier></part></db>",
        )
        .unwrap();
        let queries = [
            TransformQuery::delete("db", parse_path("//price").unwrap()),
            TransformQuery::delete("db", parse_path("//supplier[country = 'A']/price").unwrap()),
            TransformQuery::insert(
                "db",
                parse_path("db/part[pname = 'kb']").unwrap(),
                Document::parse("<note>x</note>").unwrap(),
            ),
            TransformQuery::replace(
                "db",
                parse_path("//supplier[price < 15]").unwrap(),
                Document::parse("<hidden/>").unwrap(),
            ),
            TransformQuery::rename("db", parse_path("db/part").unwrap(), "component"),
        ];
        for q in &queries {
            let reference = evaluate(&doc, q, Method::CopyUpdate).unwrap();
            for m in Method::ALL {
                let got = evaluate(&doc, q, m).unwrap();
                assert!(
                    docs_eq(&reference, &got),
                    "{m} disagrees on {} {}:\nexpected {}\ngot      {}",
                    q.op.kind(),
                    q.path,
                    reference.serialize(),
                    got.serialize()
                );
            }
        }
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::TopDown.paper_name(), "GENTOP");
        assert_eq!(Method::TwoPass.to_string(), "TD-BU");
        assert_eq!(Method::ALL.len(), 6);
    }

    #[test]
    fn evaluate_str_parses_and_runs() {
        let doc = Document::parse("<db><a><b/></a></db>").unwrap();
        for m in Method::ALL {
            let out = evaluate_str(
                &doc,
                r#"transform copy $a := doc("db") modify do delete $a//b return $a"#,
                m,
            )
            .unwrap();
            assert_eq!(out.serialize(), "<db><a/></db>", "{m}");
        }
    }

    #[test]
    fn bad_query_is_error() {
        let doc = Document::parse("<a/>").unwrap();
        assert!(evaluate_str(&doc, "garbage", Method::TopDown).is_err());
    }
}
