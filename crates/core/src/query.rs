//! Transform queries (Section 2):
//!
//! ```text
//! transform copy $a := doc("T") modify do u($a) return $a
//! ```
//!
//! with the four embedded update forms supported by the XML update
//! language proposals the paper surveys:
//!
//! ```text
//! insert e into $a/p      delete $a/p
//! replace $a/p with e     rename $a/p as l
//! ```

use std::fmt;

use xust_intern::{intern, IntoSym, Sym};
use xust_tree::Document;
use xust_xpath::{parse_path, Path};

/// Where an `insert` places the new element relative to each selected
/// node — the position variants of the XQuery Update Facility \[6\]. The
/// paper's experiments use the default (`into` = last child); the other
/// three are the "more involved updates" its conclusion defers to future
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InsertPos {
    /// `insert e into p` / `insert e as last into p` — rightmost child.
    #[default]
    LastInto,
    /// `insert e as first into p` — leftmost child.
    FirstInto,
    /// `insert e before p` — immediately-preceding sibling. A selected
    /// *root* receives no sibling (a document has exactly one root; the
    /// W3C draft raises `XUDY0015`-style errors here, we skip).
    Before,
    /// `insert e after p` — immediately-following sibling (root skipped,
    /// as for [`InsertPos::Before`]).
    After,
}

impl InsertPos {
    /// Does this position create a *sibling* of the selected node (as
    /// opposed to a child)?
    pub fn is_sibling(&self) -> bool {
        matches!(self, InsertPos::Before | InsertPos::After)
    }

    /// The surface syntax connective (`into`, `as first into`, …).
    pub fn syntax(&self) -> &'static str {
        match self {
            InsertPos::LastInto => "into",
            InsertPos::FirstInto => "as first into",
            InsertPos::Before => "before",
            InsertPos::After => "after",
        }
    }
}

impl fmt::Display for InsertPos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.syntax())
    }
}

/// The embedded update `u($a)`.
#[derive(Debug, Clone)]
pub enum UpdateOp {
    /// `insert e [as first|as last] into $a/p`, `insert e before|after
    /// $a/p` — adds `e` at [`InsertPos`] relative to every selected node.
    Insert {
        /// The constant element to splice in.
        elem: Document,
        /// Where it lands relative to each selected node.
        pos: InsertPos,
    },
    /// `delete $a/p` — removes every selected node with its subtree.
    Delete,
    /// `replace $a/p with e`.
    Replace {
        /// The replacement element.
        elem: Document,
    },
    /// `rename $a/p as l`.
    Rename {
        /// The new label.
        name: Sym,
    },
}

impl UpdateOp {
    /// Short tag for display/bench labels.
    pub fn kind(&self) -> &'static str {
        match self {
            UpdateOp::Insert {
                pos: InsertPos::LastInto,
                ..
            } => "insert",
            UpdateOp::Insert {
                pos: InsertPos::FirstInto,
                ..
            } => "insert-first",
            UpdateOp::Insert {
                pos: InsertPos::Before,
                ..
            } => "insert-before",
            UpdateOp::Insert {
                pos: InsertPos::After,
                ..
            } => "insert-after",
            UpdateOp::Delete => "delete",
            UpdateOp::Replace { .. } => "replace",
            UpdateOp::Rename { .. } => "rename",
        }
    }
}

/// A parsed transform query.
#[derive(Debug, Clone)]
pub struct TransformQuery {
    /// Variable bound by `copy` (usually `a`).
    pub var: String,
    /// Document name inside `doc("…")`.
    pub doc_name: String,
    /// The selecting path `p` of the embedded update.
    pub path: Path,
    /// The update operation.
    pub op: UpdateOp,
}

impl TransformQuery {
    /// Builds an `insert e into p` transform query programmatically.
    pub fn insert(doc_name: impl Into<String>, path: Path, elem: Document) -> TransformQuery {
        Self::insert_at(doc_name, path, elem, InsertPos::LastInto)
    }

    /// Builds an insert transform query with an explicit position
    /// (`as first into`, `before`, `after`).
    pub fn insert_at(
        doc_name: impl Into<String>,
        path: Path,
        elem: Document,
        pos: InsertPos,
    ) -> TransformQuery {
        TransformQuery {
            var: "a".into(),
            doc_name: doc_name.into(),
            path,
            op: UpdateOp::Insert { elem, pos },
        }
    }

    /// Builds a delete transform query programmatically.
    pub fn delete(doc_name: impl Into<String>, path: Path) -> TransformQuery {
        TransformQuery {
            var: "a".into(),
            doc_name: doc_name.into(),
            path,
            op: UpdateOp::Delete,
        }
    }

    /// Builds a replace transform query programmatically.
    pub fn replace(doc_name: impl Into<String>, path: Path, elem: Document) -> TransformQuery {
        TransformQuery {
            var: "a".into(),
            doc_name: doc_name.into(),
            path,
            op: UpdateOp::Replace { elem },
        }
    }

    /// Builds a rename transform query programmatically.
    pub fn rename(doc_name: impl Into<String>, path: Path, name: impl IntoSym) -> TransformQuery {
        TransformQuery {
            var: "a".into(),
            doc_name: doc_name.into(),
            path,
            op: UpdateOp::Rename {
                name: name.into_sym(),
            },
        }
    }
}

/// Error parsing transform-query syntax.
#[derive(Debug, Clone)]
pub struct TransformParseError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TransformParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transform query parse error: {}", self.message)
    }
}

impl std::error::Error for TransformParseError {}

fn err(message: impl Into<String>) -> TransformParseError {
    TransformParseError {
        message: message.into(),
    }
}

/// Parses the transform syntax of \[6\]:
///
/// ```
/// use xust_core::parse_transform;
///
/// let q = parse_transform(
///     r#"transform copy $a := doc("foo") modify do delete $a//price return $a"#,
/// ).unwrap();
/// assert_eq!(q.doc_name, "foo");
/// assert_eq!(q.op.kind(), "delete");
/// ```
pub fn parse_transform(input: &str) -> Result<TransformQuery, TransformParseError> {
    let mut s = Scanner::new(input);
    s.keyword("transform")?;
    s.keyword("copy")?;
    let var = s.variable()?;
    s.symbol(":=")?;
    s.keyword("doc")?;
    s.symbol("(")?;
    let doc_name = s.string_literal()?;
    s.symbol(")")?;
    s.keyword("modify")?;
    s.keyword("do")?;

    let (op, path) = parse_one_update(&mut s, &var, false)?;
    parse_footer(&mut s, &var)?;
    Ok(TransformQuery {
        var,
        doc_name,
        path,
        op,
    })
}

/// Parses the multi-update syntax
/// `transform copy $a := doc("T") modify do (u1, u2, …) return $a`
/// with snapshot semantics (see [`crate::multi`]). A single
/// un-parenthesized update is accepted too.
pub(crate) fn parse_multi(
    input: &str,
) -> Result<crate::multi::MultiTransformQuery, TransformParseError> {
    let mut s = Scanner::new(input);
    s.keyword("transform")?;
    s.keyword("copy")?;
    let var = s.variable()?;
    s.symbol(":=")?;
    s.keyword("doc")?;
    s.symbol("(")?;
    let doc_name = s.string_literal()?;
    s.symbol(")")?;
    s.keyword("modify")?;
    s.keyword("do")?;

    let mut updates = Vec::new();
    if s.try_symbol("(") {
        loop {
            let (op, path) = parse_one_update(&mut s, &var, true)?;
            updates.push((path, op));
            if s.try_symbol(",") {
                continue;
            }
            s.symbol(")")?;
            break;
        }
    } else {
        let (op, path) = parse_one_update(&mut s, &var, false)?;
        updates.push((path, op));
    }
    parse_footer(&mut s, &var)?;
    Ok(crate::multi::MultiTransformQuery {
        var,
        doc_name,
        updates,
    })
}

/// `return $a` + EOF, checking the variable matches the copy binding.
fn parse_footer(s: &mut Scanner<'_>, var: &str) -> Result<(), TransformParseError> {
    s.keyword("return")?;
    let ret = s.variable()?;
    if ret != var {
        return Err(err(format!(
            "return variable ${ret} does not match copy variable ${var}"
        )));
    }
    s.expect_eof()
}

/// One embedded update. `in_list` additionally terminates paths at a
/// top-level `,` or `)` (the multi-update delimiters).
fn parse_one_update(
    s: &mut Scanner<'_>,
    var: &str,
    in_list: bool,
) -> Result<(UpdateOp, Path), TransformParseError> {
    let stops: &[u8] = if in_list { b",)" } else { b"" };
    let op_word = s.word()?;
    match op_word.as_str() {
        "insert" => {
            let elem = s.xml_fragment()?;
            // `into` | `as first into` | `as last into` | `before` | `after`
            let pos = if s.try_keyword("into") {
                InsertPos::LastInto
            } else if s.try_keyword("as") {
                let which = s.word()?;
                let pos = match which.as_str() {
                    "first" => InsertPos::FirstInto,
                    "last" => InsertPos::LastInto,
                    other => {
                        return Err(err(format!(
                            "expected 'first' or 'last' after 'as', found '{other}'"
                        )))
                    }
                };
                s.keyword("into")?;
                pos
            } else if s.try_keyword("before") {
                InsertPos::Before
            } else if s.try_keyword("after") {
                InsertPos::After
            } else {
                return Err(err(
                    "expected 'into', 'as first into', 'as last into', 'before' or 'after'",
                ));
            };
            let path = s.update_path(var, stops)?;
            Ok((UpdateOp::Insert { elem, pos }, path))
        }
        "delete" => {
            let path = s.update_path(var, stops)?;
            Ok((UpdateOp::Delete, path))
        }
        "replace" => {
            let path = s.update_path(var, b"")?;
            s.keyword("with")?;
            let elem = s.xml_fragment()?;
            Ok((UpdateOp::Replace { elem }, path))
        }
        "rename" => {
            let path = s.update_path(var, b"")?;
            s.keyword("as")?;
            let name = s.word()?;
            Ok((
                UpdateOp::Rename {
                    name: intern(&name),
                },
                path,
            ))
        }
        other => Err(err(format!("unknown update operation '{other}'"))),
    }
}

/// A small hand scanner for the transform wrapper syntax; path and
/// element payloads are delegated to `xust-xpath` and `xust-tree`.
struct Scanner<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(input: &'a str) -> Self {
        Scanner { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    /// Consumes `kw` if present; returns whether it was.
    fn try_keyword(&mut self, kw: &str) -> bool {
        let saved = self.pos;
        if self.keyword(kw).is_ok() {
            true
        } else {
            self.pos = saved;
            false
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), TransformParseError> {
        self.skip_ws();
        if self.rest().starts_with(kw)
            && !self.rest()[kw.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(err(format!(
                "expected '{kw}' at …{}",
                &self.rest()[..self.rest().len().min(30)]
            )))
        }
    }

    fn symbol(&mut self, sym: &str) -> Result<(), TransformParseError> {
        self.skip_ws();
        if self.rest().starts_with(sym) {
            self.pos += sym.len();
            Ok(())
        } else {
            Err(err(format!("expected '{sym}'")))
        }
    }

    fn variable(&mut self) -> Result<String, TransformParseError> {
        self.skip_ws();
        if !self.rest().starts_with('$') {
            return Err(err("expected variable"));
        }
        self.pos += 1;
        self.word()
    }

    fn word(&mut self) -> Result<String, TransformParseError> {
        self.skip_ws();
        let end = self
            .rest()
            .find(|c: char| !(c.is_alphanumeric() || c == '_' || c == '-'))
            .unwrap_or(self.rest().len());
        if end == 0 {
            return Err(err("expected a name"));
        }
        let w = self.rest()[..end].to_string();
        self.pos += end;
        Ok(w)
    }

    fn string_literal(&mut self) -> Result<String, TransformParseError> {
        self.skip_ws();
        let quote = self
            .rest()
            .chars()
            .next()
            .filter(|&c| c == '"' || c == '\'')
            .ok_or_else(|| err("expected string literal"))?;
        let body = &self.rest()[1..];
        let end = body
            .find(quote)
            .ok_or_else(|| err("unterminated string literal"))?;
        let s = body[..end].to_string();
        self.pos += end + 2;
        Ok(s)
    }

    /// Consumes `sym` if present; returns whether it was.
    fn try_symbol(&mut self, sym: &str) -> bool {
        let saved = self.pos;
        if self.symbol(sym).is_ok() {
            true
        } else {
            self.pos = saved;
            false
        }
    }

    /// `$a/p` or `$a//p` — strips the variable and parses the rest as X.
    /// `stops` are additional single-byte terminators at bracket depth 0
    /// (the `,`/`)` delimiters of a multi-update list).
    fn update_path(&mut self, var: &str, stops: &[u8]) -> Result<Path, TransformParseError> {
        self.skip_ws();
        let v = self.variable()?;
        if v != var {
            return Err(err(format!("path must start with ${var}, found ${v}")));
        }
        self.skip_ws();
        if !self.rest().starts_with('/') {
            // `$a` alone — ε path (the root itself).
            return Ok(Path::empty());
        }
        // The path extends to the next top-level keyword (`return`,
        // `with`, `as`) outside quotes and brackets, or a stop byte.
        let raw = self.scan_until_keyword(&["return", "with", "as"], stops)?;
        parse_path(raw.trim()).map_err(|e| err(e.to_string()))
    }

    fn scan_until_keyword(
        &mut self,
        keywords: &[&str],
        stops: &[u8],
    ) -> Result<&'a str, TransformParseError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        let mut i = self.pos;
        let mut depth = 0usize; // bracket nesting
        while i < bytes.len() {
            match bytes[i] {
                b'\'' | b'"' => {
                    let q = bytes[i];
                    i += 1;
                    while i < bytes.len() && bytes[i] != q {
                        i += 1;
                    }
                }
                c if depth == 0 && stops.contains(&c) => {
                    let text = &self.input[start..i];
                    self.pos = i;
                    return Ok(text);
                }
                b'[' | b'(' => depth += 1,
                b']' | b')' => depth = depth.saturating_sub(1),
                c if depth == 0 && (c as char).is_whitespace() => {
                    // Check whether the next word is one of the keywords.
                    let rest = self.input[i..].trim_start();
                    for kw in keywords {
                        if rest.starts_with(kw)
                            && !rest[kw.len()..]
                                .chars()
                                .next()
                                .is_some_and(|c| c.is_alphanumeric() || c == '_')
                        {
                            let text = &self.input[start..i];
                            self.pos = i;
                            return Ok(text);
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        Err(err(format!("expected one of {keywords:?} after the path")))
    }

    /// A balanced XML fragment (`<name …>…</name>` or `<name …/>`).
    fn xml_fragment(&mut self) -> Result<Document, TransformParseError> {
        self.skip_ws();
        if !self.rest().starts_with('<') {
            return Err(err("expected an XML element"));
        }
        let frag = scan_balanced_xml(self.rest()).ok_or_else(|| err("unbalanced XML element"))?;
        let doc = Document::parse(frag).map_err(|e| err(e.to_string()))?;
        self.pos += frag.len();
        Ok(doc)
    }

    fn expect_eof(&mut self) -> Result<(), TransformParseError> {
        self.skip_ws();
        if self.rest().is_empty() {
            Ok(())
        } else {
            Err(err(format!("trailing input: {}", self.rest())))
        }
    }
}

/// Finds the prefix of `s` that is one balanced XML element, respecting
/// quoted attribute values.
fn scan_balanced_xml(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    let mut i = 0usize;
    let mut depth = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'<' {
            let closing = bytes.get(i + 1) == Some(&b'/');
            // scan to '>' respecting quotes
            let mut j = i + 1;
            let mut quote: Option<u8> = None;
            while j < bytes.len() {
                match (quote, bytes[j]) {
                    (Some(q), c) if c == q => quote = None,
                    (Some(_), _) => {}
                    (None, b'"') | (None, b'\'') => quote = Some(bytes[j]),
                    (None, b'>') => break,
                    _ => {}
                }
                j += 1;
            }
            if j >= bytes.len() {
                return None;
            }
            let self_closing = bytes[j - 1] == b'/';
            if closing {
                depth = depth.checked_sub(1)?;
            } else if !self_closing {
                depth += 1;
            }
            i = j + 1;
            if depth == 0 {
                return Some(&s[..i]);
            }
        } else {
            i += 1;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_delete() {
        let q = parse_transform(
            r#"transform copy $a := doc("foo") modify do delete $a//price return $a"#,
        )
        .unwrap();
        assert_eq!(q.var, "a");
        assert_eq!(q.doc_name, "foo");
        assert_eq!(q.path.to_string(), "//price");
        assert!(matches!(q.op, UpdateOp::Delete));
    }

    #[test]
    fn parse_insert() {
        let q = parse_transform(
            r#"transform copy $a := doc("T") modify do insert <supplier><sname>HP</sname></supplier> into $a//part[pname = 'keyboard'] return $a"#,
        )
        .unwrap();
        match &q.op {
            UpdateOp::Insert { elem, pos } => {
                assert_eq!(elem.serialize(), "<supplier><sname>HP</sname></supplier>");
                assert_eq!(*pos, InsertPos::LastInto);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(q.path.to_string(), "//part[pname = \"keyboard\"]");
    }

    #[test]
    fn parse_insert_position_variants() {
        for (syntax, pos) in [
            ("into", InsertPos::LastInto),
            ("as last into", InsertPos::LastInto),
            ("as first into", InsertPos::FirstInto),
            ("before", InsertPos::Before),
            ("after", InsertPos::After),
        ] {
            let q = parse_transform(&format!(
                r#"transform copy $a := doc("T") modify do insert <n/> {syntax} $a//part return $a"#
            ))
            .unwrap();
            match &q.op {
                UpdateOp::Insert { pos: got, .. } => assert_eq!(*got, pos, "{syntax}"),
                other => panic!("unexpected {other:?}"),
            }
            assert_eq!(q.path.to_string(), "//part", "{syntax}");
        }
        // Bad position keywords are rejected.
        for bad in ["onto", "as middle into", "as first", "besides"] {
            assert!(
                parse_transform(&format!(
                    r#"transform copy $a := doc("T") modify do insert <n/> {bad} $a//part return $a"#
                ))
                .is_err(),
                "accepted '{bad}'"
            );
        }
    }

    #[test]
    fn parse_replace() {
        let q = parse_transform(
            r#"transform copy $a := doc("T") modify do replace $a/part/price with <price>0</price> return $a"#,
        )
        .unwrap();
        assert!(matches!(q.op, UpdateOp::Replace { .. }));
        assert_eq!(q.path.to_string(), "part/price");
    }

    #[test]
    fn parse_rename() {
        let q = parse_transform(
            r#"transform copy $a := doc("T") modify do rename $a//supplier as vendor return $a"#,
        )
        .unwrap();
        match &q.op {
            UpdateOp::Rename { name } => assert_eq!(name.as_str(), "vendor"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_security_view_example() {
        // Example 1.1's security view (with or-qualifiers).
        let q = parse_transform(
            r#"transform copy $a := doc("foo") modify do delete $a//supplier[country='c1' or country='c2']/price return $a"#,
        )
        .unwrap();
        assert!(matches!(q.op, UpdateOp::Delete));
        assert!(q.path.to_string().contains("supplier"));
    }

    #[test]
    fn parse_epsilon_path() {
        let q = parse_transform(
            r#"transform copy $a := doc("T") modify do rename $a as newroot return $a"#,
        )
        .unwrap();
        assert!(q.path.is_empty());
    }

    #[test]
    fn keyword_inside_string_not_a_terminator() {
        let q = parse_transform(
            r#"transform copy $a := doc("T") modify do delete $a/x[y = ' return with as '] return $a"#,
        )
        .unwrap();
        assert_eq!(q.path.steps.len(), 1);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_transform("nonsense").is_err());
        assert!(parse_transform(
            r#"transform copy $a := doc("T") modify do obliterate $a/x return $a"#
        )
        .is_err());
        assert!(parse_transform(
            r#"transform copy $a := doc("T") modify do delete $b/x return $a"#
        )
        .is_err());
        assert!(parse_transform(
            r#"transform copy $a := doc("T") modify do delete $a/x return $b"#
        )
        .is_err());
        assert!(parse_transform(
            r#"transform copy $a := doc("T") modify do insert <a><b></a> into $a/x return $a"#
        )
        .is_err());
    }

    #[test]
    fn scan_balanced() {
        assert_eq!(scan_balanced_xml("<a/> rest"), Some("<a/>"));
        assert_eq!(scan_balanced_xml("<a><b/></a>tail"), Some("<a><b/></a>"));
        assert_eq!(
            scan_balanced_xml(r#"<a x="1>2"><b>t</b></a> into"#),
            Some(r#"<a x="1>2"><b>t</b></a>"#)
        );
        assert_eq!(scan_balanced_xml("<a><b></a>"), None); // never re-balances
        assert_eq!(scan_balanced_xml("<a><b>"), None);
    }

    #[test]
    fn builders() {
        let p = parse_path("//x").unwrap();
        let e = Document::parse("<n/>").unwrap();
        assert_eq!(
            TransformQuery::insert("d", p.clone(), e.clone()).op.kind(),
            "insert"
        );
        assert_eq!(TransformQuery::delete("d", p.clone()).op.kind(), "delete");
        assert_eq!(
            TransformQuery::replace("d", p.clone(), e).op.kind(),
            "replace"
        );
        assert_eq!(TransformQuery::rename("d", p, "y").op.kind(), "rename");
    }
}
