//! Pre-compiled transform queries and cost hints.
//!
//! Parsing a transform query and compiling its selecting/filtering NFAs
//! is pure per-query work: it depends only on the query text, never on
//! the document. [`CompiledTransform`] performs that work once, so a
//! serving layer (`xust-serve`) can hand the same compiled artifact to
//! many concurrent evaluations — the paper's automata (Sections 3.2
//! and 5) become shared, immutable plan objects.
//!
//! [`QueryCost`] summarizes the *shape* of the embedded X path — the
//! features Section 7's experiments show to drive method ranking
//! (descendant axes blow up NAIVE's rewriting, qualifier size dominates
//! GENTOP's native checks, plain paths make topDown optimal) — so a
//! planner can pick an evaluation method without touching the document.

use std::fmt;

use xust_automata::{FilteringNfa, LabelSet, SelectingNfa};
use xust_tree::Document;
use xust_xpath::{Path, QualTable, StepKind};

use crate::bottomup::bottom_up_prebuilt;
use crate::copy_update::copy_update;
use crate::engine::{Method, TransformError};
use crate::naive::{naive_direct, naive_xquery};
use crate::query::{parse_transform, TransformParseError, TransformQuery};
use crate::sax2pass::{LdStorage, PreparedTransform, SaxTransformError};
use crate::topdown::{top_down_prebuilt, CheckP};

/// Shape features of a transform query's embedded X path, extracted once
/// at compile time. These are the inputs to `xust-serve`'s adaptive
/// method planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCost {
    /// Number of steps (including `//` pseudo-steps).
    pub steps: usize,
    /// Total syntactic size |p| (steps plus qualifier sizes).
    pub path_size: usize,
    /// Number of `//` (descendant-or-self) steps.
    pub descendant_steps: usize,
    /// Number of `*` wildcard steps.
    pub wildcard_steps: usize,
    /// Number of steps carrying a qualifier.
    pub qualifier_count: usize,
    /// Size of the largest single qualifier (0 when there are none) — a
    /// proxy for the per-node cost of native qualifier evaluation.
    pub max_qualifier_size: usize,
}

impl QueryCost {
    /// Extracts the features of `path`.
    pub fn of_path(path: &Path) -> QueryCost {
        let mut cost = QueryCost {
            steps: path.steps.len(),
            path_size: path.size(),
            descendant_steps: 0,
            wildcard_steps: 0,
            qualifier_count: 0,
            max_qualifier_size: 0,
        };
        for step in &path.steps {
            match step.kind {
                StepKind::Descendant => cost.descendant_steps += 1,
                StepKind::Wildcard => cost.wildcard_steps += 1,
                StepKind::Label(_) => {}
            }
            if let Some(q) = &step.qualifier {
                cost.qualifier_count += 1;
                cost.max_qualifier_size = cost.max_qualifier_size.max(q.size());
            }
        }
        cost
    }

    /// True if the path uses any descendant axis — the feature that makes
    /// pruning (and thus the automaton methods) pay off on large inputs.
    pub fn has_descendant(&self) -> bool {
        self.descendant_steps > 0
    }

    /// True if any step carries a qualifier — the feature that separates
    /// GENTOP (native re-evaluation) from TD-BU (one bottom-up pass).
    pub fn has_qualifiers(&self) -> bool {
        self.qualifier_count > 0
    }
}

impl fmt::Display for QueryCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "steps={} |p|={} desc={} wild={} quals={} maxq={}",
            self.steps,
            self.path_size,
            self.descendant_steps,
            self.wildcard_steps,
            self.qualifier_count,
            self.max_qualifier_size
        )
    }
}

/// A transform query with its automata compiled once, reusable across
/// any number of documents and threads (it is immutable after
/// construction, hence `Send + Sync`).
///
/// ```
/// use xust_core::{CompiledTransform, Method};
/// use xust_tree::Document;
///
/// let ct = CompiledTransform::parse(
///     r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
/// ).unwrap();
/// let doc = Document::parse("<db><part><price>9</price></part></db>").unwrap();
/// let out = ct.evaluate(&doc, Method::TwoPass).unwrap();
/// assert_eq!(out.serialize(), "<db><part/></db>");
/// ```
pub struct CompiledTransform {
    query: TransformQuery,
    selecting: SelectingNfa,
    filtering: FilteringNfa,
    qual_table: QualTable,
    cost: QueryCost,
    alphabet: LabelSet,
}

impl CompiledTransform {
    /// Compiles a parsed query: builds both NFAs and the qualifier table.
    pub fn compile(query: TransformQuery) -> CompiledTransform {
        let selecting = SelectingNfa::new(&query.path);
        let filtering = FilteringNfa::new(&query.path);
        let qual_table = QualTable::from_path(&query.path);
        let cost = QueryCost::of_path(&query.path);
        let mut alphabet = LabelSet::new();
        selecting.collect_alphabet(&mut alphabet);
        filtering.collect_alphabet(&mut alphabet);
        crate::delta::qualifier_label_tests_into(&query.path, &mut alphabet);
        crate::delta::op_alphabet_into(&query.op, &mut alphabet);
        CompiledTransform {
            query,
            selecting,
            filtering,
            qual_table,
            cost,
            alphabet,
        }
    }

    /// Parses concrete transform syntax and compiles it.
    pub fn parse(text: &str) -> Result<CompiledTransform, TransformParseError> {
        parse_transform(text).map(CompiledTransform::compile)
    }

    /// The underlying query.
    pub fn query(&self) -> &TransformQuery {
        &self.query
    }

    /// The compile-time cost hints.
    pub fn cost(&self) -> &QueryCost {
        &self.cost
    }

    /// The selecting NFA `Mp`.
    pub fn selecting(&self) -> &SelectingNfa {
        &self.selecting
    }

    /// The filtering NFA `Mf`.
    pub fn filtering(&self) -> &FilteringNfa {
        &self.filtering
    }

    /// The static label footprint of this transform (NFA alphabets,
    /// `label()` tests, fragment labels, rename target, wildcard bit) —
    /// the view side of the delta relevance test (see [`crate::delta`]).
    pub fn alphabet(&self) -> &LabelSet {
        &self.alphabet
    }

    /// Evaluates against `doc` with `method`, reusing the pre-compiled
    /// automata wherever the method consumes them (TopDown, TwoPass, and
    /// the streaming two-pass; the snapshot and rewriting methods never
    /// build automata in the first place).
    pub fn evaluate(&self, doc: &Document, method: Method) -> Result<Document, TransformError> {
        match method {
            Method::CopyUpdate => Ok(copy_update(doc, &self.query)),
            Method::Naive => Ok(naive_direct(doc, &self.query)),
            Method::NaiveXQuery => {
                naive_xquery(doc, &self.query).map_err(|message| TransformError { message })
            }
            Method::TopDown => Ok(self.top_down(doc)),
            Method::TwoPass => Ok(self.two_pass(doc)),
            Method::TwoPassSax => {
                let xml = doc.serialize();
                let out = self.evaluate_stream_str(&xml).map_err(|e| TransformError {
                    message: e.to_string(),
                })?;
                if out.is_empty() {
                    return Ok(Document::new());
                }
                Document::parse(&out).map_err(|e| TransformError {
                    message: e.to_string(),
                })
            }
        }
    }

    /// GENTOP over the pre-compiled selecting NFA.
    pub fn top_down(&self, doc: &Document) -> Document {
        let mut check: Box<CheckP<'_>> =
            Box::new(|d, n, _step, qual| xust_xpath::eval_qualifier(d, n, qual));
        top_down_prebuilt(doc, &self.query, &self.selecting, &mut check)
    }

    /// TD-BU over both pre-compiled automata.
    pub fn two_pass(&self, doc: &Document) -> Document {
        let ann = bottom_up_prebuilt(
            doc,
            &self.query.path,
            &self.filtering,
            self.qual_table.clone(),
        );
        let mut check: Box<CheckP<'_>> = Box::new(|_, n, step, _| ann.check(n, step));
        top_down_prebuilt(doc, &self.query, &self.selecting, &mut check)
    }

    /// twoPassSAX over serialized input, cloning the pre-compiled
    /// automata into the [`PreparedTransform`] instead of rebuilding
    /// them.
    pub fn evaluate_stream_str(&self, xml: &str) -> Result<String, SaxTransformError> {
        use xust_sax::SaxParser;
        let mut prepared = PreparedTransform::prepare_with(
            SaxParser::from_str(xml),
            &self.query,
            LdStorage::Memory,
            self.filtering.clone(),
            self.selecting.clone(),
        )?;
        let mut out = Vec::new();
        let mut sink = crate::sax2pass::WriterSink::new(&mut out);
        prepared.replay_into(SaxParser::from_str(xml), &mut sink)?;
        Ok(String::from_utf8(out).expect("writer produces UTF-8"))
    }

    /// Opens a push-based [`TransformStream`](crate::sax2pass::TransformStream) session over the
    /// pre-compiled automata (cloned in, never rebuilt) — the engine of
    /// `xust-serve`'s streaming session mode.
    pub fn stream(&self, storage: LdStorage) -> crate::sax2pass::TransformStream {
        crate::sax2pass::TransformStream::with_automata(
            &self.query,
            storage,
            self.filtering.clone(),
            self.selecting.clone(),
        )
    }

    /// twoPassSAX over a file, with the input streamed (two independent
    /// buffered reads, never held in memory at once) and the pre-compiled
    /// automata cloned in. Only the serialized *result* is buffered, to
    /// hand back as a string.
    pub fn evaluate_stream_file(
        &self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<String, SaxTransformError> {
        use xust_sax::SaxParser;
        let path = path.as_ref();
        let mut prepared = PreparedTransform::prepare_with(
            SaxParser::from_file(path)?,
            &self.query,
            LdStorage::Memory,
            self.filtering.clone(),
            self.selecting.clone(),
        )?;
        let mut out = Vec::new();
        let mut sink = crate::sax2pass::WriterSink::new(&mut out);
        prepared.replay_into(SaxParser::from_file(path)?, &mut sink)?;
        Ok(String::from_utf8(out).expect("writer produces UTF-8"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    const Q: &str = r#"transform copy $a := doc("db") modify do delete $a//supplier[price < 15]/price return $a"#;

    fn doc() -> Document {
        Document::parse(
            "<db><part><supplier><price>9</price></supplier></part><part><supplier><price>99</price></supplier></part></db>",
        )
        .unwrap()
    }

    #[test]
    fn cost_features() {
        let c = QueryCost::of_path(&parse_path("//part[pname = 'kb']/*/price").unwrap());
        assert_eq!(c.descendant_steps, 1);
        assert_eq!(c.wildcard_steps, 1);
        assert_eq!(c.qualifier_count, 1);
        assert!(c.has_descendant() && c.has_qualifiers());
        assert!(c.max_qualifier_size >= 1);
        assert!(c.path_size >= c.steps);
        let plain = QueryCost::of_path(&parse_path("db/part/price").unwrap());
        assert!(!plain.has_descendant() && !plain.has_qualifiers());
        assert_eq!(plain.steps, 3);
        assert!(!format!("{plain}").is_empty());
    }

    #[test]
    fn compiled_matches_engine_on_all_methods() {
        let ct = CompiledTransform::parse(Q).unwrap();
        let d = doc();
        let reference = crate::engine::evaluate_str(&d, Q, Method::CopyUpdate).unwrap();
        for m in Method::ALL {
            let got = ct.evaluate(&d, m).unwrap();
            assert!(
                docs_eq(&reference, &got),
                "{m} via CompiledTransform disagrees: {}",
                got.serialize()
            );
        }
    }

    #[test]
    fn compiled_is_reusable_across_documents() {
        let ct = CompiledTransform::parse(Q).unwrap();
        for xml in [
            "<db/>",
            "<db><supplier><price>1</price></supplier></db>",
            "<other><supplier><price>2</price></supplier></other>",
        ] {
            let d = Document::parse(xml).unwrap();
            let expect = copy_update(&d, ct.query());
            let got = ct.evaluate(&d, Method::TwoPass).unwrap();
            assert!(docs_eq(&expect, &got), "on {xml}");
        }
    }

    #[test]
    fn compiled_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CompiledTransform>();
    }

    #[test]
    fn parse_errors_surface() {
        assert!(CompiledTransform::parse("garbage").is_err());
    }
}
