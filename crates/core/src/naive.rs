//! The Naive Method (Section 3.1): rewrite the transform query into
//! standard XQuery.
//!
//! Two faithful realizations are provided:
//!
//! * [`rewrite_to_xquery`] emits the Fig.-2-style query text — a
//!   recursive copy function plus the membership test
//!   `some $x in $xp satisfies ($n is $x)` — which [`naive_xquery`] then
//!   runs on the `xust-xquery` engine. This is the paper's actual
//!   artifact: transform queries become executable on any XQuery 1.0
//!   engine with no update support.
//! * [`naive_direct`] implements the same plan natively (compute
//!   `$xp := doc(T)/p`, then a full recursive copy with a linear-scan
//!   membership test per node). It isolates the method's O(|T|·|$xp|)
//!   data complexity from interpreter overhead, which is what the
//!   Fig. 12/13 benchmarks need.
//!
//! Both share the defining performance trait the experiments show: cost
//! grows with |$xp| (U1: every person) and the *entire* tree is copied —
//! no pruning.

use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::eval_path_root;

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// Evaluates `Qt(T)` with the Naive plan, natively.
pub fn naive_direct(doc: &Document, q: &TransformQuery) -> Document {
    let mut out = Document::with_capacity(doc.arena_len());
    let Some(root) = doc.root() else {
        return out;
    };
    // Step 1: $xp := doc(T)/p — the full selected node set.
    let xp = eval_path_root(doc, &q.path);
    // Step 2: recursive copy with membership test. The linear scan *is*
    // the point: the paper's rewritten query performs `$n ∈ $xp` per
    // node, and "unless the XQuery engine optimizes the test n ∈ $xp,
    // the rewritten queries are inefficient when the scope of the update
    // is broad".
    let produced = copy_rec(doc, &mut out, root, &xp, &q.op, true);
    if let Some(&r) = produced.first() {
        out.set_root(r);
    }
    out
}

fn copy_rec(
    src: &Document,
    out: &mut Document,
    n: NodeId,
    xp: &[NodeId],
    op: &UpdateOp,
    is_root: bool,
) -> Vec<NodeId> {
    match src.kind(n) {
        NodeKind::Text(t) => vec![out.create_text(t.clone())],
        NodeKind::Element { name, attrs } => {
            // The quadratic membership test (deliberately a linear scan).
            let selected = xp.contains(&n);
            if selected {
                match op {
                    UpdateOp::Delete => return Vec::new(),
                    UpdateOp::Replace { elem } => {
                        return match elem.root() {
                            Some(e_root) => vec![out.deep_copy_from(elem, e_root)],
                            None => Vec::new(),
                        }
                    }
                    _ => {}
                }
            }
            let out_name = match (selected, op) {
                (true, UpdateOp::Rename { name: new }) => *new,
                _ => *name,
            };
            let node = out.create_element_with_attrs(out_name, attrs.clone());
            if selected {
                if let UpdateOp::Insert {
                    elem,
                    pos: InsertPos::FirstInto,
                } = op
                {
                    if let Some(e_root) = elem.root() {
                        let copy = out.deep_copy_from(elem, e_root);
                        out.append_child(node, copy);
                    }
                }
            }
            let children: Vec<NodeId> = src.children(n).collect();
            for c in children {
                for p in copy_rec(src, out, c, xp, op, false) {
                    out.append_child(node, p);
                }
            }
            if selected {
                match op {
                    UpdateOp::Insert {
                        elem,
                        pos: InsertPos::LastInto,
                    } => {
                        if let Some(e_root) = elem.root() {
                            let copy = out.deep_copy_from(elem, e_root);
                            out.append_child(node, copy);
                        }
                    }
                    UpdateOp::Insert { elem, pos } if pos.is_sibling() && !is_root => {
                        if let Some(e_root) = elem.root() {
                            let copy = out.deep_copy_from(elem, e_root);
                            return match pos {
                                InsertPos::Before => vec![copy, node],
                                InsertPos::After => vec![node, copy],
                                _ => unreachable!(),
                            };
                        }
                    }
                    _ => {}
                }
            }
            vec![node]
        }
    }
}

/// Emits the Fig.-2-style standard-XQuery rewriting of `q`.
///
/// The generated query uses only constructs any XQuery 1.0 engine
/// provides (modulo the two convenience builtins `is-element`/`children`
/// standing in for `self::element()` and `(*|@*|text())` axis steps).
pub fn rewrite_to_xquery(q: &TransformQuery) -> String {
    let doc_name = &q.doc_name;
    let path = q.path.to_string();
    let path_expr = if q.path.is_empty() {
        format!("doc(\"{doc_name}\")")
    } else if path.starts_with("//") {
        format!("doc(\"{doc_name}\"){path}")
    } else {
        format!("doc(\"{doc_name}\")/{path}")
    };
    let rebuild =
        "element {fn:local-name($n)} { for $c in children($n) return local:walk($c, $xp) }";
    let action = match &q.op {
        UpdateOp::Insert { elem, pos } => match pos {
            InsertPos::LastInto => format!(
                "element {{fn:local-name($n)}} {{ (for $c in children($n) return local:walk($c, $xp)), {} }}",
                elem.serialize()
            ),
            InsertPos::FirstInto => format!(
                "element {{fn:local-name($n)}} {{ {}, (for $c in children($n) return local:walk($c, $xp)) }}",
                elem.serialize()
            ),
            InsertPos::Before => format!("({}, {rebuild})", elem.serialize()),
            InsertPos::After => format!("({rebuild}, {})", elem.serialize()),
        },
        UpdateOp::Delete => "()".to_string(),
        UpdateOp::Replace { elem } => elem.serialize(),
        UpdateOp::Rename { name } => format!(
            "element {{\"{name}\"}} {{ for $c in children($n) return local:walk($c, $xp) }}"
        ),
    };
    // Sibling inserts are undefined at the root: the top-level call
    // rebuilds a selected root *without* emitting the sibling.
    let top = if matches!(&q.op, UpdateOp::Insert { pos, .. } if pos.is_sibling()) {
        format!("if (some $x in $xp satisfies ($n is $x)) then {rebuild} else local:walk($n, $xp)")
    } else {
        "local:walk($n, $xp)".to_string()
    };
    format!(
        r#"declare function local:walk($n, $xp) {{
  if (is-element($n))
  then if (some $x in $xp satisfies ($n is $x))
       then {action}
       else element {{fn:local-name($n)}} {{ for $c in children($n) return local:walk($c, $xp) }}
  else $n
}};
let $xp := {path_expr}
return document {{ for $n in doc("{doc_name}")/* return {top} }}"#
    )
}

/// Runs the rewritten query on the `xust-xquery` engine.
///
/// `doc` is loaded under the query's document name; the result is
/// materialized into a fresh [`Document`] (empty when the update deleted
/// the root).
pub fn naive_xquery(doc: &Document, q: &TransformQuery) -> Result<Document, String> {
    let query = rewrite_to_xquery(q);
    let mut engine = xust_xquery::Engine::new();
    engine.load_doc(q.doc_name.clone(), doc.clone());
    let v = engine.eval_str(&query).map_err(|e| e.to_string())?;
    if v.is_empty() {
        return Ok(Document::new());
    }
    engine.value_to_document(&v).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_update::copy_update;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>",
        )
        .unwrap()
    }

    fn agree_direct(q: &TransformQuery) {
        let d = doc();
        let expected = copy_update(&d, q);
        let got = naive_direct(&d, q);
        assert!(
            docs_eq(&expected, &got),
            "naive_direct disagrees for {} {}\nexpected: {}\ngot:      {}",
            q.op.kind(),
            q.path,
            expected.serialize(),
            got.serialize()
        );
    }

    fn agree_xquery(q: &TransformQuery) {
        let d = doc();
        let expected = copy_update(&d, q);
        let got = naive_xquery(&d, q).unwrap();
        assert!(
            docs_eq(&expected, &got),
            "naive_xquery disagrees for {} {}\nexpected: {}\ngot:      {}\nquery:\n{}",
            q.op.kind(),
            q.path,
            expected.serialize(),
            got.serialize(),
            rewrite_to_xquery(q)
        );
    }

    #[test]
    fn direct_matches_baseline_all_ops() {
        let e = Document::parse("<mark x=\"1\"/>").unwrap();
        for p in [
            "//price",
            "db/part[pname = 'mouse']",
            "//supplier[price < 15]",
            "zzz",
        ] {
            let path = parse_path(p).unwrap();
            agree_direct(&TransformQuery::delete("d", path.clone()));
            agree_direct(&TransformQuery::insert("d", path.clone(), e.clone()));
            agree_direct(&TransformQuery::replace("d", path.clone(), e.clone()));
            agree_direct(&TransformQuery::rename("d", path, "rn"));
        }
    }

    #[test]
    fn xquery_rewriting_matches_baseline_all_ops() {
        let e = Document::parse("<mark><inner>t</inner></mark>").unwrap();
        for p in [
            "//price",
            "db/part[pname = 'mouse']",
            "//supplier[price < 15]",
        ] {
            let path = parse_path(p).unwrap();
            agree_xquery(&TransformQuery::delete("d", path.clone()));
            agree_xquery(&TransformQuery::insert("d", path.clone(), e.clone()));
            agree_xquery(&TransformQuery::replace("d", path.clone(), e.clone()));
            agree_xquery(&TransformQuery::rename("d", path, "rn"));
        }
    }

    #[test]
    fn generated_query_shape() {
        let q = TransformQuery::insert(
            "foo",
            parse_path("//part").unwrap(),
            Document::parse("<e/>").unwrap(),
        );
        let text = rewrite_to_xquery(&q);
        assert!(text.contains("declare function local:walk"));
        assert!(text.contains("some $x in $xp satisfies ($n is $x)"));
        assert!(text.contains("let $xp := doc(\"foo\")//part"));
        // It parses as a valid module of our engine.
        xust_xquery::parse_module(&text).unwrap();
    }

    #[test]
    fn example_11_delete_price_via_xquery() {
        // The motivating query: all information except price.
        let q = TransformQuery::delete("d", parse_path("//price").unwrap());
        let out = naive_xquery(&doc(), &q).unwrap();
        assert!(!out.serialize().contains("price"));
        assert!(out.serialize().contains("keyboard"));
    }

    #[test]
    fn delete_root_via_both() {
        let q = TransformQuery::delete("d", parse_path("//db").unwrap());
        assert_eq!(naive_direct(&doc(), &q).root(), None);
        assert_eq!(naive_xquery(&doc(), &q).unwrap().root(), None);
    }

    #[test]
    fn attributes_preserved_through_xquery_roundtrip() {
        let d = Document::parse(r#"<db><p id="p1" k="v"><c/></p></db>"#).unwrap();
        let q = TransformQuery::insert(
            "d",
            parse_path("db/p").unwrap(),
            Document::parse("<n/>").unwrap(),
        );
        let expected = copy_update(&d, &q);
        let mut engine = xust_xquery::Engine::new();
        engine.load_doc("d", d);
        let v = engine.eval_str(&rewrite_to_xquery(&q)).unwrap();
        let got = engine.value_to_document(&v).unwrap();
        assert!(docs_eq(&expected, &got), "got {}", got.serialize());
    }
}
