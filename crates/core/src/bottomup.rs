//! Algorithm `bottomUp` (Fig. 9) — one-pass bottom-up qualifier
//! evaluation (Section 5).
//!
//! Driven by the **filtering NFA** `Mf`, a single traversal of `T`
//! evaluates every qualifier in the embedded XPath `p` and annotates each
//! visited node with the truth values of the sub-qualifier list `LQ`
//! (`satₙ`). `QualDP` (Fig. 7, implemented in `xust_xpath::qual_dp`)
//! does constant work per sub-qualifier per node given the child and
//! descendant aggregates `csatₙ`/`dsatₙ`.
//!
//! Differences from the paper's presentation, both behaviour-preserving:
//!
//! * The paper encodes the bottom-up traversal as recursion on the
//!   *left-most child* and *immediate right sibling*, threading `rsat`/
//!   `rdsat` vectors, purely to stay side-effect free in XQuery. In Rust
//!   we use an explicit post-order stack and accumulate `csat`/`dsat`
//!   directly in the parent's frame (`rsatₙc = csatₙ`, `rdsatₙc = dsatₙ`
//!   by the paper's own Lemma-level observations).
//! * At each *visited* node we evaluate the full `LQ` rather than only
//!   `LQ(S′)`; values that the paper's per-state lists would skip are
//!   never consumed (see the module tests), and the complexity stays
//!   within the paper's O(|T|·|p|²) bound. Subtree pruning on `S′ = ∅`
//!   — the part that matters asymptotically — is identical (Fig. 9
//!   line 6).

use xust_automata::{FilteringNfa, StateSet};
use xust_tree::{Document, NodeId};
use xust_xpath::{qual_dp, Path, QualTable, SatVec};

/// Per-node qualifier annotations produced by the bottom-up pass.
///
/// `sat[n]` is `None` for nodes the filtering NFA pruned (never consulted
/// by the subsequent top-down pass) and for text nodes.
pub struct Annotations {
    /// The normalized sub-qualifier table `LQ` the values refer to.
    pub table: QualTable,
    sat: Vec<Option<SatVec>>,
    /// Number of element nodes actually visited (not pruned) — exposed
    /// for the pruning ablation bench.
    pub visited: usize,
}

impl Annotations {
    /// `checkp(qᵢ, n)` in O(1): truth of the qualifier of path step
    /// `step` at node `n`.
    pub fn check(&self, node: NodeId, step: usize) -> bool {
        match (&self.sat[node.index()], self.table.step_roots[step]) {
            (Some(sat), Some(root)) => sat.get(root),
            // A step without qualifier is [true].
            (_, None) => true,
            // Pruned nodes are never on a qualified selecting path.
            (None, Some(_)) => false,
        }
    }

    /// Raw satisfaction vector of a node (None if pruned).
    pub fn sat(&self, node: NodeId) -> Option<&SatVec> {
        self.sat[node.index()].as_ref()
    }
}

/// Runs the bottom-up pass over `doc` for the selecting path `path`.
pub fn bottom_up(doc: &Document, path: &Path) -> Annotations {
    let table = QualTable::from_path(path);
    let nfa = FilteringNfa::new(path);
    bottom_up_prebuilt(doc, path, &nfa, table)
}

/// [`bottom_up`] over a pre-compiled filtering NFA and qualifier table,
/// so repeated evaluations of one query (the prepared-query cache in
/// `xust-serve`) skip automaton construction. `nfa` and `table` must
/// have been built from `path`.
pub fn bottom_up_prebuilt(
    doc: &Document,
    path: &Path,
    nfa: &FilteringNfa,
    table: QualTable,
) -> Annotations {
    let mut ann = Annotations {
        sat: vec![None; doc.arena_len()],
        table,
        visited: 0,
    };
    let Some(root) = doc.root() else {
        return ann;
    };
    let nq = ann.table.len();

    // Explicit post-order traversal. Each frame owns the child/descendant
    // aggregates for one element being visited.
    struct Frame {
        node: NodeId,
        children: Vec<NodeId>,
        next_child: usize,
        states: StateSet,
        csat: SatVec,
        dsat: SatVec,
    }

    let initial = nfa.initial();
    let root_states = next_for(doc, nfa, &initial, root);
    if root_states.is_empty() && !path.is_empty() {
        // Even the root is irrelevant — nothing to annotate.
        return ann;
    }
    let mut stack = vec![Frame {
        node: root,
        children: doc.element_children(root).collect(),
        next_child: 0,
        states: root_states,
        csat: SatVec::new(nq),
        dsat: SatVec::new(nq),
    }];

    // (sat, subtree_sat) of the most recently completed child, to be
    // merged into its parent's aggregates.
    while let Some(frame) = stack.last_mut() {
        if frame.next_child < frame.children.len() {
            let child = frame.children[frame.next_child];
            frame.next_child += 1;
            let child_states = next_for(doc, nfa, &frame.states, child);
            if child_states.is_empty() {
                // Fig. 9 line 6: prune — the subtree contributes to no
                // selection decision, so no annotations are needed.
                continue;
            }
            stack.push(Frame {
                node: child,
                children: doc.element_children(child).collect(),
                next_child: 0,
                states: child_states,
                csat: SatVec::new(nq),
                dsat: SatVec::new(nq),
            });
        } else {
            // All children done: evaluate LQ at this node (Fig. 9
            // line 12) and fold into the parent.
            let frame = stack.pop().expect("frame exists");
            let mut sat = SatVec::new(nq);
            qual_dp(
                &ann.table,
                doc,
                frame.node,
                &frame.csat,
                &frame.dsat,
                &mut sat,
            );
            ann.visited += 1;
            if let Some(parent) = stack.last_mut() {
                parent.csat.or_assign(&sat);
                parent.dsat.or_assign(&sat);
                parent.dsat.or_assign(&frame.dsat);
            }
            ann.sat[frame.node.index()] = Some(sat);
        }
    }
    ann
}

fn next_for(doc: &Document, nfa: &FilteringNfa, states: &StateSet, node: NodeId) -> StateSet {
    match doc.name_sym(node) {
        Some(label) => nfa.next_states(states, label),
        // Text nodes are never visited, but stay total just in case.
        None => StateSet::new(nfa.len()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::{eval_qualifier, parse_path};

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>",
        )
        .unwrap()
    }

    /// The central invariant: wherever the selecting path needs a
    /// qualifier decision, the annotation equals direct evaluation.
    #[test]
    fn annotations_agree_with_direct_eval_on_selecting_nodes() {
        let d = doc();
        let paths = [
            "//part[pname = 'keyboard']",
            "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
            "db/part[supplier/price < 15]/supplier",
            "//supplier[sname = 'IBM' or sname = 'HP']",
            "//part[pname]",
        ];
        for p in paths {
            let path = parse_path(p).unwrap();
            let ann = bottom_up(&d, &path);
            for (i, step) in path.steps.iter().enumerate() {
                let Some(q) = &step.qualifier else { continue };
                for n in d.descendants_or_self(d.root().unwrap()) {
                    if !d.is_element(n) || ann.sat(n).is_none() {
                        continue;
                    }
                    // Only nodes whose label can match the step matter.
                    let matches_label = match &step.kind {
                        xust_xpath::StepKind::Label(l) => d.name(n) == Some(l.as_str()),
                        _ => true,
                    };
                    if !matches_label {
                        continue;
                    }
                    assert_eq!(
                        ann.check(n, i),
                        eval_qualifier(&d, n, q),
                        "path {p}, step {i}, node <{}>",
                        d.name(n).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn pruning_skips_irrelevant_subtrees() {
        let d = doc();
        // `supplier//part` anchors nowhere (root has no supplier child):
        // Example 5.3's second case — bottomUp returns immediately.
        let path = parse_path("supplier//part").unwrap();
        let ann = bottom_up(&d, &path);
        assert_eq!(ann.visited, 0);

        // A rooted path only visits its spine and qualifier regions.
        let path = parse_path("db/part[pname = 'keyboard']").unwrap();
        let ann = bottom_up(&d, &path);
        // Visited: db, 2 parts, their pname children (qualifier branch) —
        // suppliers and deeper parts are *not* all visited. (The nested
        // part under part matches no state: `part` continuation only at
        // depth 1.)
        assert!(ann.visited <= 7, "visited {} nodes", ann.visited);
        assert!(ann.visited >= 5);
    }

    #[test]
    fn no_qualifiers_means_reachability_only() {
        let d = doc();
        let path = parse_path("//price").unwrap();
        let ann = bottom_up(&d, &path);
        assert!(ann.table.is_empty());
        // With // everything is reachable: all elements visited.
        let elements = d
            .descendants_or_self(d.root().unwrap())
            .filter(|&n| d.is_element(n))
            .count();
        assert_eq!(ann.visited, elements);
        // checkp on qualifier-less steps is vacuously true.
        assert!(ann.check(d.root().unwrap(), 0));
    }

    #[test]
    fn empty_document() {
        let path = parse_path("//x[y]").unwrap();
        let ann = bottom_up(&Document::new(), &path);
        assert_eq!(ann.visited, 0);
    }

    #[test]
    fn deep_document_no_stack_overflow() {
        // 50k-deep chain exercises the explicit stack.
        let mut d = Document::new();
        let root = d.create_element("n");
        d.set_root(root);
        let mut cur = root;
        for _ in 0..50_000 {
            let c = d.create_element("n");
            d.append_child(cur, c);
            cur = c;
        }
        let leaf_flag = d.create_element("flag");
        d.append_child(cur, leaf_flag);
        let path = parse_path("//n[flag]").unwrap();
        let ann = bottom_up(&d, &path);
        // The deepest n has the flag child.
        assert!(ann.check(cur, 1));
        assert!(!ann.check(root, 1));
    }
}
