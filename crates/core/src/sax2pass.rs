//! Algorithm `twoPassSAX` (Section 6): the two-pass method fused with
//! SAX parsing, for documents too large for a DOM.
//!
//! **Pass 1** integrates `bottomUp` with event parsing: a stack bounded
//! by document depth carries, per open element, the filtering-NFA state
//! set, the `csat`/`dsat` aggregates, accumulated text, and the ids of
//! the top-level qualifiers to be evaluated there. Ids are drawn from a
//! cursor in traversal order; at `endElement` the qualifier truth values
//! are appended to the list `Ld` (optionally spilled to disk).
//!
//! **Pass 2** integrates `topDown`: it re-parses the document, *replays*
//! the pass-1 cursor discipline against the filtering NFA to map each
//! qualifier occurrence back to its `Ld` slot, runs the selecting NFA
//! with those truths as its `checkp`, and emits the transformed document
//! as an output event stream.
//!
//! Memory is O(depth · |p|) + |Ld| — independent of |T|, the property
//! Fig. 14 demonstrates on gigabyte inputs.
//!
//! Both passes are exposed as *push-based machines* behind the
//! [`EventSink`] abstraction: [`PreparedTransform`] runs pass 1 once and
//! can then replay pass 2 into any sink, and [`PathPrepass`] /
//! [`PreparedPath`] run the same qualifier machinery for an arbitrary X
//! path over an arbitrary event stream. The streaming composition of
//! user and transform queries (`xust-compose::stream`, the paper's §9
//! future work) is built from exactly these parts.

use std::fmt;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path as FsPath;

use xust_automata::{FilteringNfa, SelectingNfa, StateSet};
use xust_intern::Sym;
use xust_sax::{SaxError, SaxEvent, SaxParser, SaxWriter};
use xust_xpath::{qual_dp_facts, NodeFacts, Path, QualTable, SatVec};

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// Where pass 1 keeps the qualifier-truth list `Ld`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LdStorage {
    /// In memory (one byte per qualifier occurrence).
    #[default]
    Memory,
    /// Spilled to a temporary file between the passes, as in the paper
    /// ("writes it to disk as output"). The `ablation_ld_storage` bench
    /// compares the two.
    TempFile,
}

/// Error from the streaming transform.
#[derive(Debug)]
pub enum SaxTransformError {
    /// Malformed XML in either pass.
    Sax(SaxError),
    /// I/O failure reading input or writing output/spill.
    Io(std::io::Error),
    /// Pass 2 saw a different event stream than pass 1 (the input
    /// changed between passes).
    Desync(String),
    /// A downstream consumer failed (streaming composition).
    Sink(String),
}

impl fmt::Display for SaxTransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaxTransformError::Sax(e) => write!(f, "streaming transform: {e}"),
            SaxTransformError::Io(e) => write!(f, "streaming transform I/O: {e}"),
            SaxTransformError::Desync(m) => write!(f, "pass desynchronisation: {m}"),
            SaxTransformError::Sink(m) => write!(f, "stream consumer: {m}"),
        }
    }
}

impl std::error::Error for SaxTransformError {}

impl From<SaxError> for SaxTransformError {
    fn from(e: SaxError) -> Self {
        SaxTransformError::Sax(e)
    }
}

impl From<std::io::Error> for SaxTransformError {
    fn from(e: std::io::Error) -> Self {
        SaxTransformError::Io(e)
    }
}

/// The qualifier-truth list `Ld`: one bit per (qualifier, node) pair that
/// pass 1 evaluated, indexed by the traversal-order cursor id.
struct Ld {
    bits: Vec<u8>,
    storage: LdStorage,
    spill: Option<tempfile_path::TempPath>,
}

/// Minimal temp-file helper (std-only; removed on drop).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn fresh(tag: &str) -> TempPath {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        TempPath(std::env::temp_dir().join(format!(
            "xust-ld-{tag}-{n}-{:?}",
            std::thread::current().id()
        )))
    }
}

impl Ld {
    fn new(storage: LdStorage) -> Ld {
        Ld {
            bits: Vec::new(),
            storage,
            spill: None,
        }
    }

    fn set(&mut self, id: u64, v: bool) {
        let id = id as usize;
        if self.bits.len() <= id {
            self.bits.resize(id + 1, 0);
        }
        self.bits[id] = u8::from(v);
    }

    fn get(&self, id: u64) -> bool {
        self.bits.get(id as usize).copied().unwrap_or(0) == 1
    }

    /// Between the passes: spill/reload when file-backed.
    fn seal(&mut self) -> Result<(), SaxTransformError> {
        if self.storage == LdStorage::TempFile {
            let path = tempfile_path::fresh("pass1");
            std::fs::write(&path.0, &self.bits)?;
            self.bits = Vec::new();
            self.spill = Some(path);
        }
        Ok(())
    }

    fn reload(&mut self) -> Result<(), SaxTransformError> {
        if let Some(path) = &self.spill {
            self.bits = std::fs::read(&path.0)?;
        }
        Ok(())
    }

    /// Number of qualifier occurrences recorded.
    fn len(&self) -> usize {
        self.bits.len()
    }
}

/// Facts adapter for a pass-1 stack entry.
struct SaxFacts<'a> {
    label: Sym,
    attrs: &'a [(Sym, String)],
    text: &'a str,
}

impl NodeFacts for SaxFacts<'_> {
    fn label(&self) -> Option<&str> {
        Some(self.label.as_str())
    }

    fn attr(&self, name: &str) -> Option<&str> {
        // One hash lookup for the queried name, then Sym compares — no
        // per-attribute string work on the pass-1 qualifier path.
        let want = xust_intern::Interner::global().lookup(name)?;
        self.attrs
            .iter()
            .find(|(k, _)| *k == want)
            .map(|(_, v)| v.as_str())
    }

    fn immediate_text(&self) -> String {
        self.text.to_string()
    }
}

/// Statistics from a streaming transform (for tests and the Fig. 14
/// harness).
#[derive(Debug, Default, Clone, Copy)]
pub struct SaxStats {
    /// Elements seen in pass 1.
    pub elements: u64,
    /// Qualifier occurrences recorded in `Ld`.
    pub ld_entries: u64,
    /// Maximum stack depth reached (memory bound witness).
    pub max_depth: usize,
}

// ---- event sinks ----

/// Consumer of a SAX event stream. [`two_pass_sax`] writes the events
/// out as XML text; the streaming composition pipes them into further
/// automata without ever materializing the transformed document.
pub trait EventSink {
    /// Receives one event.
    fn event(&mut self, ev: SaxEvent) -> Result<(), SaxTransformError>;

    /// Called once after the last event of the stream.
    fn finish(&mut self) -> Result<(), SaxTransformError> {
        Ok(())
    }
}

/// Sink that serializes the event stream as XML text.
pub struct WriterSink<W: Write> {
    w: Option<SaxWriter<W>>,
}

impl<W: Write> WriterSink<W> {
    /// Wraps an output writer.
    pub fn new(out: W) -> Self {
        WriterSink {
            w: Some(SaxWriter::new(out)),
        }
    }
}

impl<W: Write> EventSink for WriterSink<W> {
    fn event(&mut self, ev: SaxEvent) -> Result<(), SaxTransformError> {
        if let Some(w) = self.w.as_mut() {
            w.write_event(&ev)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SaxTransformError> {
        if let Some(w) = self.w.take() {
            w.finish().map_err(SaxTransformError::Sax)?;
        }
        Ok(())
    }
}

// ---- public orchestration ----

/// Streaming transform: reads the document twice (two independent
/// parsers over the same input) and writes the transformed document.
pub fn two_pass_sax<R1: Read, R2: Read, W: Write>(
    pass1: SaxParser<R1>,
    pass2: SaxParser<R2>,
    q: &TransformQuery,
    out: W,
    storage: LdStorage,
) -> Result<SaxStats, SaxTransformError> {
    let mut prepared = PreparedTransform::prepare(pass1, q, storage)?;
    let mut sink = WriterSink::new(out);
    prepared.replay_into(pass2, &mut sink)?;
    Ok(prepared.stats)
}

/// Convenience: transform a string, returning the serialized result.
pub fn two_pass_sax_str(xml: &str, q: &TransformQuery) -> Result<String, SaxTransformError> {
    let mut out = Vec::new();
    two_pass_sax(
        SaxParser::from_str(xml),
        SaxParser::from_str(xml),
        q,
        &mut out,
        LdStorage::Memory,
    )?;
    Ok(String::from_utf8(out).expect("writer produces UTF-8"))
}

/// Convenience: transform file → file with bounded memory.
pub fn two_pass_sax_files(
    input: impl AsRef<FsPath>,
    q: &TransformQuery,
    output: impl AsRef<FsPath>,
    storage: LdStorage,
) -> Result<SaxStats, SaxTransformError> {
    let p1 = SaxParser::from_file(&input)?;
    let p2 = SaxParser::from_file(&input)?;
    let out = BufWriter::new(File::create(output)?);
    two_pass_sax::<BufReader<File>, BufReader<File>, _>(p1, p2, q, out, storage)
}

/// A transform query that has completed pass 1 over a document: the
/// qualifier truths `Ld` are sealed, and pass 2 can be *replayed* over
/// the same input any number of times, emitting the transformed document
/// as an event stream into any [`EventSink`].
pub struct PreparedTransform {
    q: TransformQuery,
    mf: FilteringNfa,
    mp: SelectingNfa,
    step_states: Vec<Option<usize>>,
    ld: Ld,
    /// Statistics accumulated across the passes.
    pub stats: SaxStats,
}

impl PreparedTransform {
    /// Pass 1: streams the document once, evaluating every qualifier of
    /// the embedded path bottom-up.
    pub fn prepare<R: Read>(
        parser: SaxParser<R>,
        q: &TransformQuery,
        storage: LdStorage,
    ) -> Result<Self, SaxTransformError> {
        let mf = FilteringNfa::new(&q.path);
        let mp = SelectingNfa::new(&q.path);
        Self::prepare_with(parser, q, storage, mf, mp)
    }

    /// [`PreparedTransform::prepare`] over pre-compiled automata (cloned
    /// out of a `CompiledTransform`), so cache hits in `xust-serve` skip
    /// NFA construction even on the streaming path. `mf` and `mp` must
    /// have been built from `q.path`.
    pub fn prepare_with<R: Read>(
        mut parser: SaxParser<R>,
        q: &TransformQuery,
        storage: LdStorage,
        mf: FilteringNfa,
        mp: SelectingNfa,
    ) -> Result<Self, SaxTransformError> {
        let table = QualTable::from_path(&q.path);
        let step_states: Vec<Option<usize>> = (0..q.path.steps.len())
            .map(|i| mf.state_of_step(i))
            .collect();
        let mut ld = Ld::new(storage);
        let mut stats = SaxStats::default();
        if !q.path.is_empty() {
            let mut m = Pass1State::new();
            while let Some(ev) = parser.next_event()? {
                m.on_event(ev, &table, &mf, &step_states, &mut ld, &mut stats);
            }
        }
        ld.seal()?;
        ld.reload()?;
        stats.ld_entries = ld.len() as u64;
        Ok(PreparedTransform {
            q: q.clone(),
            mf,
            mp,
            step_states,
            ld,
            stats,
        })
    }

    /// Pass 2: re-streams the same document and pushes the transformed
    /// event stream into `sink` (calling `sink.finish()` at the end).
    pub fn replay_into<R: Read>(
        &mut self,
        mut parser: SaxParser<R>,
        sink: &mut dyn EventSink,
    ) -> Result<(), SaxTransformError> {
        let mut core = Pass2Core::new(&self.q);
        let ctx = Pass2Ctx {
            op: &self.q.op,
            mf: &self.mf,
            mp: &self.mp,
            step_states: &self.step_states,
            ld: &self.ld,
        };
        while let Some(ev) = parser.next_event()? {
            core.on_event(&ctx, ev, sink)?;
        }
        self.stats.max_depth = self.stats.max_depth.max(core.max_depth);
        sink.finish()
    }
}

/// A fully push-based streaming transform session: the caller *feeds*
/// SAX events for pass 1, seals the qualifier truths, then feeds the
/// same event stream again for pass 2 and receives the transformed
/// document incrementally through an [`EventSink`]. Nothing is pulled
/// from a parser and the input tree is never materialized — memory
/// stays O(depth · |p|) + |Ld| however large the document is.
///
/// This is the engine behind `xust-serve`'s streaming session mode,
/// where a network client streams a document twice (mirroring the
/// two-pass discipline) and reads transformed output as it is produced.
///
/// ```
/// use xust_core::{parse_transform, TransformStream, WriterSink};
/// use xust_sax::SaxParser;
///
/// let q = parse_transform(
///     r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
/// ).unwrap();
/// let xml = "<db><part><price>9</price><n>kb</n></part></db>";
/// let mut ts = TransformStream::new(&q, Default::default());
/// let mut p = SaxParser::from_str(xml);
/// while let Some(ev) = p.next_event().unwrap() {
///     ts.feed(ev).unwrap();
/// }
/// ts.begin_replay().unwrap();
/// let mut out = Vec::new();
/// let mut sink = WriterSink::new(&mut out);
/// let mut p = SaxParser::from_str(xml);
/// while let Some(ev) = p.next_event().unwrap() {
///     ts.replay(ev, &mut sink).unwrap();
/// }
/// ts.finish(&mut sink).unwrap();
/// assert_eq!(String::from_utf8(out).unwrap(), "<db><part><n>kb</n></part></db>");
/// ```
pub struct TransformStream {
    q: TransformQuery,
    table: QualTable,
    mf: FilteringNfa,
    mp: SelectingNfa,
    step_states: Vec<Option<usize>>,
    ld: Ld,
    stats: SaxStats,
    phase: StreamPhase,
    /// Open-element depth of the *incoming* stream in the current pass,
    /// maintained defensively: unlike [`SaxParser`], a remote client can
    /// send arbitrary (unbalanced) event sequences.
    depth: usize,
    /// The current pass has seen its root element close.
    root_closed: bool,
}

enum StreamPhase {
    Pass1(Pass1State),
    Pass2(Pass2Core),
    Done,
}

impl TransformStream {
    /// Starts a session for `q`, compiling its automata.
    pub fn new(q: &TransformQuery, storage: LdStorage) -> TransformStream {
        Self::with_automata(
            q,
            storage,
            FilteringNfa::new(&q.path),
            SelectingNfa::new(&q.path),
        )
    }

    /// Starts a session over pre-compiled automata (cloned out of a
    /// [`crate::CompiledTransform`], so cache hits skip NFA
    /// construction). `mf` and `mp` must have been built from `q.path`.
    pub fn with_automata(
        q: &TransformQuery,
        storage: LdStorage,
        mf: FilteringNfa,
        mp: SelectingNfa,
    ) -> TransformStream {
        let table = QualTable::from_path(&q.path);
        let step_states = (0..q.path.steps.len())
            .map(|i| mf.state_of_step(i))
            .collect();
        TransformStream {
            q: q.clone(),
            table,
            mf,
            mp,
            step_states,
            ld: Ld::new(storage),
            stats: SaxStats::default(),
            phase: StreamPhase::Pass1(Pass1State::new()),
            depth: 0,
            root_closed: false,
        }
    }

    /// Validates stream discipline for one incoming event (both passes):
    /// rejects unbalanced end tags and content after the root closes, so
    /// a malformed client stream becomes an error instead of corrupt
    /// output or a panic.
    fn track(&mut self, ev: &SaxEvent) -> Result<(), SaxTransformError> {
        match ev {
            SaxEvent::StartElement { .. } => {
                if self.root_closed {
                    return Err(SaxTransformError::Desync(
                        "element after document root closed".into(),
                    ));
                }
                self.depth += 1;
            }
            SaxEvent::EndElement(_) => {
                if self.depth == 0 {
                    return Err(SaxTransformError::Desync(
                        "end element without matching start".into(),
                    ));
                }
                self.depth -= 1;
                if self.depth == 0 {
                    self.root_closed = true;
                }
            }
            SaxEvent::StartDocument | SaxEvent::EndDocument | SaxEvent::Text(_) => {}
        }
        Ok(())
    }

    /// Feeds one pass-1 event.
    pub fn feed(&mut self, ev: SaxEvent) -> Result<(), SaxTransformError> {
        if !matches!(self.phase, StreamPhase::Pass1(_)) {
            return Err(SaxTransformError::Desync(
                "feed() after begin_replay()".into(),
            ));
        }
        self.track(&ev)?;
        let StreamPhase::Pass1(state) = &mut self.phase else {
            unreachable!("phase checked above");
        };
        if !self.q.path.is_empty() {
            state.on_event(
                ev,
                &self.table,
                &self.mf,
                &self.step_states,
                &mut self.ld,
                &mut self.stats,
            );
        }
        Ok(())
    }

    /// Ends pass 1: seals the qualifier truths and arms pass 2. Errors
    /// if the pass-1 stream was truncated (elements still open).
    pub fn begin_replay(&mut self) -> Result<(), SaxTransformError> {
        if !matches!(self.phase, StreamPhase::Pass1(_)) {
            return Err(SaxTransformError::Desync(
                "begin_replay() called twice".into(),
            ));
        }
        if self.depth != 0 {
            return Err(SaxTransformError::Desync(format!(
                "pass-1 stream truncated: {} element(s) still open",
                self.depth
            )));
        }
        self.ld.seal()?;
        self.ld.reload()?;
        self.stats.ld_entries = self.ld.len() as u64;
        self.phase = StreamPhase::Pass2(Pass2Core::new(&self.q));
        self.depth = 0;
        self.root_closed = false;
        Ok(())
    }

    /// Feeds one pass-2 event; transformed events come out of `sink`.
    /// The pass-2 stream must replay the pass-1 stream exactly.
    pub fn replay(
        &mut self,
        ev: SaxEvent,
        sink: &mut dyn EventSink,
    ) -> Result<(), SaxTransformError> {
        if !matches!(self.phase, StreamPhase::Pass2(_)) {
            return Err(SaxTransformError::Desync(
                "replay() before begin_replay()".into(),
            ));
        }
        self.track(&ev)?;
        let StreamPhase::Pass2(core) = &mut self.phase else {
            unreachable!("phase checked above");
        };
        let ctx = Pass2Ctx {
            op: &self.q.op,
            mf: &self.mf,
            mp: &self.mp,
            step_states: &self.step_states,
            ld: &self.ld,
        };
        core.on_event(&ctx, ev, sink)?;
        self.stats.max_depth = self.stats.max_depth.max(core.max_depth);
        Ok(())
    }

    /// Ends pass 2: flushes the sink and returns the session statistics.
    /// Errors if the pass-2 stream was truncated.
    pub fn finish(&mut self, sink: &mut dyn EventSink) -> Result<SaxStats, SaxTransformError> {
        if !matches!(self.phase, StreamPhase::Pass2(_)) {
            return Err(SaxTransformError::Desync(
                "finish() before begin_replay()".into(),
            ));
        }
        if self.depth != 0 {
            return Err(SaxTransformError::Desync(format!(
                "pass-2 stream truncated: {} element(s) still open",
                self.depth
            )));
        }
        self.phase = StreamPhase::Done;
        sink.finish()?;
        Ok(self.stats)
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SaxStats {
        self.stats
    }

    /// The transform this session evaluates.
    pub fn query(&self) -> &TransformQuery {
        &self.q
    }
}

// ---- pass 1 (push-based machine) ----

struct P1Frame {
    /// Filtering-NFA states (empty ⇒ pruned region: no work below).
    states: StateSet,
    active: bool,
    label: Sym,
    attrs: Vec<(Sym, String)>,
    text: String,
    csat: SatVec,
    dsat: SatVec,
    /// (step, id) of top-level qualifiers to output at endElement.
    quals: Vec<(usize, u64)>,
}

/// The mutable state of a pass-1 run; fed one event at a time.
struct Pass1State {
    cursor: u64,
    stack: Vec<P1Frame>,
}

impl Pass1State {
    fn new() -> Self {
        Pass1State {
            cursor: 0,
            stack: Vec::new(),
        }
    }

    fn on_event(
        &mut self,
        ev: SaxEvent,
        table: &QualTable,
        mf: &FilteringNfa,
        step_states: &[Option<usize>],
        ld: &mut Ld,
        stats: &mut SaxStats,
    ) {
        let nq = table.len();
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => {}
            SaxEvent::StartElement { name, attrs } => {
                stats.elements += 1;
                let parent_states = match self.stack.last() {
                    Some(f) => f.states.clone(),
                    None => mf.initial(),
                };
                let states = if self.stack.last().is_some_and(|f| !f.active) {
                    StateSet::new(mf.len())
                } else {
                    mf.next_states(&parent_states, name)
                };
                let active = !states.is_empty();
                let mut quals = Vec::new();
                if active {
                    // Assign cursor ids for step qualifiers anchored here
                    // (ascending step order — pass 2 replays identically).
                    for (step, state) in step_states.iter().enumerate() {
                        if table.step_roots[step].is_none() {
                            continue;
                        }
                        if state.is_some_and(|st| states.contains(st)) {
                            quals.push((step, self.cursor));
                            self.cursor += 1;
                        }
                    }
                }
                self.stack.push(P1Frame {
                    states,
                    active,
                    label: name,
                    attrs,
                    text: String::new(),
                    csat: SatVec::new(nq),
                    dsat: SatVec::new(nq),
                    quals,
                });
                stats.max_depth = stats.max_depth.max(self.stack.len());
            }
            SaxEvent::Text(t) => {
                if let Some(f) = self.stack.last_mut() {
                    if f.active {
                        f.text.push_str(&t);
                    }
                }
            }
            SaxEvent::EndElement(_) => {
                // `SaxParser` guarantees balance; push-based callers
                // ([`TransformStream`]) validate it before delegating, so
                // an orphan end tag here is simply ignored.
                let Some(frame) = self.stack.pop() else {
                    return;
                };
                if !frame.active {
                    return;
                }
                let mut sat = SatVec::new(nq);
                let facts = SaxFacts {
                    label: frame.label,
                    attrs: &frame.attrs,
                    text: &frame.text,
                };
                qual_dp_facts(table, &facts, &frame.csat, &frame.dsat, &mut sat);
                for &(step, id) in &frame.quals {
                    let root =
                        table.step_roots[step].expect("id assigned only for qualified steps");
                    ld.set(id, sat.get(root));
                }
                if let Some(parent) = self.stack.last_mut() {
                    if parent.active {
                        parent.csat.or_assign(&sat);
                        parent.dsat.or_assign(&sat);
                        parent.dsat.or_assign(&frame.dsat);
                    }
                }
            }
        }
    }
}

// ---- prepared paths (the reusable qualifier machinery) ----

/// Pass-1 qualifier evaluation for an arbitrary X path over an arbitrary
/// event stream. Feed it events (it is an [`EventSink`], so it can sit
/// directly downstream of [`PreparedTransform::replay_into`]), then call
/// [`PathPrepass::finish`] to seal the truths into a [`PreparedPath`].
pub struct PathPrepass {
    path: Path,
    table: QualTable,
    mf: FilteringNfa,
    mp: SelectingNfa,
    step_states: Vec<Option<usize>>,
    ld: Ld,
    stats: SaxStats,
    state: Pass1State,
}

impl PathPrepass {
    /// Prepares the automata and qualifier table for `path`.
    pub fn new(path: &Path, storage: LdStorage) -> PathPrepass {
        let table = QualTable::from_path(path);
        let mf = FilteringNfa::new(path);
        let mp = SelectingNfa::new(path);
        let step_states = (0..path.steps.len()).map(|i| mf.state_of_step(i)).collect();
        PathPrepass {
            path: path.clone(),
            table,
            mf,
            mp,
            step_states,
            ld: Ld::new(storage),
            stats: SaxStats::default(),
            state: Pass1State::new(),
        }
    }

    /// Feeds one event.
    pub fn feed(&mut self, ev: SaxEvent) {
        if self.path.is_empty() {
            return;
        }
        self.state.on_event(
            ev,
            &self.table,
            &self.mf,
            &self.step_states,
            &mut self.ld,
            &mut self.stats,
        );
    }

    /// Seals the qualifier truths.
    pub fn finish(mut self) -> Result<PreparedPath, SaxTransformError> {
        self.ld.seal()?;
        self.ld.reload()?;
        self.stats.ld_entries = self.ld.len() as u64;
        Ok(PreparedPath {
            path: self.path,
            mf: self.mf,
            mp: self.mp,
            step_states: self.step_states,
            ld: self.ld,
            stats: self.stats,
        })
    }
}

impl EventSink for PathPrepass {
    fn event(&mut self, ev: SaxEvent) -> Result<(), SaxTransformError> {
        self.feed(ev);
        Ok(())
    }
}

/// An X path whose qualifiers have been evaluated over a stream: replay
/// the same stream through [`PreparedPath::selector`] to learn, per
/// element, whether the path selects it.
pub struct PreparedPath {
    path: Path,
    mf: FilteringNfa,
    mp: SelectingNfa,
    step_states: Vec<Option<usize>>,
    ld: Ld,
    /// Prepass statistics.
    pub stats: SaxStats,
}

impl PreparedPath {
    /// Starts a replay over the same stream.
    pub fn selector(&self) -> PathSelector<'_> {
        PathSelector {
            pp: self,
            cursor: 0,
            truth: vec![false; self.path.steps.len().max(1)],
            stack: Vec::new(),
        }
    }

    /// The path this was prepared for.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

struct SelFrame {
    mf_states: StateSet,
    mp_states: StateSet,
}

/// Replays the pass-1 cursor discipline over the same event stream and
/// drives the selecting NFA with the recorded truths — reporting, per
/// start tag, whether the node is selected by the path.
pub struct PathSelector<'a> {
    pp: &'a PreparedPath,
    cursor: u64,
    truth: Vec<bool>,
    stack: Vec<SelFrame>,
}

impl PathSelector<'_> {
    /// Advances on a start tag; returns true iff the element is in
    /// `r[[p]]`. (An empty path selects exactly the stream's root.)
    pub fn start_element(&mut self, name: Sym) -> bool {
        let pp = self.pp;
        let (parent_mf, parent_mp) = match self.stack.last() {
            Some(f) => (f.mf_states.clone(), f.mp_states.clone()),
            None => (pp.mf.initial(), pp.mp.initial()),
        };
        let epsilon = pp.path.is_empty();
        let mf_next = pp.mf.next_states(&parent_mf, name);
        if !epsilon {
            for (step, state) in pp.step_states.iter().enumerate() {
                if pp.mp.path.steps[step].qualifier.is_none() {
                    continue;
                }
                if state.is_some_and(|st| mf_next.contains(st)) {
                    self.truth[step] = pp.ld.get(self.cursor);
                    self.cursor += 1;
                }
            }
        }
        let truth = &self.truth;
        let mp_next = pp.mp.next_states(&parent_mp, name, |step, _| truth[step]);
        let selected = if epsilon {
            self.stack.is_empty()
        } else {
            mp_next.contains(pp.mp.final_state)
        };
        self.stack.push(SelFrame {
            mf_states: mf_next,
            mp_states: mp_next,
        });
        selected
    }

    /// Advances past an end tag.
    pub fn end_element(&mut self) {
        self.stack.pop();
    }

    /// Current open-element depth.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }
}

// ---- pass 2 (push-based machine) ----

struct P2Frame {
    mf_states: StateSet,
    mp_states: StateSet,
    /// End-tag name to emit (None when this element is suppressed).
    emit_end: Option<Sym>,
    /// Emit `e` before the end tag (`insert … into` at a selected node).
    insert_at_end: bool,
    /// Emit `e` after the end tag (`insert … after` at a selected node).
    insert_after_end: bool,
}

/// Borrowed context for one pass-2 run: the immutable compiled pieces a
/// [`Pass2Core`] consults per event. Splitting these from the mutable
/// cursor state lets both the pull-based [`PreparedTransform`] and the
/// push-based [`TransformStream`] drive the same machine.
struct Pass2Ctx<'a> {
    op: &'a UpdateOp,
    mf: &'a FilteringNfa,
    mp: &'a SelectingNfa,
    step_states: &'a [Option<usize>],
    ld: &'a Ld,
}

/// Pass 2 as a machine: push input events, transformed events come out
/// of the sink. Owns only the mutable cursor/stack state; the compiled
/// context arrives per call via [`Pass2Ctx`].
struct Pass2Core {
    elem_events: Vec<SaxEvent>,
    cursor: u64,
    stack: Vec<P2Frame>,
    /// Count of suppressing ancestors (deleted/replaced subtrees).
    suppress: usize,
    epsilon: bool,
    truth: Vec<bool>,
    max_depth: usize,
}

impl Pass2Core {
    fn new(q: &TransformQuery) -> Self {
        let elem_events = match &q.op {
            UpdateOp::Insert { elem, .. } | UpdateOp::Replace { elem } => doc_events(elem),
            _ => Vec::new(),
        };
        Pass2Core {
            elem_events,
            cursor: 0,
            stack: Vec::new(),
            suppress: 0,
            epsilon: q.path.is_empty(),
            truth: vec![false; q.path.steps.len().max(1)],
            max_depth: 0,
        }
    }

    fn splice(&self, sink: &mut dyn EventSink) -> Result<(), SaxTransformError> {
        for ev in &self.elem_events {
            sink.event(ev.clone())?;
        }
        Ok(())
    }

    fn on_event(
        &mut self,
        ctx: &Pass2Ctx<'_>,
        ev: SaxEvent,
        sink: &mut dyn EventSink,
    ) -> Result<(), SaxTransformError> {
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => {}
            SaxEvent::StartElement { name, attrs } => {
                let (parent_mf, parent_mp) = match self.stack.last() {
                    Some(f) => (f.mf_states.clone(), f.mp_states.clone()),
                    None => (ctx.mf.initial(), ctx.mp.initial()),
                };
                // Replay the pass-1 cursor discipline.
                let mf_next = ctx.mf.next_states(&parent_mf, name);
                if !self.epsilon {
                    for (step, state) in ctx.step_states.iter().enumerate() {
                        if ctx.mp.path.steps[step].qualifier.is_none() {
                            continue;
                        }
                        if state.is_some_and(|st| mf_next.contains(st)) {
                            self.truth[step] = ctx.ld.get(self.cursor);
                            self.cursor += 1;
                        }
                    }
                }
                let truth = &self.truth;
                let mp_next = ctx.mp.next_states(&parent_mp, name, |step, _| truth[step]);
                let selected = if self.epsilon {
                    self.stack.is_empty()
                } else {
                    mp_next.contains(ctx.mp.final_state)
                };

                let mut frame = P2Frame {
                    mf_states: mf_next,
                    mp_states: mp_next,
                    emit_end: None,
                    insert_at_end: false,
                    insert_after_end: false,
                };
                if self.suppress > 0 {
                    self.suppress += 1; // stay suppressed; frame emits nothing
                } else if selected {
                    // `stack` still excludes the current element, so
                    // emptiness here means this *is* the document root —
                    // where sibling inserts are skipped.
                    let at_root = self.stack.is_empty();
                    match ctx.op {
                        UpdateOp::Delete => {
                            self.suppress += 1;
                        }
                        UpdateOp::Replace { .. } => {
                            self.splice(sink)?;
                            self.suppress += 1;
                        }
                        UpdateOp::Rename { name: new_name } => {
                            sink.event(SaxEvent::StartElement {
                                name: *new_name,
                                attrs,
                            })?;
                            frame.emit_end = Some(*new_name);
                        }
                        UpdateOp::Insert { pos, .. } => {
                            let pos = *pos;
                            if pos == InsertPos::Before && !at_root {
                                self.splice(sink)?;
                            }
                            sink.event(SaxEvent::StartElement { name, attrs })?;
                            if pos == InsertPos::FirstInto {
                                self.splice(sink)?;
                            }
                            frame.emit_end = Some(name);
                            frame.insert_at_end = pos == InsertPos::LastInto;
                            frame.insert_after_end = pos == InsertPos::After && !at_root;
                        }
                    }
                } else {
                    sink.event(SaxEvent::StartElement { name, attrs })?;
                    frame.emit_end = Some(name);
                }
                self.stack.push(frame);
                self.max_depth = self.max_depth.max(self.stack.len());
            }
            SaxEvent::Text(t) => {
                if self.suppress == 0 && !self.stack.is_empty() {
                    sink.event(SaxEvent::Text(t))?;
                }
            }
            SaxEvent::EndElement(_) => {
                let frame = self
                    .stack
                    .pop()
                    .ok_or_else(|| SaxTransformError::Desync("end element without start".into()))?;
                match frame.emit_end {
                    Some(name) => {
                        if frame.insert_at_end {
                            self.splice(sink)?;
                        }
                        sink.event(SaxEvent::EndElement(name))?;
                        if frame.insert_after_end {
                            self.splice(sink)?;
                        }
                    }
                    None => {
                        self.suppress = self.suppress.saturating_sub(1);
                    }
                }
            }
        }
        Ok(())
    }
}

/// Serializes a constant element `e` into the event stream to splice into
/// the output.
pub(crate) fn doc_events(doc: &xust_tree::Document) -> Vec<SaxEvent> {
    let Some(root) = doc.root() else {
        return Vec::new();
    };
    let mut events = Vec::new();
    enum Frame {
        Enter(xust_tree::NodeId),
        Exit(xust_tree::NodeId),
    }
    let mut stack = vec![Frame::Enter(root)];
    while let Some(f) = stack.pop() {
        match f {
            Frame::Enter(n) => match doc.kind(n) {
                xust_tree::NodeKind::Text(t) => events.push(SaxEvent::Text(t.clone())),
                xust_tree::NodeKind::Element { name, attrs } => {
                    events.push(SaxEvent::StartElement {
                        name: *name,
                        attrs: attrs.clone(),
                    });
                    stack.push(Frame::Exit(n));
                    let children: Vec<_> = doc.children(n).collect();
                    for &c in children.iter().rev() {
                        stack.push(Frame::Enter(c));
                    }
                }
            },
            Frame::Exit(n) => {
                events.push(SaxEvent::EndElement(
                    doc.name_sym(n).expect("exit frames are elements"),
                ));
            }
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_update::copy_update;
    use xust_tree::Document;
    use xust_xpath::parse_path;

    fn doc_xml() -> &'static str {
        "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>"
    }

    fn agree(q: &TransformQuery) {
        let d = Document::parse(doc_xml()).unwrap();
        let expected = copy_update(&d, q).serialize();
        let got = two_pass_sax_str(doc_xml(), q).unwrap();
        assert_eq!(
            got,
            expected,
            "twoPassSAX disagrees for {} {}",
            q.op.kind(),
            q.path
        );
    }

    #[test]
    fn all_ops_match_baseline() {
        let e = Document::parse("<mark><inner>x</inner></mark>").unwrap();
        for p in [
            "//price",
            "db/part/supplier",
            "//part[pname = 'keyboard']//part",
            "//supplier[price < 15]",
            "//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
            "db/part[supplier/sname = 'IBM']/pname",
            "zzz/nothing",
        ] {
            let path = parse_path(p).unwrap();
            agree(&TransformQuery::delete("d", path.clone()));
            agree(&TransformQuery::insert("d", path.clone(), e.clone()));
            agree(&TransformQuery::replace("d", path.clone(), e.clone()));
            agree(&TransformQuery::rename("d", path, "rn"));
        }
    }

    #[test]
    fn insert_position_variants_match_baseline() {
        let e = Document::parse("<mark/>").unwrap();
        for p in [
            "//supplier",
            "//part[pname = 'keyboard']",
            "db/part/supplier/price",
            "//part//part",
        ] {
            let path = parse_path(p).unwrap();
            for pos in [
                InsertPos::LastInto,
                InsertPos::FirstInto,
                InsertPos::Before,
                InsertPos::After,
            ] {
                agree(&TransformQuery::insert_at(
                    "d",
                    path.clone(),
                    e.clone(),
                    pos,
                ));
            }
        }
    }

    #[test]
    fn sibling_insert_at_root_skipped() {
        for pos in [InsertPos::Before, InsertPos::After] {
            let q = TransformQuery::insert_at(
                "d",
                parse_path("//db").unwrap(),
                Document::parse("<s/>").unwrap(),
                pos,
            );
            agree(&q);
            let out = two_pass_sax_str(doc_xml(), &q).unwrap();
            assert!(!out.contains("<s/>"));
        }
    }

    #[test]
    fn file_backed_ld_matches_memory() {
        let q = TransformQuery::delete("d", parse_path("//supplier[price < 15]").unwrap());
        let mut mem_out = Vec::new();
        let s1 = two_pass_sax(
            SaxParser::from_str(doc_xml()),
            SaxParser::from_str(doc_xml()),
            &q,
            &mut mem_out,
            LdStorage::Memory,
        )
        .unwrap();
        let mut file_out = Vec::new();
        let s2 = two_pass_sax(
            SaxParser::from_str(doc_xml()),
            SaxParser::from_str(doc_xml()),
            &q,
            &mut file_out,
            LdStorage::TempFile,
        )
        .unwrap();
        assert_eq!(mem_out, file_out);
        assert_eq!(s1.ld_entries, s2.ld_entries);
        assert!(s1.ld_entries > 0);
    }

    #[test]
    fn epsilon_path_ops() {
        let q = TransformQuery::rename("d", xust_xpath::Path::empty(), "r2");
        let out = two_pass_sax_str("<a><b/></a>", &q).unwrap();
        assert_eq!(out, "<r2><b/></r2>");
        let q = TransformQuery::delete("d", xust_xpath::Path::empty());
        let out = two_pass_sax_str("<a><b/></a>", &q).unwrap();
        assert_eq!(out, "");
        let q = TransformQuery::insert(
            "d",
            xust_xpath::Path::empty(),
            Document::parse("<x/>").unwrap(),
        );
        let out = two_pass_sax_str("<a><b/></a>", &q).unwrap();
        assert_eq!(out, "<a><b/><x/></a>");
    }

    #[test]
    fn delete_root_via_path() {
        let q = TransformQuery::delete("d", parse_path("//db").unwrap());
        assert_eq!(two_pass_sax_str(doc_xml(), &q).unwrap(), "");
    }

    #[test]
    fn files_roundtrip() {
        let dir = std::env::temp_dir();
        let input = dir.join("xust_sax2pass_in.xml");
        let output = dir.join("xust_sax2pass_out.xml");
        std::fs::write(&input, doc_xml()).unwrap();
        let q = TransformQuery::delete("d", parse_path("//price").unwrap());
        let stats = two_pass_sax_files(&input, &q, &output, LdStorage::Memory).unwrap();
        let got = std::fs::read_to_string(&output).unwrap();
        let d = Document::parse(doc_xml()).unwrap();
        assert_eq!(got, copy_update(&d, &q).serialize());
        assert!(stats.elements > 0);
        assert!(stats.max_depth >= 3);
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn stack_depth_bounded_by_document_depth() {
        // A wide, shallow document must not grow the stack.
        let mut xml = String::from("<db>");
        for i in 0..500 {
            xml.push_str(&format!("<p><v>{i}</v></p>"));
        }
        xml.push_str("</db>");
        let q = TransformQuery::delete("d", parse_path("//v[. = '7']").unwrap());
        let mut out = Vec::new();
        let stats = two_pass_sax(
            SaxParser::from_str(&xml),
            SaxParser::from_str(&xml),
            &q,
            &mut out,
            LdStorage::Memory,
        )
        .unwrap();
        assert_eq!(stats.max_depth, 3);
        let s = String::from_utf8(out).unwrap();
        assert!(!s.contains("<v>7</v>"));
        assert!(s.contains("<v>8</v>"));
    }

    #[test]
    fn text_and_attrs_preserved() {
        let xml = r#"<a k="v">pre<b x="1">t</b>post</a>"#;
        let q = TransformQuery::rename("d", parse_path("a/b").unwrap(), "c");
        let out = two_pass_sax_str(xml, &q).unwrap();
        assert_eq!(out, r#"<a k="v">pre<c x="1">t</c>post</a>"#);
    }

    #[test]
    fn malformed_input_errors() {
        let q = TransformQuery::delete("d", parse_path("//x").unwrap());
        assert!(two_pass_sax_str("<a><b></a>", &q).is_err());
    }

    #[test]
    fn replay_is_repeatable() {
        // One prepare, two replays — byte-identical outputs.
        let q = TransformQuery::delete("d", parse_path("//price").unwrap());
        let mut prepared =
            PreparedTransform::prepare(SaxParser::from_str(doc_xml()), &q, LdStorage::Memory)
                .unwrap();
        let mut out1 = Vec::new();
        let mut s1 = WriterSink::new(&mut out1);
        prepared
            .replay_into(SaxParser::from_str(doc_xml()), &mut s1)
            .unwrap();
        let mut out2 = Vec::new();
        let mut s2 = WriterSink::new(&mut out2);
        prepared
            .replay_into(SaxParser::from_str(doc_xml()), &mut s2)
            .unwrap();
        assert_eq!(out1, out2);
        assert!(!String::from_utf8(out1).unwrap().contains("price"));
    }

    fn stream_transform(xml: &str, q: &TransformQuery) -> Result<String, SaxTransformError> {
        let mut ts = TransformStream::new(q, LdStorage::Memory);
        let mut p = SaxParser::from_str(xml);
        while let Some(ev) = p.next_event()? {
            ts.feed(ev)?;
        }
        ts.begin_replay()?;
        let mut out = Vec::new();
        let mut sink = WriterSink::new(&mut out);
        let mut p = SaxParser::from_str(xml);
        while let Some(ev) = p.next_event()? {
            ts.replay(ev, &mut sink)?;
        }
        ts.finish(&mut sink)?;
        Ok(String::from_utf8(out).expect("writer produces UTF-8"))
    }

    #[test]
    fn push_stream_matches_pull_two_pass() {
        let e = Document::parse("<mark/>").unwrap();
        for p in [
            "//price",
            "//part[pname = 'keyboard']//part",
            "//supplier[price < 15]",
            "db/part[supplier/sname = 'IBM']/pname",
        ] {
            let path = parse_path(p).unwrap();
            for q in [
                TransformQuery::delete("d", path.clone()),
                TransformQuery::insert("d", path.clone(), e.clone()),
                TransformQuery::replace("d", path.clone(), e.clone()),
                TransformQuery::rename("d", path.clone(), "rn"),
            ] {
                let pull = two_pass_sax_str(doc_xml(), &q).unwrap();
                let push = stream_transform(doc_xml(), &q).unwrap();
                assert_eq!(push, pull, "push/pull disagree for {} {p}", q.op.kind());
            }
        }
    }

    #[test]
    fn push_stream_rejects_unbalanced_events() {
        let q = TransformQuery::delete("d", parse_path("//x").unwrap());
        // Orphan end tag.
        let mut ts = TransformStream::new(&q, LdStorage::Memory);
        assert!(ts.feed(SaxEvent::end("a")).is_err());
        // Truncated pass 1.
        let mut ts = TransformStream::new(&q, LdStorage::Memory);
        ts.feed(SaxEvent::start("a")).unwrap();
        assert!(ts.begin_replay().is_err());
        // Content after the root closed.
        let mut ts = TransformStream::new(&q, LdStorage::Memory);
        ts.feed(SaxEvent::start("a")).unwrap();
        ts.feed(SaxEvent::end("a")).unwrap();
        assert!(ts.feed(SaxEvent::start("b")).is_err());
        // Truncated pass 2.
        let mut ts = TransformStream::new(&q, LdStorage::Memory);
        ts.feed(SaxEvent::start("a")).unwrap();
        ts.feed(SaxEvent::end("a")).unwrap();
        ts.begin_replay().unwrap();
        let mut out = Vec::new();
        let mut sink = WriterSink::new(&mut out);
        ts.replay(SaxEvent::start("a"), &mut sink).unwrap();
        assert!(ts.finish(&mut sink).is_err());
    }

    #[test]
    fn push_stream_phase_discipline() {
        let q = TransformQuery::delete("d", parse_path("//x").unwrap());
        let mut ts = TransformStream::new(&q, LdStorage::Memory);
        let mut out = Vec::new();
        let mut sink = WriterSink::new(&mut out);
        // replay/finish before begin_replay are errors.
        assert!(ts.replay(SaxEvent::start("a"), &mut sink).is_err());
        assert!(ts.finish(&mut sink).is_err());
        ts.begin_replay().unwrap();
        // feed after begin_replay is an error; so is a second begin.
        assert!(ts.feed(SaxEvent::start("a")).is_err());
        assert!(ts.begin_replay().is_err());
        assert_eq!(ts.query().op.kind(), "delete");
    }

    #[test]
    fn path_selector_agrees_with_dom_eval() {
        // Feed the raw document through PathPrepass + PathSelector and
        // compare the selected labels with the DOM evaluator.
        for p in [
            "//part[pname = 'keyboard']",
            "db/part/supplier[price < 15]",
            "//part//part",
            "//supplier[not(sname = 'HP')]/price",
        ] {
            let path = parse_path(p).unwrap();
            let mut pre = PathPrepass::new(&path, LdStorage::Memory);
            let mut parser = SaxParser::from_str(doc_xml());
            let mut events = Vec::new();
            while let Some(ev) = parser.next_event().unwrap() {
                pre.feed(ev.clone());
                events.push(ev);
            }
            let prepared = pre.finish().unwrap();
            let mut sel = prepared.selector();
            let mut got = Vec::new();
            for ev in &events {
                match ev {
                    SaxEvent::StartElement { name, .. } if sel.start_element(*name) => {
                        got.push(name.as_str().to_string());
                    }
                    SaxEvent::StartElement { .. } => {}
                    SaxEvent::EndElement(_) => sel.end_element(),
                    _ => {}
                }
            }
            let d = Document::parse(doc_xml()).unwrap();
            let expect: Vec<String> = xust_xpath::eval_path_root(&d, &path)
                .into_iter()
                .map(|n| d.name(n).unwrap().to_string())
                .collect();
            assert_eq!(got, expect, "selector deviates on {p}");
        }
    }
}
