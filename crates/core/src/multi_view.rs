//! One-pass factorised evaluation of several transform views over one
//! document (the FDB-inspired "shared plan" — see DESIGN.md "Factorised
//! evaluation").
//!
//! [`multi_view`] takes the transform queries of all views registered
//! over one document, unions their selecting NFAs into a
//! [`SharedNfa`] (per-view accept tags, prefix-shared states), and walks
//! the document **once**, emitting every view's output tree
//! simultaneously. The walk is [`top_down`]'s recursion generalised to k
//! output arenas:
//!
//! * shared automaton steps — and shared *qualifiers*, the expensive
//!   part — are evaluated once per node instead of once per view;
//! * a view whose tag bit leaves the live state set is dead for the
//!   whole subtree: its private topDown would see an empty state set, so
//!   it deep-copies wholesale and drops out of the recursion;
//! * recursion stops when every view is dead — the union automaton's
//!   analogue of Fig. 3's subtree prune.
//!
//! Each result also carries the view's selected nodes (`r[[p]]` in the
//! source document, document order) so callers can feed
//! [`TouchedLabels::record`](crate::delta::TouchedLabels::record)
//! without a separate `eval_path_root` pass per view.
//!
//! ## Fallback
//!
//! Views the union cannot host run their private evaluator instead,
//! transparently: ε paths (no automaton to share — the update applies to
//! the root directly) fall back to [`top_down`], and a batch wider than
//! [`MAX_SHARED_VIEWS`] is chunked into several shared passes. The
//! returned [`MultiViewStats`] says how many passes ran and how many
//! views rode them — `xust-serve` surfaces those as the
//! `shared_passes` / `shared_pass_views` counters.

use xust_automata::{SharedNfa, StateSet, MAX_SHARED_VIEWS};
use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::{eval_path_root, eval_qualifier, Path};

use crate::query::{InsertPos, TransformQuery, UpdateOp};
use crate::topdown::top_down;

/// One view's output of a shared pass.
#[derive(Debug)]
pub struct SharedViewResult {
    /// The materialised view (what the view's own `top_down` returns).
    pub doc: Document,
    /// The view's selected nodes `r[[p]]` in the *source* document, in
    /// document order (what `eval_path_root` returns).
    pub targets: Vec<NodeId>,
}

/// How a [`multi_view`] call distributed its views over evaluators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiViewStats {
    /// Shared sweeps over the document (one per ≤ [`MAX_SHARED_VIEWS`]
    /// chunk of automaton-hosted views; 0 when everything fell back).
    pub passes: usize,
    /// Views evaluated by a shared sweep.
    pub shared_views: usize,
    /// Views that fell back to their private evaluator (ε paths).
    pub fallback_views: usize,
}

/// Evaluates every query's view of `doc` in (at most) one shared sweep,
/// returning results in query order. See the module docs for sharing and
/// fallback semantics; output trees are byte-identical to per-view
/// [`top_down`] / `two_pass` evaluation (fuzzed in `tests/shared_eval.rs`).
pub fn multi_view(doc: &Document, queries: &[&TransformQuery]) -> Vec<SharedViewResult> {
    multi_view_with_stats(doc, queries).0
}

/// [`multi_view`], also reporting how many shared passes ran and how the
/// views were distributed over them.
pub fn multi_view_with_stats(
    doc: &Document,
    queries: &[&TransformQuery],
) -> (Vec<SharedViewResult>, MultiViewStats) {
    let mut results: Vec<Option<SharedViewResult>> = (0..queries.len()).map(|_| None).collect();
    let mut stats = MultiViewStats {
        passes: 0,
        shared_views: 0,
        fallback_views: 0,
    };
    let shareable: Vec<usize> = (0..queries.len())
        .filter(|&i| !queries[i].path.is_empty())
        .collect();
    for chunk in shareable.chunks(MAX_SHARED_VIEWS) {
        let qs: Vec<&TransformQuery> = chunk.iter().map(|&i| queries[i]).collect();
        if let Some(outs) = shared_pass(doc, &qs) {
            stats.passes += 1;
            stats.shared_views += chunk.len();
            for (&i, out) in chunk.iter().zip(outs) {
                results[i] = Some(out);
            }
        }
    }
    let results = results
        .into_iter()
        .zip(queries)
        .map(|(r, q)| {
            r.unwrap_or_else(|| {
                stats.fallback_views += 1;
                SharedViewResult {
                    doc: top_down(doc, q),
                    targets: eval_path_root(doc, &q.path),
                }
            })
        })
        .collect();
    (results, stats)
}

/// Where a view's output for the current subtree goes.
#[derive(Debug, Clone, Copy)]
enum Sink {
    /// Produced node becomes the output document's root.
    Root,
    /// Produced nodes are appended to this output node.
    Under(NodeId),
    /// Nothing is produced below here: the view is either dead (its
    /// subtree was already deep-copied) or inside a deleted/replaced
    /// match (no output, but the automaton keeps running so nested
    /// `r[[p]]` members are still collected into `targets`).
    Off,
}

/// Per-view output state during the shared walk.
struct Slot<'a> {
    q: &'a TransformQuery,
    out: Document,
    targets: Vec<NodeId>,
}

/// Runs one shared sweep for ≤ [`MAX_SHARED_VIEWS`] non-ε queries;
/// `None` when the union automaton cannot be built.
fn shared_pass(src: &Document, queries: &[&TransformQuery]) -> Option<Vec<SharedViewResult>> {
    let paths: Vec<&Path> = queries.iter().map(|q| &q.path).collect();
    let nfa = SharedNfa::build(&paths)?;
    let mut mv = Mv {
        src,
        nfa: &nfa,
        slots: queries
            .iter()
            .map(|&q| Slot {
                q,
                out: Document::with_capacity(src.arena_len()),
                targets: Vec::new(),
            })
            .collect(),
    };
    if let Some(root) = src.root() {
        let sinks = vec![Sink::Root; queries.len()];
        mv.visit(root, &nfa.initial(), &sinks, true);
    }
    Some(
        mv.slots
            .into_iter()
            .map(|s| SharedViewResult {
                doc: s.out,
                targets: s.targets,
            })
            .collect(),
    )
}

struct Mv<'a> {
    src: &'a Document,
    nfa: &'a SharedNfa,
    slots: Vec<Slot<'a>>,
}

impl Mv<'_> {
    /// Transforms the subtree at `n` for every view at once, given the
    /// shared states `s` reached at `n`'s parent. The per-view branches
    /// mirror `topdown::Cx::{rec, process}` exactly — the fuzzer holds
    /// each projection byte-identical to the private run.
    fn visit(&mut self, n: NodeId, s: &StateSet, sinks: &[Sink], is_root: bool) {
        // Text nodes are never matched by X steps: copy through for
        // every view that is currently emitting.
        if let NodeKind::Text(t) = self.src.kind(n) {
            for (v, sink) in sinks.iter().enumerate() {
                if let Sink::Under(p) = *sink {
                    let copy = self.slots[v].out.create_text(t.clone());
                    self.slots[v].out.append_child(p, copy);
                }
            }
            return;
        }
        let label = self.src.name_sym(n).expect("non-text nodes are elements");
        let src = self.src;
        let s_next = self
            .nfa
            .next_states(s, label, |_, qual| eval_qualifier(src, n, qual));
        let accepts = self.nfa.accept_mask(&s_next);
        let alive = self.nfa.alive_mask(&s_next);
        // Selected nodes are recorded whatever the output mode — nested
        // matches inside a deleted/replaced subtree are still in r[[p]]
        // (mirroring eval_path_root, which serve's touched-label
        // recording is keyed on).
        for v in 0..sinks.len() {
            if accepts & (1u64 << v) != 0 {
                self.slots[v].targets.push(n);
            }
        }
        let mut child_sinks: Vec<Sink> = Vec::with_capacity(sinks.len());
        // Selected `insert … into` targets append their element *after*
        // the recursed children (Fig. 3 lines 7–8) — deferred here.
        let mut last_into: Vec<(usize, NodeId)> = Vec::new();
        for (v, &sink) in sinks.iter().enumerate() {
            let child = match sink {
                Sink::Off => Sink::Off,
                live_sink => {
                    if alive & (1u64 << v) == 0 {
                        // Dead view: its private automaton would have an
                        // empty state set — wholesale copy (Fig. 3
                        // lines 2–3) and drop out of the recursion.
                        let copy = self.slots[v].out.deep_copy_from(self.src, n);
                        self.attach(v, live_sink, copy);
                        Sink::Off
                    } else {
                        self.emit(
                            v,
                            n,
                            live_sink,
                            accepts & (1u64 << v) != 0,
                            is_root,
                            &mut last_into,
                        )
                    }
                }
            };
            child_sinks.push(child);
        }
        // Once every view is dead the union has nothing left to match or
        // emit below — the shared analogue of the subtree prune.
        if alive != 0 {
            // `src` is a copy of the `&'a Document` reference, so the
            // iteration does not hold a borrow of `self`.
            for c in src.children(n) {
                self.visit(c, &s_next, &child_sinks, false);
            }
        }
        for (v, node) in last_into {
            let q = self.slots[v].q;
            if let UpdateOp::Insert { elem, .. } = &q.op {
                if let Some(r) = elem.root() {
                    let copy = self.slots[v].out.deep_copy_from(elem, r);
                    self.slots[v].out.append_child(node, copy);
                }
            }
        }
    }

    /// Emits view `v`'s output for element `n` (automaton alive at `n`)
    /// and returns where its children go. One-view restatement of
    /// `topdown::Cx::process` plus `rec`'s sibling-insert wrap.
    fn emit(
        &mut self,
        v: usize,
        n: NodeId,
        sink: Sink,
        selected: bool,
        is_root: bool,
        last_into: &mut Vec<(usize, NodeId)>,
    ) -> Sink {
        let q = self.slots[v].q;
        if selected {
            match &q.op {
                UpdateOp::Delete => return Sink::Off,
                UpdateOp::Replace { elem } => {
                    if let Some(r) = elem.root() {
                        let copy = self.slots[v].out.deep_copy_from(elem, r);
                        self.attach(v, sink, copy);
                    }
                    return Sink::Off;
                }
                UpdateOp::Insert { .. } | UpdateOp::Rename { .. } => {}
            }
        }
        let name = match (selected, &q.op) {
            (true, UpdateOp::Rename { name }) => *name,
            _ => self.src.name_sym(n).expect("emit() is called on elements"),
        };
        let attrs = self.src.attrs(n).to_vec();
        let node = self.slots[v].out.create_element_with_attrs(name, attrs);
        // Sibling inserts wrap the produced node; a selected *root* has
        // no sibling position, so they are skipped there (as in
        // `top_down_prebuilt`, which routes the root around the wrap).
        if selected && !is_root {
            if let UpdateOp::Insert {
                elem,
                pos: InsertPos::Before,
            } = &q.op
            {
                if let Some(r) = elem.root() {
                    let copy = self.slots[v].out.deep_copy_from(elem, r);
                    self.attach(v, sink, copy);
                }
            }
        }
        self.attach(v, sink, node);
        if selected {
            match &q.op {
                UpdateOp::Insert {
                    elem,
                    pos: InsertPos::After,
                } if !is_root => {
                    if let Some(r) = elem.root() {
                        let copy = self.slots[v].out.deep_copy_from(elem, r);
                        self.attach(v, sink, copy);
                    }
                }
                UpdateOp::Insert {
                    elem,
                    pos: InsertPos::FirstInto,
                } => {
                    if let Some(r) = elem.root() {
                        let copy = self.slots[v].out.deep_copy_from(elem, r);
                        self.slots[v].out.append_child(node, copy);
                    }
                }
                UpdateOp::Insert {
                    pos: InsertPos::LastInto,
                    ..
                } => last_into.push((v, node)),
                _ => {}
            }
        }
        Sink::Under(node)
    }

    /// Lands a produced node at view `v`'s sink.
    fn attach(&mut self, v: usize, sink: Sink, node: NodeId) {
        match sink {
            Sink::Root => self.slots[v].out.set_root(node),
            Sink::Under(p) => self.slots[v].out.append_child(p, node),
            Sink::Off => unreachable!("attach() is never called with an Off sink"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>",
        )
        .unwrap()
    }

    fn elem() -> Document {
        Document::parse("<note><origin>shared</origin></note>").unwrap()
    }

    /// Every query in one shared batch must reproduce its private
    /// `top_down` output and its private `eval_path_root` target list.
    fn agree(queries: &[TransformQuery]) {
        let d = doc();
        let refs: Vec<&TransformQuery> = queries.iter().collect();
        let (results, _) = multi_view_with_stats(&d, &refs);
        assert_eq!(results.len(), queries.len());
        for (q, r) in queries.iter().zip(&results) {
            let private = top_down(&d, q);
            assert_eq!(
                r.doc.serialize(),
                private.serialize(),
                "shared output diverged for {:?} {}",
                q.op.kind(),
                q.path
            );
            assert_eq!(
                r.targets,
                eval_path_root(&d, &q.path),
                "shared targets diverged for {:?} {}",
                q.op.kind(),
                q.path
            );
        }
    }

    fn q(spec: &str, op: &str) -> TransformQuery {
        let path = parse_path(spec).unwrap();
        match op {
            "delete" => TransformQuery::delete("d", path),
            "replace" => TransformQuery::replace("d", path, elem()),
            "rename" => TransformQuery::rename("d", path, "renamed"),
            "insert" => TransformQuery::insert("d", path, elem()),
            "insert-first" => TransformQuery::insert_at("d", path, elem(), InsertPos::FirstInto),
            "insert-before" => TransformQuery::insert_at("d", path, elem(), InsertPos::Before),
            "insert-after" => TransformQuery::insert_at("d", path, elem(), InsertPos::After),
            other => panic!("unknown op {other}"),
        }
    }

    #[test]
    fn all_ops_share_one_pass() {
        let queries: Vec<TransformQuery> = [
            ("//price", "delete"),
            ("db/part/supplier", "replace"),
            ("//supplier", "rename"),
            ("//part[pname = 'keyboard']", "insert"),
            ("//part", "insert-first"),
            ("db/part", "insert-before"),
            ("db/part/supplier", "insert-after"),
        ]
        .iter()
        .map(|(p, op)| q(p, op))
        .collect();
        agree(&queries);
        let refs: Vec<&TransformQuery> = queries.iter().collect();
        let (_, stats) = multi_view_with_stats(&doc(), &refs);
        assert_eq!(
            stats,
            MultiViewStats {
                passes: 1,
                shared_views: 7,
                fallback_views: 0
            }
        );
    }

    #[test]
    fn dead_views_copy_wholesale_while_others_continue() {
        // View 0 dies immediately (no zzz), view 1 matches deep.
        agree(&[q("zzz/yyy", "delete"), q("//part[pname = 'key']", "rename")]);
    }

    #[test]
    fn root_matches_skip_sibling_inserts() {
        agree(&[
            q("//db", "insert-before"),
            q("//db", "insert-after"),
            q("//db", "insert-first"),
            q("//db", "insert"),
            q("db", "rename"),
        ]);
    }

    #[test]
    fn deleted_root_yields_empty_output() {
        agree(&[
            q("//db", "delete"),
            q("//db", "replace"),
            q("//price", "delete"),
        ]);
    }

    #[test]
    fn nested_matches_inside_deleted_subtrees_stay_in_targets() {
        // `//part` matches the nested part inside the deleted outer part;
        // the output drops both but targets must list both.
        let d = doc();
        let query = TransformQuery::delete("d", parse_path("//part").unwrap());
        let (results, _) = multi_view(&d, &[&query])
            .into_iter()
            .next()
            .map(|r| (r, ()))
            .unwrap();
        assert_eq!(results.targets, eval_path_root(&d, &query.path));
        assert_eq!(results.targets.len(), 3);
    }

    #[test]
    fn epsilon_paths_fall_back_per_view() {
        let d = doc();
        let eps = TransformQuery::rename("d", Path::empty(), "newroot");
        let normal = q("//price", "delete");
        let (results, stats) = multi_view_with_stats(&d, &[&eps, &normal]);
        assert_eq!(results[0].doc.serialize(), top_down(&d, &eps).serialize());
        assert_eq!(
            results[1].doc.serialize(),
            top_down(&d, &normal).serialize()
        );
        assert_eq!(results[0].targets, eval_path_root(&d, &eps.path));
        assert_eq!(
            stats,
            MultiViewStats {
                passes: 1,
                shared_views: 1,
                fallback_views: 1
            }
        );
    }

    #[test]
    fn wide_batches_chunk_into_multiple_passes() {
        let queries: Vec<TransformQuery> = (0..70).map(|_| q("//price", "delete")).collect();
        let refs: Vec<&TransformQuery> = queries.iter().collect();
        let (results, stats) = multi_view_with_stats(&doc(), &refs);
        assert_eq!(results.len(), 70);
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.shared_views, 70);
        let expected = top_down(&doc(), &queries[0]).serialize();
        for r in &results {
            assert_eq!(r.doc.serialize(), expected);
        }
    }

    #[test]
    fn empty_document_produces_empty_views() {
        let empty = Document::new();
        let query = q("//part", "delete");
        let (results, _) = multi_view_with_stats(&empty, &[&query]);
        assert_eq!(results[0].doc.root(), None);
        assert!(results[0].targets.is_empty());
    }

    #[test]
    fn text_under_selected_nodes_copies_through() {
        let d = Document::parse("<a>x<b/>y<c>t</c>z</a>").unwrap();
        let queries = [
            TransformQuery::delete("d", parse_path("a/b").unwrap()),
            TransformQuery::rename("d", parse_path("a/c").unwrap(), "k"),
        ];
        let refs: Vec<&TransformQuery> = queries.iter().collect();
        let (results, _) = multi_view_with_stats(&d, &refs);
        assert_eq!(results[0].doc.serialize(), "<a>xy<c>t</c>z</a>");
        assert_eq!(results[1].doc.serialize(), "<a>x<b/>y<k>t</k>z</a>");
    }
}
