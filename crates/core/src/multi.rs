//! Multi-update transform queries:
//!
//! ```text
//! transform copy $a := doc("T") modify do (u1, u2, …) return $a
//! ```
//!
//! The paper's conclusion defers "transform queries defined with more
//! involved updates [6, 14]" to future work; the XQuery Update Facility
//! draft it cites gives them **snapshot semantics**: every embedded
//! update's path is evaluated against the *original* copy (a pending
//! update list), and all effects are applied together. This module
//! implements that semantics two ways:
//!
//! * [`multi_snapshot`] — the reference plan: evaluate every `r[[pᵢ]]`
//!   with the direct XPath evaluator, merge the per-node effects, and
//!   rebuild the output in one walk. Always Ω(|T|).
//! * [`multi_top_down`] — the automaton plan: one traversal drives all k
//!   selecting NFAs side by side and applies the merged effects on the
//!   fly; a subtree is copied wholesale as soon as *every* automaton is
//!   dead (the Fig. 3 pruning, generalized to a product of automata).
//!
//! Snapshot semantics is *not* sequential application: `u2`'s path never
//! sees `u1`'s effects. Sequential chaining is available separately as
//! [`apply_chain`]; `examples/multi_update.rs` and the unit tests show a
//! query where the two disagree.
//!
//! ## Conflict rules (merged effects at one node)
//!
//! Following the spirit of the W3C draft's `upd:applyUpdates`:
//!
//! 1. **delete dominates**: a deleted node's own replace/rename/child
//!    inserts are void; its subtree vanishes.
//! 2. **replace beats rename and child inserts**: the node (label and
//!    children) is gone; the first replace in update order wins.
//! 3. **first rename wins** among renames.
//! 4. **child inserts accumulate** in update order (`as first` elements
//!    in order before the original children; `into` elements in order
//!    after them).
//! 5. **sibling inserts survive** delete/replace of their anchor (the
//!    position is still well-defined), in update order; they are void
//!    only when an *ancestor* is deleted or replaced, and at the root.

use std::collections::{HashMap, HashSet};

use xust_automata::{SelectingNfa, StateSet};
use xust_intern::Sym;
use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::{eval_path_root, eval_qualifier, Path};

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// A transform query with several embedded updates, applied with
/// snapshot semantics.
#[derive(Debug, Clone)]
pub struct MultiTransformQuery {
    /// Variable bound by `copy`.
    pub var: String,
    /// Document name inside `doc("…")`.
    pub doc_name: String,
    /// The embedded updates, in syntactic order.
    pub updates: Vec<(Path, UpdateOp)>,
}

impl MultiTransformQuery {
    /// Builds a multi-update transform from parts.
    pub fn new(doc_name: impl Into<String>, updates: Vec<(Path, UpdateOp)>) -> Self {
        MultiTransformQuery {
            var: "a".into(),
            doc_name: doc_name.into(),
            updates,
        }
    }

    /// Wraps a single-update transform query.
    pub fn from_single(q: TransformQuery) -> Self {
        MultiTransformQuery {
            var: q.var,
            doc_name: q.doc_name,
            updates: vec![(q.path, q.op)],
        }
    }
}

/// The merged effects planned for one node (conflict rules applied).
#[derive(Default)]
struct NodeActions<'a> {
    deleted: bool,
    /// Winning replacement element, if any.
    replace: Option<&'a Document>,
    /// Winning new label, if any.
    rename: Option<Sym>,
    ins_first: Vec<&'a Document>,
    ins_last: Vec<&'a Document>,
    ins_before: Vec<&'a Document>,
    ins_after: Vec<&'a Document>,
}

impl<'a> NodeActions<'a> {
    fn absorb(&mut self, op: &'a UpdateOp) {
        match op {
            UpdateOp::Delete => self.deleted = true,
            UpdateOp::Replace { elem } => {
                if self.replace.is_none() {
                    self.replace = Some(elem);
                }
            }
            UpdateOp::Rename { name } => {
                if self.rename.is_none() {
                    self.rename = Some(*name);
                }
            }
            UpdateOp::Insert { elem, pos } => match pos {
                InsertPos::FirstInto => self.ins_first.push(elem),
                InsertPos::LastInto => self.ins_last.push(elem),
                InsertPos::Before => self.ins_before.push(elem),
                InsertPos::After => self.ins_after.push(elem),
            },
        }
    }
}

/// Reference implementation: evaluate every path on the original tree,
/// merge effects per node, rebuild.
pub fn multi_snapshot(doc: &Document, q: &MultiTransformQuery) -> Document {
    let mut plan: HashMap<NodeId, NodeActions<'_>> = HashMap::new();
    for (path, op) in &q.updates {
        for target in eval_path_root(doc, path) {
            plan.entry(target).or_default().absorb(op);
        }
    }
    rebuild(doc, &mut |n| std::mem::take(plan.entry(n).or_default()))
}

/// Rebuilds `doc` applying the per-node actions returned by `actions`.
fn rebuild<'a>(doc: &Document, actions: &mut dyn FnMut(NodeId) -> NodeActions<'a>) -> Document {
    let mut out = Document::with_capacity(doc.arena_len());
    let Some(root) = doc.root() else {
        return out;
    };
    let produced = rebuild_rec(doc, &mut out, root, actions, true);
    if let Some(&r) = produced.first() {
        out.set_root(r);
    }
    out
}

fn rebuild_rec<'a>(
    src: &Document,
    out: &mut Document,
    n: NodeId,
    actions: &mut dyn FnMut(NodeId) -> NodeActions<'a>,
    is_root: bool,
) -> Vec<NodeId> {
    let (name, attrs) = match src.kind(n) {
        NodeKind::Text(t) => return vec![out.create_text(t.clone())],
        NodeKind::Element { name, attrs } => (*name, attrs.clone()),
    };
    let acts = actions(n);
    let mut produced: Vec<NodeId> = Vec::new();
    // Rule 5: sibling inserts are independent of the node's own fate.
    if !is_root {
        for e in &acts.ins_before {
            if let Some(r) = e.root() {
                produced.push(out.deep_copy_from(e, r));
            }
        }
    }
    if acts.deleted {
        // Rule 1.
    } else if let Some(e) = acts.replace {
        // Rule 2.
        if let Some(r) = e.root() {
            produced.push(out.deep_copy_from(e, r));
        }
    } else {
        let out_name = acts.rename.unwrap_or(name);
        let node = out.create_element_with_attrs(out_name, attrs);
        for e in &acts.ins_first {
            if let Some(r) = e.root() {
                let c = out.deep_copy_from(e, r);
                out.append_child(node, c);
            }
        }
        let children: Vec<NodeId> = src.children(n).collect();
        for c in children {
            for p in rebuild_rec(src, out, c, actions, false) {
                out.append_child(node, p);
            }
        }
        for e in &acts.ins_last {
            if let Some(r) = e.root() {
                let c = out.deep_copy_from(e, r);
                out.append_child(node, c);
            }
        }
        produced.push(node);
    }
    if !is_root {
        for e in &acts.ins_after {
            if let Some(r) = e.root() {
                produced.push(out.deep_copy_from(e, r));
            }
        }
    }
    produced
}

/// The automaton plan: drives the k selecting NFAs through one traversal
/// with product pruning, merging effects on the fly.
pub fn multi_top_down(doc: &Document, q: &MultiTransformQuery) -> Document {
    // ε paths (`$a` alone) select the root; handled via the generic plan
    // for uniformity (they defeat pruning anyway).
    let eps_ops: Vec<&UpdateOp> = q
        .updates
        .iter()
        .filter(|(p, _)| p.is_empty())
        .map(|(_, op)| op)
        .collect();
    let nfas: Vec<(SelectingNfa, &UpdateOp)> = q
        .updates
        .iter()
        .filter(|(p, _)| !p.is_empty())
        .map(|(p, op)| (SelectingNfa::new(p), op))
        .collect();
    let mut out = Document::with_capacity(doc.arena_len());
    let Some(root) = doc.root() else {
        return out;
    };
    let states: Vec<StateSet> = nfas.iter().map(|(nfa, _)| nfa.initial()).collect();
    let produced = multi_rec(doc, &mut out, root, &nfas, &eps_ops, &states, true);
    if let Some(&r) = produced.first() {
        out.set_root(r);
    }
    out
}

fn multi_rec<'a>(
    src: &Document,
    out: &mut Document,
    n: NodeId,
    nfas: &[(SelectingNfa, &'a UpdateOp)],
    eps_ops: &[&'a UpdateOp],
    states: &[StateSet],
    is_root: bool,
) -> Vec<NodeId> {
    let label = match src.kind(n) {
        NodeKind::Text(t) => return vec![out.create_text(t.clone())],
        NodeKind::Element { name, .. } => *name,
    };
    let mut next: Vec<StateSet> = Vec::with_capacity(nfas.len());
    let mut acts = NodeActions::default();
    if is_root {
        for op in eps_ops {
            acts.absorb(op);
        }
    }
    let mut any_alive = false;
    for ((nfa, op), s) in nfas.iter().zip(states) {
        let s_next = nfa.next_states(s, label, |_, qual| eval_qualifier(src, n, qual));
        if s_next.contains(nfa.final_state) {
            acts.absorb(op);
        }
        any_alive |= !s_next.is_empty();
        next.push(s_next);
    }
    // Product pruning: all automata dead and nothing planned here ⇒ the
    // subtree cannot be affected.
    if !any_alive
        && !acts.deleted
        && acts.replace.is_none()
        && acts.rename.is_none()
        && acts.ins_first.is_empty()
        && acts.ins_last.is_empty()
        && acts.ins_before.is_empty()
        && acts.ins_after.is_empty()
    {
        let copy = out.deep_copy_from(src, n);
        return vec![copy];
    }

    let mut produced: Vec<NodeId> = Vec::new();
    if !is_root {
        for e in &acts.ins_before {
            if let Some(r) = e.root() {
                produced.push(out.deep_copy_from(e, r));
            }
        }
    }
    if acts.deleted {
        // subtree vanishes
    } else if let Some(e) = acts.replace {
        if let Some(r) = e.root() {
            produced.push(out.deep_copy_from(e, r));
        }
    } else {
        let out_name = acts.rename.unwrap_or(label);
        let node = out.create_element_with_attrs(out_name, src.attrs(n).to_vec());
        for e in &acts.ins_first {
            if let Some(r) = e.root() {
                let c = out.deep_copy_from(e, r);
                out.append_child(node, c);
            }
        }
        let children: Vec<NodeId> = src.children(n).collect();
        for c in children {
            for p in multi_rec(src, out, c, nfas, eps_ops, &next, false) {
                out.append_child(node, p);
            }
        }
        for e in &acts.ins_last {
            if let Some(r) = e.root() {
                let c = out.deep_copy_from(e, r);
                out.append_child(node, c);
            }
        }
        produced.push(node);
    }
    if !is_root {
        for e in &acts.ins_after {
            if let Some(r) = e.root() {
                produced.push(out.deep_copy_from(e, r));
            }
        }
    }
    produced
}

// ---- the parallel multi-document executor ----

/// Counters from one [`parallel_map_stats`] run, for tests and the
/// serve layer's batch statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StealStats {
    /// Items processed.
    pub items: usize,
    /// Worker threads actually spawned.
    pub workers: usize,
    /// Times an idle worker stole work from another worker's queue.
    pub steals: u64,
}

/// Fans `items` across `threads` workers with per-worker deques and
/// work-stealing, calling `f(index, item)` exactly once per item.
/// Results come back **in item order** regardless of which worker ran
/// what. Uneven per-item cost is absorbed by stealing: a worker that
/// drains its own queue pops from the *back* of the busiest sibling's
/// queue, so one slow document never serializes the batch.
///
/// This is the multi-document executor behind `xust-serve`'s batched
/// entry point; it is generic so tests and benches can drive it with
/// plain closures.
pub fn parallel_map_stats<T, R, F>(items: Vec<T>, threads: usize, f: F) -> (Vec<R>, StealStats)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering}; // lint: atomic-ok (test-only counter)
    use std::sync::Mutex;

    let n = items.len();
    let workers = threads.max(1).min(n.max(1));
    if workers <= 1 {
        let out = items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
        return (
            out,
            StealStats {
                items: n,
                workers: 1,
                steals: 0,
            },
        );
    }

    // Every item sits in a claim slot: whoever pops its index (own queue
    // or steal) takes it exactly once.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    // Per-worker deques, seeded round-robin for locality.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
        .map(|w| Mutex::new((w..n).step_by(workers).collect()))
        .collect();
    let steals = AtomicU64::new(0);
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));

    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            let slots = &slots;
            let steals = &steals;
            let results = &results;
            let f = &f;
            scope.spawn(move || loop {
                // Own queue first (front: submission order)…
                let mut next = queues[w].lock().expect("queue lock poisoned").pop_front();
                if next.is_none() {
                    // …then steal from the back of a sibling's queue.
                    for v in 1..workers {
                        let victim = (w + v) % workers;
                        if let Some(i) = queues[victim]
                            .lock()
                            .expect("queue lock poisoned")
                            .pop_back()
                        {
                            steals.fetch_add(1, Ordering::Relaxed); // relaxed: monotone counter; no data published
                            next = Some(i);
                            break;
                        }
                    }
                }
                let Some(i) = next else { break };
                let Some(item) = slots[i].lock().expect("slot lock poisoned").take() else {
                    continue;
                };
                let r = f(i, item);
                results.lock().expect("results lock poisoned").push((i, r));
            });
        }
    });

    let mut pairs = results.into_inner().expect("results lock poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    (
        pairs.into_iter().map(|(_, r)| r).collect(),
        StealStats {
            items: n,
            workers,
            steals: steals.load(Ordering::Relaxed), // relaxed: point-in-time read; staleness is fine
        },
    )
}

/// [`parallel_map_stats`] without the counters.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    parallel_map_stats(items, threads, f).0
}

/// Evaluates one multi-update transform over a batch of documents in
/// parallel (work-stealing, results in input order). Each document gets
/// its own automaton run; the `MultiTransformQuery` is shared read-only.
pub fn multi_top_down_batch(
    docs: &[&Document],
    q: &MultiTransformQuery,
    threads: usize,
) -> Vec<Document> {
    parallel_map(docs.to_vec(), threads, |_, doc| multi_top_down(doc, q))
}

/// Sequential chaining: applies each single-update transform to the
/// *result* of the previous one (`uᵢ₊₁` sees `uᵢ`'s effects) — the other
/// reasonable reading of a compound modify clause, provided for contrast
/// and for building pipelines of transforms.
pub fn apply_chain(doc: &Document, chain: &[TransformQuery]) -> Document {
    let mut cur = doc.clone();
    for q in chain {
        cur = crate::topdown::top_down(&cur, q);
    }
    cur
}

/// Parses the multi-update transform syntax. A single un-parenthesized
/// update is accepted too, so this is a strict superset of
/// [`crate::parse_transform`].
pub fn parse_multi_transform(
    input: &str,
) -> Result<MultiTransformQuery, crate::query::TransformParseError> {
    crate::query::parse_multi(input)
}

/// Node-set overlap report: which nodes are targeted by more than one of
/// the embedded updates (useful to audit conflict-rule reliance).
pub fn conflicting_targets(doc: &Document, q: &MultiTransformQuery) -> Vec<NodeId> {
    let mut seen: HashSet<NodeId> = HashSet::new();
    let mut dup: HashSet<NodeId> = HashSet::new();
    for (path, _) in &q.updates {
        // Within one update, targets are already a set.
        for t in eval_path_root(doc, path) {
            if !seen.insert(t) {
                dup.insert(t);
            }
        }
    }
    let mut v: Vec<NodeId> = dup.into_iter().collect();
    v.sort_by(|&a, &b| doc.doc_order_cmp(a, b));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_transform;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    fn elem(s: &str) -> Document {
        Document::parse(s).unwrap()
    }

    fn q(updates: Vec<(&str, UpdateOp)>) -> MultiTransformQuery {
        MultiTransformQuery::new(
            "d",
            updates
                .into_iter()
                .map(|(p, op)| (parse_path(p).unwrap(), op))
                .collect(),
        )
    }

    fn agree(doc: &str, mq: &MultiTransformQuery) -> String {
        let d = Document::parse(doc).unwrap();
        let a = multi_snapshot(&d, mq);
        let b = multi_top_down(&d, mq);
        assert!(
            docs_eq(&a, &b),
            "plans disagree on {doc}:\nsnapshot: {}\nautomata: {}",
            a.serialize(),
            b.serialize()
        );
        a.serialize()
    }

    #[test]
    fn independent_updates() {
        let mq = q(vec![
            ("//price", UpdateOp::Delete),
            (
                "//part",
                UpdateOp::Insert {
                    elem: elem("<ok/>"),
                    pos: InsertPos::LastInto,
                },
            ),
        ]);
        let out = agree("<db><part><price>1</price></part><part/></db>", &mq);
        assert_eq!(out, "<db><part><ok/></part><part><ok/></part></db>");
    }

    #[test]
    fn delete_dominates_other_ops_on_same_node() {
        let mq = q(vec![
            ("//x", UpdateOp::Rename { name: "y".into() }),
            ("//x", UpdateOp::Delete),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<c/>"),
                    pos: InsertPos::FirstInto,
                },
            ),
        ]);
        let out = agree("<db><x>t</x><z/></db>", &mq);
        assert_eq!(out, "<db><z/></db>");
    }

    #[test]
    fn first_replace_wins_and_beats_rename() {
        let mq = q(vec![
            ("//x", UpdateOp::Rename { name: "y".into() }),
            (
                "//x",
                UpdateOp::Replace {
                    elem: elem("<one/>"),
                },
            ),
            (
                "//x",
                UpdateOp::Replace {
                    elem: elem("<two/>"),
                },
            ),
        ]);
        let out = agree("<db><x/></db>", &mq);
        assert_eq!(out, "<db><one/></db>");
    }

    #[test]
    fn first_rename_wins() {
        let mq = q(vec![
            ("//x", UpdateOp::Rename { name: "a".into() }),
            ("//x", UpdateOp::Rename { name: "b".into() }),
        ]);
        assert_eq!(agree("<db><x/></db>", &mq), "<db><a/></db>");
    }

    #[test]
    fn child_inserts_accumulate_in_update_order() {
        let mq = q(vec![
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<l1/>"),
                    pos: InsertPos::LastInto,
                },
            ),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<f1/>"),
                    pos: InsertPos::FirstInto,
                },
            ),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<l2/>"),
                    pos: InsertPos::LastInto,
                },
            ),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<f2/>"),
                    pos: InsertPos::FirstInto,
                },
            ),
        ]);
        let out = agree("<db><x><mid/></x></db>", &mq);
        assert_eq!(out, "<db><x><f1/><f2/><mid/><l1/><l2/></x></db>");
    }

    #[test]
    fn sibling_inserts_survive_delete_and_replace() {
        let mq = q(vec![
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<b/>"),
                    pos: InsertPos::Before,
                },
            ),
            ("//x", UpdateOp::Delete),
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<a/>"),
                    pos: InsertPos::After,
                },
            ),
        ]);
        assert_eq!(agree("<db><x/><z/></db>", &mq), "<db><b/><a/><z/></db>");

        let mq = q(vec![
            (
                "//x",
                UpdateOp::Insert {
                    elem: elem("<b/>"),
                    pos: InsertPos::Before,
                },
            ),
            ("//x", UpdateOp::Replace { elem: elem("<r/>") }),
        ]);
        assert_eq!(agree("<db><x/></db>", &mq), "<db><b/><r/></db>");
    }

    #[test]
    fn updates_under_deleted_ancestor_are_void() {
        let mq = q(vec![
            ("//sub", UpdateOp::Rename { name: "n".into() }),
            ("//top", UpdateOp::Delete),
        ]);
        assert_eq!(
            agree("<db><top><sub/></top><keep/></db>", &mq),
            "<db><keep/></db>"
        );
    }

    #[test]
    fn snapshot_differs_from_chaining() {
        // u1 renames x→y; u2 deletes y. Snapshot: u2's path sees no y in
        // the *original*, so the renamed node survives as y. Chained: u2
        // sees u1's result and deletes it.
        let d = Document::parse("<db><x/></db>").unwrap();
        let mq = q(vec![
            ("//x", UpdateOp::Rename { name: "y".into() }),
            ("//y", UpdateOp::Delete),
        ]);
        assert_eq!(agree("<db><x/></db>", &mq), "<db><y/></db>");
        let chain = [
            TransformQuery::rename("d", parse_path("//x").unwrap(), "y"),
            TransformQuery::delete("d", parse_path("//y").unwrap()),
        ];
        assert_eq!(apply_chain(&d, &chain).serialize(), "<db/>");
    }

    #[test]
    fn root_sibling_inserts_skipped() {
        let mq = q(vec![(
            "//db",
            UpdateOp::Insert {
                elem: elem("<s/>"),
                pos: InsertPos::After,
            },
        )]);
        assert_eq!(agree("<db><x/></db>", &mq), "<db><x/></db>");
    }

    #[test]
    fn epsilon_path_targets_root() {
        let mq = MultiTransformQuery::new(
            "d",
            vec![
                (Path::empty(), UpdateOp::Rename { name: "r2".into() }),
                (parse_path("//x").unwrap(), UpdateOp::Delete),
            ],
        );
        assert_eq!(agree("<db><x/><y/></db>", &mq), "<r2><y/></r2>");
    }

    #[test]
    fn from_single_matches_top_down() {
        let single =
            parse_transform(r#"transform copy $a := doc("d") modify do delete $a//x return $a"#)
                .unwrap();
        let d = Document::parse("<db><x/><y><x/></y></db>").unwrap();
        let expect = crate::topdown::top_down(&d, &single);
        let got = multi_top_down(&d, &MultiTransformQuery::from_single(single));
        assert!(docs_eq(&expect, &got));
    }

    #[test]
    fn conflicting_targets_report() {
        let d = Document::parse("<db><x/><y/></db>").unwrap();
        let mq = q(vec![
            ("//x", UpdateOp::Delete),
            ("db/*", UpdateOp::Rename { name: "n".into() }),
        ]);
        let dups = conflicting_targets(&d, &mq);
        assert_eq!(dups.len(), 1);
        assert_eq!(d.name(dups[0]), Some("x"));
    }

    #[test]
    fn parallel_map_preserves_order_and_runs_everything() {
        let items: Vec<usize> = (0..257).collect();
        let (out, stats) = parallel_map_stats(items, 4, |i, v| {
            assert_eq!(i, v);
            v * 3
        });
        assert_eq!(out.len(), 257);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i * 3));
        assert_eq!(stats.items, 257);
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn parallel_map_steals_under_skew() {
        // Worker 0's queue gets all the slow items (indices 0, 4, 8, …
        // under round-robin seeding with 4 workers); the others finish
        // instantly and must steal to keep the batch moving.
        let items: Vec<usize> = (0..64).collect();
        let (out, stats) = parallel_map_stats(items, 4, |i, v| {
            if i % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            v
        });
        assert_eq!(out.len(), 64);
        assert!(
            stats.steals > 0,
            "idle workers must steal from the skewed queue: {stats:?}"
        );
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        let (out, stats) = parallel_map_stats(vec![1, 2, 3], 1, |_, v| v + 1);
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.workers, 1);
        let (out, _) = parallel_map_stats(Vec::<u8>::new(), 8, |_, v| v);
        assert!(out.is_empty());
    }

    #[test]
    fn batch_matches_sequential_per_document() {
        let mq = q(vec![
            ("//price", UpdateOp::Delete),
            (
                "//part",
                UpdateOp::Rename {
                    name: "item".into(),
                },
            ),
        ]);
        let docs: Vec<Document> = (0..9)
            .map(|i| {
                let mut xml = String::from("<db>");
                for j in 0..=i {
                    xml.push_str(&format!("<part><price>{j}</price></part>"));
                }
                xml.push_str("</db>");
                Document::parse(&xml).unwrap()
            })
            .collect();
        let refs: Vec<&Document> = docs.iter().collect();
        let batch = multi_top_down_batch(&refs, &mq, 4);
        assert_eq!(batch.len(), docs.len());
        for (i, d) in docs.iter().enumerate() {
            assert!(
                docs_eq(&batch[i], &multi_top_down(d, &mq)),
                "batch slot {i} deviates from sequential evaluation"
            );
        }
    }

    #[test]
    fn empty_update_list_is_identity() {
        let d = Document::parse("<db><x/></db>").unwrap();
        let mq = MultiTransformQuery::new("d", vec![]);
        assert!(docs_eq(&multi_snapshot(&d, &mq), &d));
        assert!(docs_eq(&multi_top_down(&d, &mq), &d));
    }
}
