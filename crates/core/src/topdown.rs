//! Algorithm `topDown` (Fig. 3) — the Top Down Method of Section 3.3.
//!
//! A single recursive pass drives the selecting NFA over the input tree
//! and produces the transformed output as it goes:
//!
//! * empty state set → the subtree cannot be affected, copy it wholesale
//!   (Fig. 3 lines 2–3 — the pruning that lets topDown touch only the
//!   necessary part of `T`);
//! * final state present (with its qualifier satisfied) → the node is in
//!   `r[[p]]`, apply the update action;
//! * otherwise recurse into children with the new state set.
//!
//! The qualifier oracle `checkp` is a parameter: the **GENTOP** variant
//! passes native XPath evaluation (`xust_xpath::eval_qualifier`), the
//! **TD-BU**/twoPass variant passes an O(1) lookup into the `bottomUp`
//! annotations (Section 5).

use xust_automata::{SelectingNfa, StateSet};
use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::{eval_qualifier, Qualifier};

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// The `checkp(q, n)` oracle: decides whether the qualifier of path step
/// `step` holds at node `n`.
pub type CheckP<'a> = dyn FnMut(&Document, NodeId, usize, &Qualifier) -> bool + 'a;

/// Evaluates `Qt(T)` with the Top Down Method and native qualifier
/// evaluation — the experiments' **GENTOP**.
pub fn top_down(doc: &Document, q: &TransformQuery) -> Document {
    top_down_with(doc, q, &mut |d, n, _step, qual| eval_qualifier(d, n, qual))
}

/// GENTOP with the empty-state-set subtree pruning (Fig. 3 lines 2–3)
/// disabled — every node is visited and rebuilt even when the automaton
/// is dead. Exists only for the `ablation_pruning` bench, which
/// quantifies how much of topDown's win comes from pruning.
pub fn top_down_no_prune(doc: &Document, q: &TransformQuery) -> Document {
    let mut out = Document::with_capacity(doc.arena_len());
    let Some(root) = doc.root() else {
        return out;
    };
    if q.path.is_empty() {
        return top_down(doc, q);
    }
    let nfa = SelectingNfa::new(&q.path);
    fn rec(
        src: &Document,
        out: &mut Document,
        nfa: &SelectingNfa,
        op: &UpdateOp,
        n: NodeId,
        s: &StateSet,
        is_root: bool,
    ) -> Vec<NodeId> {
        let label = match src.kind(n) {
            NodeKind::Text(t) => return vec![out.create_text(t.clone())],
            NodeKind::Element { name, .. } => *name,
        };
        let s_next = nfa.next_states(s, label, |_, qual| eval_qualifier(src, n, qual));
        let selected = s_next.contains(nfa.final_state);
        if selected {
            match op {
                UpdateOp::Delete => return Vec::new(),
                UpdateOp::Replace { elem } => {
                    return match elem.root() {
                        Some(r) => vec![out.deep_copy_from(elem, r)],
                        None => Vec::new(),
                    }
                }
                _ => {}
            }
        }
        let name = match (selected, op) {
            (true, UpdateOp::Rename { name }) => *name,
            _ => label,
        };
        let node = out.create_element_with_attrs(name, src.attrs(n).to_vec());
        if selected {
            if let UpdateOp::Insert {
                elem,
                pos: InsertPos::FirstInto,
            } = op
            {
                if let Some(r) = elem.root() {
                    let copy = out.deep_copy_from(elem, r);
                    out.append_child(node, copy);
                }
            }
        }
        let children: Vec<NodeId> = src.children(n).collect();
        for c in children {
            // No pruning: recurse even on empty state sets.
            for p in rec(src, out, nfa, op, c, &s_next, false) {
                out.append_child(node, p);
            }
        }
        if selected {
            if let UpdateOp::Insert {
                elem,
                pos: InsertPos::LastInto,
            } = op
            {
                if let Some(r) = elem.root() {
                    let copy = out.deep_copy_from(elem, r);
                    out.append_child(node, copy);
                }
            }
        }
        if selected && !is_root {
            if let UpdateOp::Insert { elem, pos } = op {
                if pos.is_sibling() {
                    if let Some(r) = elem.root() {
                        let copy = out.deep_copy_from(elem, r);
                        return match pos {
                            InsertPos::Before => vec![copy, node],
                            InsertPos::After => vec![node, copy],
                            _ => unreachable!(),
                        };
                    }
                }
            }
        }
        vec![node]
    }
    let produced = rec(doc, &mut out, &nfa, &q.op, root, &nfa.initial(), true);
    if let Some(&r) = produced.first() {
        out.set_root(r);
    }
    out
}

/// Evaluates `Qt(T)` with a caller-supplied `checkp` oracle.
pub fn top_down_with(doc: &Document, q: &TransformQuery, check: &mut CheckP<'_>) -> Document {
    let nfa = SelectingNfa::new(&q.path);
    top_down_prebuilt(doc, q, &nfa, check)
}

/// [`top_down_with`] over a pre-compiled selecting NFA, so callers that
/// evaluate the same query repeatedly (the prepared-query cache in
/// `xust-serve`) skip automaton construction entirely. `nfa` must have
/// been built from `q.path`.
pub fn top_down_prebuilt(
    doc: &Document,
    q: &TransformQuery,
    nfa: &SelectingNfa,
    check: &mut CheckP<'_>,
) -> Document {
    let mut out = Document::with_capacity(doc.arena_len());
    let Some(root) = doc.root() else {
        return out;
    };
    // ε path: r[[ε]] = {root} — the automaton has nothing to consume, so
    // the update applies to the root directly.
    if q.path.is_empty() {
        match &q.op {
            UpdateOp::Delete => return out,
            UpdateOp::Replace { elem } => {
                if let Some(e_root) = elem.root() {
                    let copy = out.deep_copy_from(elem, e_root);
                    out.set_root(copy);
                }
                return out;
            }
            UpdateOp::Rename { name } => {
                let copy = out.deep_copy_from(doc, root);
                out.rename(copy, *name);
                out.set_root(copy);
                return out;
            }
            UpdateOp::Insert { elem, pos } => {
                let copy = out.deep_copy_from(doc, root);
                // Sibling positions are undefined at the root — skip.
                if !pos.is_sibling() {
                    if let Some(e_root) = elem.root() {
                        let e_copy = out.deep_copy_from(elem, e_root);
                        match pos {
                            InsertPos::LastInto => out.append_child(copy, e_copy),
                            InsertPos::FirstInto => out.prepend_child(copy, e_copy),
                            InsertPos::Before | InsertPos::After => unreachable!(),
                        }
                    }
                }
                out.set_root(copy);
                return out;
            }
        }
    }
    let init = nfa.initial();
    // The root is handled outside `rec` so that sibling inserts (`before`
    // / `after`) on a selected root are skipped: a document has exactly
    // one root, so there is no position to put the sibling.
    let root_label = doc.name_sym(root).expect("root is an element");
    let s_next = nfa.next_states(&init, root_label, |step, qual| check(doc, root, step, qual));
    if s_next.is_empty() {
        let copy = out.deep_copy_from(doc, root);
        out.set_root(copy);
        return out;
    }
    let mut cx = Cx {
        src: doc,
        out: &mut out,
        nfa,
        op: &q.op,
        check,
    };
    let produced = cx.process(root, &s_next);
    debug_assert!(produced.len() <= 1, "root produces at most one node");
    if let Some(&new_root) = produced.first() {
        out.set_root(new_root);
    }
    out
}

struct Cx<'a, 'c> {
    src: &'a Document,
    out: &'a mut Document,
    nfa: &'a SelectingNfa,
    op: &'a UpdateOp,
    check: &'a mut CheckP<'c>,
}

impl Cx<'_, '_> {
    /// Transforms the subtree rooted at `n`, given the states `s` reached
    /// at `n`'s *parent*. Returns the produced node(s): none for a
    /// deleted node, one otherwise.
    fn rec(&mut self, n: NodeId, s: &StateSet) -> Vec<NodeId> {
        // Text nodes are never matched by X steps: copy through.
        let label = match self.src.kind(n) {
            NodeKind::Text(t) => {
                let copy = self.out.create_text(t.clone());
                return vec![copy];
            }
            NodeKind::Element { name, .. } => *name,
        };
        let src = self.src;
        let check = &mut *self.check;
        let s_next = self
            .nfa
            .next_states(s, label, |step, qual| check(src, n, step, qual));

        // Fig. 3 lines 2–3: unaffected subtree — copy unchanged.
        if s_next.is_empty() {
            let copy = self.out.deep_copy_from(self.src, n);
            return vec![copy];
        }
        let mut produced = self.process(n, &s_next);
        // Sibling inserts: `process` is sibling-free (composition resumes
        // it mid-tree where the siblings belong to the caller), so wrap
        // the produced node here.
        if let UpdateOp::Insert { elem, pos } = self.op {
            if pos.is_sibling() && s_next.contains(self.nfa.final_state) {
                if let Some(e_root) = elem.root() {
                    let e_copy = self.out.deep_copy_from(elem, e_root);
                    match pos {
                        InsertPos::Before => produced.insert(0, e_copy),
                        InsertPos::After => produced.push(e_copy),
                        _ => unreachable!(),
                    }
                }
            }
        }
        produced
    }

    /// The post-transition body of `rec`: transforms `n` given the states
    /// already reached *at* `n`. Exposed (via [`top_down_subtree`]) for the
    /// composition algorithm, whose inlined `topDown(Mp, S, Qt, $z)` calls
    /// resume the automaton mid-document with a compile-time state set.
    fn process(&mut self, n: NodeId, s_next: &StateSet) -> Vec<NodeId> {
        let selected = s_next.contains(self.nfa.final_state);
        if selected {
            match self.op {
                UpdateOp::Delete => return Vec::new(),
                UpdateOp::Replace { elem } => {
                    let Some(e_root) = elem.root() else {
                        return Vec::new();
                    };
                    let copy = self.out.deep_copy_from(elem, e_root);
                    return vec![copy];
                }
                UpdateOp::Insert { .. } | UpdateOp::Rename { .. } => {
                    // fall through: children still processed (nested
                    // matches inside a selected node must be handled).
                }
            }
        }

        let out_name = match (selected, self.op) {
            (true, UpdateOp::Rename { name }) => *name,
            _ => self
                .src
                .name_sym(n)
                .expect("process() is called on elements"),
        };
        let attrs = self.src.attrs(n).to_vec();
        let new_node = self.out.create_element_with_attrs(out_name, attrs);
        if selected {
            if let UpdateOp::Insert {
                elem,
                pos: InsertPos::FirstInto,
            } = self.op
            {
                if let Some(e_root) = elem.root() {
                    let copy = self.out.deep_copy_from(elem, e_root);
                    self.out.append_child(new_node, copy);
                }
            }
        }
        let children: Vec<NodeId> = self.src.children(n).collect();
        for c in children {
            for produced in self.rec(c, s_next) {
                self.out.append_child(new_node, produced);
            }
        }
        if selected {
            if let UpdateOp::Insert {
                elem,
                pos: InsertPos::LastInto,
            } = self.op
            {
                if let Some(e_root) = elem.root() {
                    // Fig. 3 lines 7–8: add e as the last child.
                    let copy = self.out.deep_copy_from(elem, e_root);
                    self.out.append_child(new_node, copy);
                }
            }
        }
        vec![new_node]
    }
}

/// Entry point for composition (Section 4): transforms the subtree rooted
/// at `node`, where `states` are the selecting-NFA states already reached
/// *at* `node` (after consuming its label on the path from the root).
/// Returns a document holding zero or one produced roots.
pub fn top_down_subtree(
    src: &Document,
    node: NodeId,
    nfa: &SelectingNfa,
    states: &StateSet,
    q: &TransformQuery,
) -> Document {
    let mut out = Document::new();
    if states.is_empty() {
        let copy = out.deep_copy_from(src, node);
        out.set_root(copy);
        return out;
    }
    let mut check: Box<CheckP<'_>> = Box::new(|d, n, _step, qual| eval_qualifier(d, n, qual));
    let mut cx = Cx {
        src,
        out: &mut out,
        nfa,
        op: &q.op,
        check: &mut check,
    };
    let produced = cx.process(node, states);
    if let Some(&r) = produced.first() {
        out.set_root(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_update::copy_update;
    use xust_tree::docs_eq;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price></supplier><part><pname>key</pname></part></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price></supplier></part></db>",
        )
        .unwrap()
    }

    fn agree(q: &TransformQuery) {
        let d = doc();
        let expected = copy_update(&d, q);
        let got = top_down(&d, q);
        assert!(
            docs_eq(&expected, &got),
            "topDown disagrees with copy-update\nexpected: {}\ngot:      {}",
            expected.serialize(),
            got.serialize()
        );
    }

    #[test]
    fn delete_matches_baseline() {
        agree(&TransformQuery::delete("d", parse_path("//price").unwrap()));
        agree(&TransformQuery::delete(
            "d",
            parse_path("db/part/supplier").unwrap(),
        ));
        agree(&TransformQuery::delete(
            "d",
            parse_path("//part[pname = 'keyboard']//part").unwrap(),
        ));
    }

    #[test]
    fn insert_matches_baseline() {
        let e = Document::parse("<supplier><sname>New</sname></supplier>").unwrap();
        agree(&TransformQuery::insert(
            "d",
            parse_path("//part[pname = 'keyboard']").unwrap(),
            e.clone(),
        ));
        agree(&TransformQuery::insert(
            "d",
            parse_path("//part").unwrap(),
            e,
        ));
    }

    #[test]
    fn replace_matches_baseline() {
        let e = Document::parse("<hidden/>").unwrap();
        agree(&TransformQuery::replace(
            "d",
            parse_path("//supplier[price < 15]").unwrap(),
            e,
        ));
    }

    #[test]
    fn rename_matches_baseline() {
        agree(&TransformQuery::rename(
            "d",
            parse_path("//supplier").unwrap(),
            "vendor",
        ));
    }

    #[test]
    fn qualifier_checked_at_correct_node() {
        // Example 3.1's p1: the nested part under keyboard qualifies (no
        // supplier at all ⇒ both negations hold).
        let q = TransformQuery::insert(
            "d",
            parse_path(
                "//part[pname = 'keyboard']//part[not(supplier/sname = 'HP') and not(supplier/price < 15)]",
            )
            .unwrap(),
            Document::parse("<supplier><sname>HP</sname></supplier>").unwrap(),
        );
        agree(&q);
        let out = top_down(&doc(), &q);
        let s = out.serialize();
        // exactly one insertion: under the nested part
        assert_eq!(s.matches("<sname>HP</sname></supplier></part>").count(), 1);
    }

    #[test]
    fn delete_root() {
        let q = TransformQuery::delete("d", parse_path("//db").unwrap());
        let out = top_down(&doc(), &q);
        assert_eq!(out.root(), None);
    }

    #[test]
    fn empty_document() {
        let q = TransformQuery::delete("d", parse_path("//x").unwrap());
        let out = top_down(&Document::new(), &q);
        assert_eq!(out.root(), None);
    }

    #[test]
    fn unmatched_path_is_identity() {
        let d = doc();
        let q = TransformQuery::delete("d", parse_path("zzz/yyy").unwrap());
        let out = top_down(&d, &q);
        assert!(docs_eq(&d, &out));
    }

    #[test]
    fn text_preserved_in_mixed_content() {
        let d = Document::parse("<a>x<b/>y<c/>z</a>").unwrap();
        let q = TransformQuery::delete("d", parse_path("a/b").unwrap());
        let out = top_down(&d, &q);
        assert_eq!(out.serialize(), "<a>xy<c/>z</a>");
    }

    #[test]
    fn oracle_call_sites() {
        // The check oracle must be consulted exactly for candidate steps
        // with qualifiers, at the right nodes.
        let d = doc();
        let q = TransformQuery::delete(
            "d",
            parse_path("db/part[pname = 'mouse']/supplier").unwrap(),
        );
        let mut consulted = Vec::new();
        let out = top_down_with(&d, &q, &mut |doc, n, step, qual| {
            consulted.push((doc.name(n).unwrap().to_string(), step));
            eval_qualifier(doc, n, qual)
        });
        // qualifier on step 1 (part) checked at each top-level part
        assert_eq!(
            consulted,
            vec![("part".to_string(), 1), ("part".to_string(), 1)]
        );
        assert!(out.serialize().contains("keyboard"));
        assert!(!out.serialize().contains("IBM"));
    }
}
