//! Provenance-annotated fragment trees and in-place result patching —
//! the third maintenance fate between "retain" and "recompute".
//!
//! A materialized view result is a function of the base document: every
//! result subtree was produced by `topDown`'s recursion over exactly one
//! base subtree, carrying a selecting-NFA state set into it. A
//! [`FragmentTree`] records that provenance — which base node (`src`)
//! produced which result nodes (`dst`), and the automaton states that
//! were live *before* consuming the base node's label — for a spine of
//! large subtrees, leaving small subtrees as opaque leaves.
//!
//! When a later update touches the base document, the write path can
//! **localize** the update's target set against the provenance map
//! ([`FragmentTree::localize`]): walk each target's ancestor-or-self
//! chain to the deepest recorded fragment, re-run the view *only under
//! those base subtrees* with the stored state sets
//! ([`FragmentTree::patch`]), and splice the freshly produced result
//! nodes over the stale ones. Everything outside the chosen fragments is
//! untouched — including its memoized serialization bytes, so a patched
//! result re-serializes only the changed fragments
//! ([`FragmentTree::assemble`]).
//!
//! Soundness of splicing only under the chosen fragments rests on two
//! observations, both enforced by the caller (`xust-serve`):
//!
//! * the automaton state reached at a node depends only on the labels
//!   and qualifier verdicts along its root path. An update changes
//!   labels only inside the chosen fragments, so stored state sets at
//!   surviving fragments remain valid;
//! * qualifier *truth* can flip only at ancestors-or-self of the
//!   update's targets (string values propagate upward). Every such
//!   ancestor's label is in the update's guard set, so the caller
//!   requires `guard ∩ view qualifier-anchor alphabet = ∅` (see
//!   [`crate::delta::qualifier_anchor_alphabet_into`]) before patching.
//!
//! Construction is conservative: any shape the alignment model does not
//! cover exactly (selected root, ε path, consumption mismatch) yields no
//! tree, and the entry simply behaves as before (flat body, retain or
//! recompute). Differential fuzzers in `tests/update_maintenance.rs`
//! hold patched entries byte-identical to full recompute.

use std::collections::{HashMap, HashSet};

use xust_automata::{SelectingNfa, StateSet};
use xust_tree::{Document, NodeId, NodeKind};
use xust_xpath::eval_qualifier;

use crate::query::{InsertPos, TransformQuery, UpdateOp};

/// Upper bound on direct child fragments of one interior fragment: a
/// node with more children than this stays a leaf (index size and
/// alignment cost stay bounded on pathologically wide documents).
pub const MAX_CHILD_FRAGS: usize = 1024;

/// One provenance fragment: the base subtree at `src` produced the
/// result nodes `dst` (0, 1, or 2 of them — a deleted subtree produces
/// none, a selected sibling-insert produces two).
#[derive(Debug, Clone)]
struct Fragment {
    /// Base-document node whose recursion produced this fragment.
    src: NodeId,
    /// Result-document nodes it produced, in sibling order.
    dst: Vec<NodeId>,
    /// Selecting-NFA states live *before* consuming `src`'s label — the
    /// set `topDown` passed into `rec(src, s)`. Re-evaluation resumes
    /// from exactly here.
    states: StateSet,
    /// Child fragments (interior fragments only), in base child order.
    children: Vec<usize>,
    /// Parent fragment (`None` for the root fragment).
    parent: Option<usize>,
    /// Memoized serialization of `dst` (leaves only; invalidated by
    /// patches and collapses touching this fragment).
    bytes: Option<String>,
    /// Base-subtree node count at recording time (patch-vs-recompute
    /// threshold input).
    size: u32,
    /// True when `children` exhaustively tile `dst[0]`'s children.
    interior: bool,
}

/// Outcome of localizing update-site chains against the provenance map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Localized {
    /// The disjoint set of deepest covering fragments (indices).
    Fragments(Vec<usize>),
    /// A chain resolved to the root fragment: the affected span is the
    /// whole result — fall back to recompute.
    Root,
}

/// Outcome of a collapse repair along one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collapse {
    /// The covering fragment was collapsed to an opaque leaf.
    Done,
    /// The chain resolved to the root fragment: the whole tree is
    /// stale — the caller must drop it.
    RootHit,
}

/// What [`FragmentTree::patch`] did.
#[derive(Debug, Clone, Default)]
pub struct PatchOutcome {
    /// Base nodes the view's update selected inside the re-evaluated
    /// regions (post-apply ids) — for folding into the entry's
    /// touched-label footprint.
    pub targets: Vec<NodeId>,
    /// Number of fragments spliced.
    pub fragments: usize,
}

struct Misaligned;

/// See the module docs.
pub struct FragmentTree {
    /// Slot map of fragments; slot 0 is always the root fragment.
    frags: Vec<Option<Fragment>>,
    free: Vec<usize>,
    /// `base node → fragment` for every fragment root (unique per live
    /// fragment). Localization and base-side collapse repair walk this.
    src_index: HashMap<NodeId, usize>,
    /// `result node → fragment` for every produced dst root. Result-side
    /// collapse repair (retained delta replays mutate the cached result
    /// tree) walks this.
    dst_index: HashMap<NodeId, usize>,
    /// Base subtrees of at most this many nodes stay opaque leaves.
    leaf_limit: usize,
}

impl FragmentTree {
    /// Records the provenance of `result = q(base)` as a fragment tree,
    /// descending only into base subtrees larger than `leaf_limit`.
    /// `nfa` must be the selecting NFA compiled from `q.path`. Returns
    /// `None` for shapes the alignment model does not cover (ε path,
    /// selected root under a non-rename op, empty documents, alignment
    /// mismatch) — the caller keeps serving from the flat body.
    pub fn build(
        base: &Document,
        result: &Document,
        q: &TransformQuery,
        nfa: &SelectingNfa,
        leaf_limit: usize,
    ) -> Option<FragmentTree> {
        if q.path.is_empty() {
            return None; // ε path: the root op is special-cased upstream
        }
        let broot = base.root()?;
        let rroot = result.root()?;
        let root_label = base.name_sym(broot)?;
        let init = nfa.initial();
        let s_after = nfa.next_states(&init, root_label, |_, qual| {
            eval_qualifier(base, broot, qual)
        });
        if s_after.is_empty() {
            return None; // wholesale copy: one giant leaf would be useless
        }
        if s_after.contains(nfa.final_state) && !matches!(q.op, UpdateOp::Rename { .. }) {
            return None; // selected root shifts child alignment (or empties the doc)
        }
        if base.children(broot).count() > MAX_CHILD_FRAGS {
            return None;
        }
        let sizes = subtree_sizes(base);
        let mut t = FragmentTree {
            frags: Vec::new(),
            free: Vec::new(),
            src_index: HashMap::new(),
            dst_index: HashMap::new(),
            leaf_limit: leaf_limit.max(1),
        };
        let root = t.alloc(Fragment {
            src: broot,
            dst: vec![rroot],
            states: init,
            children: Vec::new(),
            parent: None,
            bytes: None,
            size: sizes[broot.index()],
            interior: false,
        });
        debug_assert_eq!(root, 0);
        let sz = |n: NodeId| sizes[n.index()];
        let mut created = Vec::new();
        if t.align_children(base, result, q, nfa, &sz, root, &s_after, &mut created)
            .is_err()
        {
            return None;
        }
        Some(t)
    }

    fn frag(&self, i: usize) -> &Fragment {
        self.frags[i].as_ref().expect("live fragment")
    }

    fn frag_mut(&mut self, i: usize) -> &mut Fragment {
        self.frags[i].as_mut().expect("live fragment")
    }

    /// Live fragments right now (root included).
    pub fn fragment_count(&self) -> usize {
        self.frags.len() - self.free.len()
    }

    fn alloc(&mut self, f: Fragment) -> usize {
        let i = match self.free.pop() {
            Some(i) => {
                self.frags[i] = Some(f);
                i
            }
            None => {
                self.frags.push(Some(f));
                self.frags.len() - 1
            }
        };
        let (src, dsts) = {
            let f = self.frag(i);
            (f.src, f.dst.clone())
        };
        self.src_index.insert(src, i);
        for d in dsts {
            self.dst_index.insert(d, i);
        }
        i
    }

    /// Frees one fragment slot, dropping its index entries. The caller
    /// owns the parent's `children` bookkeeping.
    fn release(&mut self, i: usize) {
        let Some(f) = self.frags[i].take() else {
            return;
        };
        self.src_index.remove(&f.src);
        for d in &f.dst {
            self.dst_index.remove(d);
        }
        self.free.push(i);
    }

    /// Frees the whole fragment subtree under `i` (including `i`).
    fn release_subtree(&mut self, i: usize) {
        let children = match &self.frags[i] {
            Some(f) => f.children.clone(),
            None => return,
        };
        for c in children {
            self.release_subtree(c);
        }
        self.release(i);
    }

    /// Frees every descendant fragment of `i`, leaving `i` itself as an
    /// opaque leaf.
    fn free_children(&mut self, i: usize) {
        let children = std::mem::take(&mut self.frag_mut(i).children);
        for c in children {
            self.release_subtree(c);
        }
        let f = self.frag_mut(i);
        f.interior = false;
        f.bytes = None;
    }

    /// Lockstep alignment of the base children of fragment `fi`'s `src`
    /// with the result children of its single `dst`, creating one child
    /// fragment per base child and recursing into eligible subtrees.
    /// `s_after` is the state set *after* consuming `src`'s label (what
    /// `topDown` passed to every child). On `Err` the caller rolls back
    /// via `created` — the fragment model did not reproduce the result's
    /// actual shape, so no provenance is recorded below `fi`.
    #[allow(clippy::too_many_arguments)]
    fn align_children(
        &mut self,
        base: &Document,
        result: &Document,
        q: &TransformQuery,
        nfa: &SelectingNfa,
        sizes: &dyn Fn(NodeId) -> u32,
        fi: usize,
        s_after: &StateSet,
        created: &mut Vec<usize>,
    ) -> Result<(), Misaligned> {
        let src = self.frag(fi).src;
        let m = self.frag(fi).dst[0];
        let mut rchild = result.first_child(m);
        let bchildren: Vec<NodeId> = base.children(src).collect();
        let mut kids: Vec<usize> = Vec::with_capacity(bchildren.len());
        for c in bchildren {
            match base.kind(c) {
                NodeKind::Text(_) => {
                    // Text copies through: consumes exactly one result
                    // child, which must itself be text.
                    let rc = rchild.ok_or(Misaligned)?;
                    if !result.is_text(rc) {
                        return Err(Misaligned);
                    }
                    rchild = result.next_sibling(rc);
                    let ci = self.alloc(Fragment {
                        src: c,
                        dst: vec![rc],
                        states: s_after.clone(),
                        children: Vec::new(),
                        parent: Some(fi),
                        bytes: None,
                        size: 1,
                        interior: false,
                    });
                    created.push(ci);
                    kids.push(ci);
                }
                NodeKind::Element { name, .. } => {
                    let label = *name;
                    let s_c =
                        nfa.next_states(s_after, label, |_, qual| eval_qualifier(base, c, qual));
                    let (count, selected) = produced_count(&s_c, nfa, &q.op);
                    let mut dsts = Vec::with_capacity(count);
                    for _ in 0..count {
                        let rc = rchild.ok_or(Misaligned)?;
                        dsts.push(rc);
                        rchild = result.next_sibling(rc);
                    }
                    let ci = self.alloc(Fragment {
                        src: c,
                        dst: dsts,
                        states: s_after.clone(),
                        children: Vec::new(),
                        parent: Some(fi),
                        bytes: None,
                        size: sizes(c),
                        interior: false,
                    });
                    created.push(ci);
                    kids.push(ci);
                    let descend = count == 1
                        && !s_c.is_empty()
                        && (!selected || matches!(q.op, UpdateOp::Rename { .. }))
                        && sizes(c) as usize > self.leaf_limit
                        && base.children(c).count() <= MAX_CHILD_FRAGS;
                    if descend {
                        self.align_children(base, result, q, nfa, sizes, ci, &s_c, created)?;
                    }
                }
            }
        }
        if rchild.is_some() {
            return Err(Misaligned); // result has children the model did not predict
        }
        let f = self.frag_mut(fi);
        f.children = kids;
        f.interior = true;
        Ok(())
    }

    /// Resolves each update-site chain (deepest-first ancestor-or-self
    /// base node ids) to its deepest covering fragment, deduplicated and
    /// reduced to a disjoint set (a fragment covered by another chosen
    /// fragment is dropped).
    pub fn localize(&self, chains: &[Vec<NodeId>]) -> Localized {
        let mut chosen: Vec<usize> = Vec::new();
        for chain in chains {
            let Some(f) = chain.iter().find_map(|n| self.src_index.get(n).copied()) else {
                return Localized::Root; // unmapped chain: treat as whole-tree
            };
            if f == 0 {
                return Localized::Root;
            }
            if !chosen.contains(&f) {
                chosen.push(f);
            }
        }
        let set: HashSet<usize> = chosen.iter().copied().collect();
        chosen.retain(|&f| {
            let mut p = self.frag(f).parent;
            while let Some(pp) = p {
                if set.contains(&pp) {
                    return false;
                }
                p = self.frag(pp).parent;
            }
            true
        });
        Localized::Fragments(chosen)
    }

    /// Total recorded base-subtree size of the chosen fragments — the
    /// affected-span estimate the patch-vs-recompute threshold compares
    /// against the document size.
    pub fn cost(&self, chosen: &[usize]) -> u64 {
        chosen.iter().map(|&f| self.frag(f).size as u64).sum()
    }

    /// Re-evaluates the view under each chosen fragment against the
    /// post-update `base` and splices the produced result nodes into
    /// `out` (the cached result document) over the stale ones. `chosen`
    /// must come from [`FragmentTree::localize`] on this tree. `q`/`nfa`
    /// are the view's transform and its selecting NFA.
    pub fn patch(
        &mut self,
        base: &Document,
        out: &mut Document,
        q: &TransformQuery,
        nfa: &SelectingNfa,
        chosen: &[usize],
    ) -> PatchOutcome {
        let mut outcome = PatchOutcome {
            targets: Vec::new(),
            fragments: chosen.len(),
        };
        for &fi in chosen {
            self.patch_one(base, out, q, nfa, fi, &mut outcome.targets);
        }
        outcome
    }

    fn patch_one(
        &mut self,
        base: &Document,
        out: &mut Document,
        q: &TransformQuery,
        nfa: &SelectingNfa,
        fi: usize,
        targets: &mut Vec<NodeId>,
    ) {
        self.free_children(fi);
        let (src, states, parent, old_dsts) = {
            let f = self.frag(fi);
            (
                f.src,
                f.states.clone(),
                f.parent.expect("root is never patched"),
                f.dst.clone(),
            )
        };
        for d in &old_dsts {
            self.dst_index.remove(d);
        }
        // Splice anchor, resolved before the result tree changes: in
        // front of the stale nodes when there are any, else in front of
        // the next sibling fragment that still has live output, else at
        // the end of the parent's element.
        enum Anchor {
            Before(NodeId),
            Append(NodeId),
        }
        let anchor = match old_dsts.first() {
            Some(&d0) => Anchor::Before(d0),
            None => {
                let p = self.frag(parent);
                let pos = p
                    .children
                    .iter()
                    .position(|&c| c == fi)
                    .expect("fragment is its parent's child");
                let next_live = p.children[pos + 1..]
                    .iter()
                    .find_map(|&g| self.frag(g).dst.first().copied());
                match next_live {
                    Some(d) => Anchor::Before(d),
                    None => Anchor::Append(p.dst[0]),
                }
            }
        };
        let produced = reeval(base, out, nfa, &q.op, src, &states, targets);
        for &pnode in &produced {
            match anchor {
                Anchor::Before(a) => out.insert_before(a, pnode),
                Anchor::Append(pd) => out.append_child(pd, pnode),
            }
        }
        for &d in &old_dsts {
            out.delete(d);
        }
        let rsizes = region_sizes(base, src);
        {
            let f = self.frag_mut(fi);
            f.dst = produced.clone();
            f.bytes = None;
            f.size = rsizes.get(&src).copied().unwrap_or(1);
        }
        for &d in &produced {
            self.dst_index.insert(d, fi);
        }
        // Rebuild provenance below the fresh region where worthwhile, so
        // repeated writes into the same area stay localized.
        let label = base.name_sym(src).expect("fragment srcs are elements");
        let s_after = nfa.next_states(&states, label, |_, qual| eval_qualifier(base, src, qual));
        let selected = s_after.contains(nfa.final_state);
        let descend = produced.len() == 1
            && !s_after.is_empty()
            && (!selected || matches!(q.op, UpdateOp::Rename { .. }))
            && self.frag(fi).size as usize > self.leaf_limit
            && base.children(src).count() <= MAX_CHILD_FRAGS;
        if descend {
            let sz = |n: NodeId| rsizes.get(&n).copied().unwrap_or(1);
            let mut created = Vec::new();
            if self
                .align_children(base, out, q, nfa, &sz, fi, &s_after, &mut created)
                .is_err()
            {
                for &ci in created.iter().rev() {
                    self.release(ci);
                }
                let f = self.frag_mut(fi);
                f.children.clear();
                f.interior = false;
            }
        }
    }

    /// Base-side collapse repair: after a *retained* write replayed its
    /// delta, every fragment whose recorded base subtree covers an
    /// update site has stale provenance below it. Collapses the deepest
    /// covering fragment of `chain` (deepest-first pre-apply base ids)
    /// to an opaque leaf.
    pub fn collapse_src(&mut self, chain: &[NodeId]) -> Collapse {
        let Some(fi) = chain.iter().find_map(|n| self.src_index.get(n).copied()) else {
            return Collapse::RootHit;
        };
        if fi == 0 {
            return Collapse::RootHit;
        }
        self.free_children(fi);
        Collapse::Done
    }

    /// Result-side collapse repair: the retained delta replay also
    /// edited the cached result document, invalidating dst ids and
    /// memoized bytes under the replay's own target chains (deepest-
    /// first pre-replay result ids).
    pub fn collapse_dst(&mut self, chain: &[NodeId]) -> Collapse {
        let Some(fi) = chain.iter().find_map(|n| self.dst_index.get(n).copied()) else {
            return Collapse::RootHit;
        };
        if fi == 0 {
            return Collapse::RootHit;
        }
        self.free_children(fi);
        Collapse::Done
    }

    /// Serializes the whole result by walking the fragment tree:
    /// interior fragments emit live start/end tags, leaves emit their
    /// memoized bytes (serialized from `doc` on first use). Unchanged
    /// fragments are never re-serialized across patches.
    pub fn assemble(&mut self, doc: &Document) -> String {
        let mut out = String::new();
        self.write_frag(0, doc, &mut out);
        out
    }

    fn write_frag(&mut self, i: usize, doc: &Document, out: &mut String) {
        if self.frag(i).interior {
            let d = self.frag(i).dst[0];
            doc.write_start_tag_into(d, out);
            if doc.first_child(d).is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let children = self.frag(i).children.clone();
            for c in children {
                self.write_frag(c, doc, out);
            }
            doc.write_end_tag_into(d, out);
        } else {
            if self.frag(i).bytes.is_none() {
                let mut b = String::new();
                for d in self.frag(i).dst.clone() {
                    b.push_str(&doc.serialize_subtree(d));
                }
                self.frag_mut(i).bytes = Some(b);
            }
            out.push_str(self.frag(i).bytes.as_deref().expect("just memoized"));
        }
    }
}

/// The deepest-first ancestor-or-self chain of `n` — the shape
/// [`FragmentTree::localize`], [`FragmentTree::collapse_src`] and
/// [`FragmentTree::collapse_dst`] consume.
pub fn site_chain(doc: &Document, n: NodeId) -> Vec<NodeId> {
    let mut chain = vec![n];
    chain.extend(doc.ancestors(n));
    chain
}

/// How many result nodes `topDown` produces for a base child reached
/// with states `s_c` (post-consumption), and whether it is selected.
fn produced_count(s_c: &StateSet, nfa: &SelectingNfa, op: &UpdateOp) -> (usize, bool) {
    if s_c.is_empty() {
        return (1, false); // pruned wholesale copy
    }
    if !s_c.contains(nfa.final_state) {
        return (1, false);
    }
    let count = match op {
        UpdateOp::Delete => 0,
        UpdateOp::Replace { elem } => usize::from(elem.root().is_some()),
        UpdateOp::Insert { elem, pos } if pos.is_sibling() => {
            1 + usize::from(elem.root().is_some())
        }
        _ => 1, // rename / into-inserts keep one node
    };
    (count, true)
}

/// Re-evaluates the view under base node `n` with pre-consumption
/// states `s`, producing into `out` — a faithful replica of `topDown`'s
/// `rec` (Fig. 3), including the empty-state-set wholesale-copy pruning
/// and the sibling-insert wrapping. Selected base nodes are appended to
/// `targets`.
fn reeval(
    base: &Document,
    out: &mut Document,
    nfa: &SelectingNfa,
    op: &UpdateOp,
    n: NodeId,
    s: &StateSet,
    targets: &mut Vec<NodeId>,
) -> Vec<NodeId> {
    let label = match base.kind(n) {
        NodeKind::Text(t) => return vec![out.create_text(t.clone())],
        NodeKind::Element { name, .. } => *name,
    };
    let s_next = nfa.next_states(s, label, |_, qual| eval_qualifier(base, n, qual));
    if s_next.is_empty() {
        return vec![out.deep_copy_from(base, n)];
    }
    let selected = s_next.contains(nfa.final_state);
    if selected {
        targets.push(n);
        match op {
            UpdateOp::Delete => return Vec::new(),
            UpdateOp::Replace { elem } => {
                return match elem.root() {
                    Some(r) => vec![out.deep_copy_from(elem, r)],
                    None => Vec::new(),
                };
            }
            _ => {}
        }
    }
    let name = match (selected, op) {
        (true, UpdateOp::Rename { name }) => *name,
        _ => label,
    };
    let node = out.create_element_with_attrs(name, base.attrs(n).to_vec());
    if selected {
        if let UpdateOp::Insert {
            elem,
            pos: InsertPos::FirstInto,
        } = op
        {
            if let Some(r) = elem.root() {
                let copy = out.deep_copy_from(elem, r);
                out.append_child(node, copy);
            }
        }
    }
    let children: Vec<NodeId> = base.children(n).collect();
    for c in children {
        for p in reeval(base, out, nfa, op, c, &s_next, targets) {
            out.append_child(node, p);
        }
    }
    if selected {
        if let UpdateOp::Insert {
            elem,
            pos: InsertPos::LastInto,
        } = op
        {
            if let Some(r) = elem.root() {
                let copy = out.deep_copy_from(elem, r);
                out.append_child(node, copy);
            }
        }
        if let UpdateOp::Insert { elem, pos } = op {
            if pos.is_sibling() {
                if let Some(r) = elem.root() {
                    let copy = out.deep_copy_from(elem, r);
                    return match pos {
                        InsertPos::Before => vec![copy, node],
                        InsertPos::After => vec![node, copy],
                        _ => unreachable!("is_sibling() covers Before/After only"),
                    };
                }
            }
        }
    }
    vec![node]
}

/// Subtree node counts for every live node, indexed by arena slot.
fn subtree_sizes(doc: &Document) -> Vec<u32> {
    let mut sizes = vec![0u32; doc.arena_len()];
    if let Some(root) = doc.root() {
        let order: Vec<NodeId> = doc.descendants_or_self(root).collect();
        for &n in order.iter().rev() {
            let mut s = 1u32;
            for c in doc.children(n) {
                s = s.saturating_add(sizes[c.index()]);
            }
            sizes[n.index()] = s;
        }
    }
    sizes
}

/// Subtree node counts within the region rooted at `src` only.
fn region_sizes(base: &Document, src: NodeId) -> HashMap<NodeId, u32> {
    let order: Vec<NodeId> = base.descendants_or_self(src).collect();
    let mut m: HashMap<NodeId, u32> = HashMap::with_capacity(order.len());
    for &n in order.iter().rev() {
        let mut s = 1u32;
        for c in base.children(n) {
            s = s.saturating_add(m.get(&c).copied().unwrap_or(1));
        }
        m.insert(n, s);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::copy_update::apply_update;
    use crate::query::parse_transform;
    use crate::topdown::top_down;
    use xust_xpath::eval_path_root;

    fn view(q: &str) -> (TransformQuery, SelectingNfa) {
        let q = parse_transform(q).unwrap();
        let nfa = SelectingNfa::new(&q.path);
        (q, nfa)
    }

    const DOC: &str = "<db><zone><part><pname>kb</pname><price>9</price></part>\
         <part><pname>mouse</pname><price>20</price></part></zone>\
         <other><note>x</note><part><pname>pad</pname></part></other></db>";

    const DELETE_PRICE: &str =
        r#"transform copy $a := doc("db") modify do delete $a//price return $a"#;

    /// End-to-end: build provenance, apply a write to the base, localize
    /// the site, patch, and compare against full recompute — for every
    /// update-op shape.
    #[test]
    fn patched_result_matches_full_recompute() {
        let ops: &[(&str, &str)] = &[
            (DELETE_PRICE, "insert"),
            (DELETE_PRICE, "delete"),
            (
                r#"transform copy $a := doc("db") modify do rename $a//pname as nm return $a"#,
                "insert",
            ),
            (
                r#"transform copy $a := doc("db") modify do insert <tag/> after $a//pname return $a"#,
                "rename",
            ),
            (
                r#"transform copy $a := doc("db") modify do replace $a//price with <gone/> return $a"#,
                "replace",
            ),
            (
                r#"transform copy $a := doc("db") modify do insert <tag/> into $a//part return $a"#,
                "insert",
            ),
        ];
        for (vq, write_kind) in ops {
            let (q, nfa) = view(vq);
            let mut base = Document::parse(DOC).unwrap();
            let result = top_down(&base, &q);
            let mut tree = FragmentTree::build(&base, &result, &q, &nfa, 1).expect("tree builds");
            let mut out = Document::new();
            let r = out.deep_copy_from(&result, result.root().unwrap());
            out.set_root(r);
            // One small write into the first <part> subtree.
            let targets = eval_path_root(
                &base,
                &xust_xpath::parse_path("//part[pname = 'kb']").unwrap(),
            );
            assert_eq!(targets.len(), 1);
            let t = targets[0];
            let (write_op, site) = match *write_kind {
                "insert" => (
                    UpdateOp::Insert {
                        elem: Document::parse("<w>1</w>").unwrap(),
                        pos: InsertPos::LastInto,
                    },
                    t,
                ),
                "delete" => (UpdateOp::Delete, base.parent(t).unwrap()),
                "rename" => (
                    UpdateOp::Rename {
                        name: xust_intern::intern("piece"),
                    },
                    t,
                ),
                "replace" => (
                    UpdateOp::Replace {
                        elem: Document::parse("<swap><pname>kb</pname></swap>").unwrap(),
                    },
                    base.parent(t).unwrap(),
                ),
                _ => unreachable!(),
            };
            let chain = site_chain(&base, site);
            apply_update(&mut base, &targets, &write_op);
            match tree.localize(&[chain]) {
                Localized::Fragments(chosen) => {
                    assert!(!chosen.is_empty(), "{vq}: localization found fragments");
                    tree.patch(&base, &mut out, &q, &nfa, &chosen);
                    let expect = top_down(&base, &q).serialize();
                    assert_eq!(tree.assemble(&out), expect, "{vq} + {write_kind}");
                    assert_eq!(out.serialize(), expect, "spliced doc agrees too");
                }
                Localized::Root => panic!("{vq}: unexpectedly localized to root"),
            }
        }
    }

    /// Repeated patches into the same region stay correct (provenance is
    /// rebuilt below the patched fragment).
    #[test]
    fn repeated_patches_stay_aligned() {
        let (q, nfa) = view(DELETE_PRICE);
        let mut base = Document::parse(DOC).unwrap();
        let result = top_down(&base, &q);
        let mut tree = FragmentTree::build(&base, &result, &q, &nfa, 1).unwrap();
        let mut out = Document::new();
        let r = out.deep_copy_from(&result, result.root().unwrap());
        out.set_root(r);
        for i in 0..4 {
            let targets = eval_path_root(
                &base,
                &xust_xpath::parse_path("//part[pname = 'kb']").unwrap(),
            );
            let t = targets[0];
            let op = UpdateOp::Insert {
                elem: Document::parse(&format!("<w>{i}</w>")).unwrap(),
                pos: InsertPos::FirstInto,
            };
            let chain = site_chain(&base, t);
            apply_update(&mut base, &targets, &op);
            let Localized::Fragments(chosen) = tree.localize(&[chain]) else {
                panic!("localized to root");
            };
            tree.patch(&base, &mut out, &q, &nfa, &chosen);
            assert_eq!(
                tree.assemble(&out),
                top_down(&base, &q).serialize(),
                "write {i}"
            );
        }
    }

    /// A deleted-to-empty fragment splices back in correctly when later
    /// content reappears next to it (anchor resolution with empty dst).
    #[test]
    fn empty_dst_fragment_reanchors() {
        let (q, nfa) =
            view(r#"transform copy $a := doc("db") modify do delete $a/db/zone/part return $a"#);
        let mut base =
            Document::parse("<db><zone><part>1</part><tail>t</tail></zone></db>").unwrap();
        let result = top_down(&base, &q);
        assert_eq!(result.serialize(), "<db><zone><tail>t</tail></zone></db>");
        let mut tree = FragmentTree::build(&base, &result, &q, &nfa, 1).unwrap();
        let mut out = Document::new();
        let r = out.deep_copy_from(&result, result.root().unwrap());
        out.set_root(r);
        // Rename the deleted part's source so the view stops deleting it:
        // the fragment with an empty dst must re-anchor before <tail>.
        let targets = eval_path_root(&base, &xust_xpath::parse_path("//part").unwrap());
        let op = UpdateOp::Rename {
            name: xust_intern::intern("kept"),
        };
        let chain = site_chain(&base, targets[0]);
        apply_update(&mut base, &targets, &op);
        let Localized::Fragments(chosen) = tree.localize(&[chain]) else {
            panic!("localized to root");
        };
        tree.patch(&base, &mut out, &q, &nfa, &chosen);
        assert_eq!(
            tree.assemble(&out),
            "<db><zone><kept>1</kept><tail>t</tail></zone></db>"
        );
    }

    #[test]
    fn collapse_repairs_keep_assembly_live() {
        let (q, nfa) = view(DELETE_PRICE);
        let base = Document::parse(DOC).unwrap();
        let result = top_down(&base, &q);
        let mut tree = FragmentTree::build(&base, &result, &q, &nfa, 1).unwrap();
        let mut out = Document::new();
        let r = out.deep_copy_from(&result, result.root().unwrap());
        out.set_root(r);
        // Memoize everything, then edit the result doc directly (as a
        // retained replay would) and collapse along the edited chain.
        let before = tree.assemble(&out);
        assert_eq!(before, result.serialize());
        let pnames = eval_path_root(&out, &xust_xpath::parse_path("//pname").unwrap());
        let t = pnames[0];
        let chain = site_chain(&out, t);
        out.rename(t, "renamed");
        assert_eq!(tree.collapse_dst(&chain), Collapse::Done);
        assert_eq!(tree.assemble(&out), out.serialize());
        // Root chain: whole tree stale.
        assert_eq!(tree.collapse_dst(&[out.root().unwrap()]), Collapse::RootHit);
    }

    #[test]
    fn conservative_shapes_build_no_tree() {
        // ε path.
        let (q, nfa) = view(r#"transform copy $a := doc("db") modify do delete $a return $a"#);
        let base = Document::parse("<db><a/></db>").unwrap();
        assert!(FragmentTree::build(&base, &Document::new(), &q, &nfa, 1).is_none());
        // Selected root under a delete.
        let (q, nfa) =
            view(r#"transform copy $a := doc("db") modify do insert <x/> into $a//db return $a"#);
        let result = top_down(&base, &q);
        assert!(
            FragmentTree::build(&base, &result, &q, &nfa, 1).is_none(),
            "selected root shifts alignment"
        );
        // Unmatched path: root s_next empty only when the automaton dies
        // at the root label.
        let (q, nfa) =
            view(r#"transform copy $a := doc("db") modify do delete $a/zzz/yyy return $a"#);
        let result = top_down(&base, &q);
        assert!(FragmentTree::build(&base, &result, &q, &nfa, 1).is_none());
    }

    #[test]
    fn localize_picks_deepest_and_dedups() {
        let (q, nfa) = view(DELETE_PRICE);
        let base = Document::parse(DOC).unwrap();
        let result = top_down(&base, &q);
        let tree = FragmentTree::build(&base, &result, &q, &nfa, 1).unwrap();
        let parts = eval_path_root(&base, &xust_xpath::parse_path("//part").unwrap());
        let zone = eval_path_root(&base, &xust_xpath::parse_path("/db/zone").unwrap())[0];
        // Two sites under the same zone plus the zone itself: the zone
        // fragment covers its parts.
        let chains: Vec<Vec<NodeId>> = vec![
            site_chain(&base, parts[0]),
            site_chain(&base, parts[1]),
            site_chain(&base, zone),
        ];
        let Localized::Fragments(chosen) = tree.localize(&chains) else {
            panic!("root");
        };
        assert_eq!(chosen.len(), 1, "zone fragment absorbs its parts");
        assert!(tree.cost(&chosen) >= 1);
        // A root site falls back.
        assert_eq!(
            tree.localize(&[site_chain(&base, base.root().unwrap())]),
            Localized::Root
        );
    }
}
