#![warn(missing_docs)]
//! `xust-core` — the primary contribution of *Querying XML with Update
//! Syntax* (Fan, Cong, Bohannon; SIGMOD 2007): evaluation of **transform
//! queries**
//!
//! ```text
//! transform copy $a := doc("T") modify do u($a) return $a
//! ```
//!
//! which return the tree an update *would* produce, without touching the
//! source. Five evaluation strategies are implemented (Sections 3, 5, 6):
//!
//! | Module | Algorithm | Paper name |
//! |---|---|---|
//! | [`copy_update()`][copy_update::copy_update] | snapshot + in-place update | GalaXUpdate baseline |
//! | [`naive`] | rewrite into standard XQuery (Fig. 2) | NAIVE |
//! | [`topdown`] | selecting-NFA top-down transform (Fig. 3) | GENTOP |
//! | [`bottomup`] + [`twopass`] | filtering-NFA qualifier pass + topDown (Figs. 7, 9, 10) | TD-BU |
//! | [`sax2pass`] | both passes fused with SAX parsing (Section 6) | twoPassSAX |
//!
//! # Quickstart
//!
//! ```
//! use xust_tree::Document;
//! use xust_core::{evaluate_str, Method};
//!
//! let doc = Document::parse(
//!     "<db><part><pname>kb</pname><price>9</price></part></db>",
//! ).unwrap();
//! // Example 1.1: everything except price.
//! let view = evaluate_str(
//!     &doc,
//!     r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
//!     Method::TwoPass,
//! ).unwrap();
//! assert_eq!(view.serialize(), "<db><part><pname>kb</pname></part></db>");
//! ```

pub mod bottomup;
pub mod copy_update;
pub mod delta;
pub mod engine;
pub mod multi;
pub mod multi_sax;
pub mod multi_view;
pub mod naive;
pub mod patch;
pub mod prepared;
pub mod query;
pub mod sax2pass;
pub mod topdown;
pub mod twopass;

pub use bottomup::{bottom_up, Annotations};
pub use copy_update::{apply_update, copy_update};
pub use delta::{
    fragment_labels_into, op_alphabet_into, path_alphabet_into, qualifier_anchor_alphabet_into,
    qualifier_label_tests_into, touched_labels_into, update_alphabet, value_alphabet_into,
    RenameMapping, TouchedLabels,
};
pub use engine::{evaluate, evaluate_str, Method, TransformError};
pub use multi::{
    apply_chain, conflicting_targets, multi_snapshot, multi_top_down, multi_top_down_batch,
    parallel_map, parallel_map_stats, parse_multi_transform, MultiTransformQuery, StealStats,
};
pub use multi_sax::{
    multi_two_pass_sax, multi_two_pass_sax_files, multi_two_pass_sax_files_batch,
    multi_two_pass_sax_str,
};
pub use multi_view::{multi_view, multi_view_with_stats, MultiViewStats, SharedViewResult};
pub use naive::{naive_direct, naive_xquery, rewrite_to_xquery};
pub use patch::{site_chain, Collapse, FragmentTree, Localized, PatchOutcome};
pub use prepared::{CompiledTransform, QueryCost};
pub use query::{parse_transform, InsertPos, TransformParseError, TransformQuery, UpdateOp};
pub use sax2pass::{
    two_pass_sax, two_pass_sax_files, two_pass_sax_str, EventSink, LdStorage, PathPrepass,
    PathSelector, PreparedPath, PreparedTransform, SaxStats, SaxTransformError, TransformStream,
    WriterSink,
};
pub use topdown::{top_down, top_down_no_prune, top_down_subtree, top_down_with};
pub use twopass::two_pass;
// Symbol interning (the label representation every layer shares).
pub use xust_intern::{intern, Interner, IntoSym, Sym};
// The label-set type the delta relevance analysis speaks.
pub use xust_automata::LabelSet;
