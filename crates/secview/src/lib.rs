#![warn(missing_docs)]
//! XML security views enforced with transform queries — the paper's
//! flagship application (Section 1, "Security views", citing Fan, Chan
//! and Garofalakis' SIGMOD 2004 security-view model).
//!
//! A [`Policy`] is a set of named deny rules over an XML document: each
//! rule hides, redacts or relabels the nodes selected by an X path.
//! "Since each user group has a slightly different view, it is not in
//! general reasonable to materialize and maintain each of the provided
//! security views" — so a policy *compiles to a transform query* and is
//! enforced three ways, all without touching the source:
//!
//! * [`Policy::view`] materializes the view (for tests, audits, small
//!   documents) with the fused multi-update automaton plan;
//! * [`Policy::answer`] answers a user query *against the virtual view*
//!   — for single-rule policies via the Compose Method (one pass over
//!   only the data the query needs), otherwise via the transform
//!   followed by the query (the paper's naive composition);
//! * [`Policy::answer_streaming`] answers against documents too large
//!   for a DOM, via the streaming composition (single-rule policies).
//!
//! [`Policy::audit`] replays every hide rule against the materialized
//! view and reports any node that survived — the non-disclosure check
//! the property tests rely on.

use std::fmt;

use xust_compose::{
    compose, compose_sax_str, naive_composition_to_string, ComposeError, UserQuery,
};
use xust_core::{multi_top_down, MultiTransformQuery, TransformQuery, UpdateOp};
use xust_tree::Document;
use xust_xpath::{eval_path_root, parse_path, Path};

/// What a deny rule does to the nodes it matches.
#[derive(Debug, Clone)]
pub enum RuleAction {
    /// Remove the node and its whole subtree from the view.
    Hide,
    /// Replace the node with a constant placeholder element (so the
    /// *presence* of a field can remain visible while its content is
    /// withheld).
    Redact {
        /// The element written in place of each match.
        placeholder: Document,
    },
    /// Keep the subtree but relabel the node (e.g. expose `supplier` as
    /// `source` to hide the supplier taxonomy).
    Relabel {
        /// The exposed label.
        to: String,
    },
}

/// One deny rule: a name (for audit reports), the X path it governs and
/// the action applied to matched nodes.
#[derive(Debug, Clone)]
pub struct DenyRule {
    /// Identifier used in audit reports.
    pub name: String,
    /// The governed path.
    pub path: Path,
    /// What happens to matched nodes.
    pub action: RuleAction,
}

/// Error building or enforcing a policy.
#[derive(Debug, Clone)]
pub struct PolicyError {
    /// Human-readable description.
    pub message: String,
}

impl PolicyError {
    fn new(m: impl Into<String>) -> PolicyError {
        PolicyError { message: m.into() }
    }
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "security-view policy error: {}", self.message)
    }
}

impl std::error::Error for PolicyError {}

impl From<ComposeError> for PolicyError {
    fn from(e: ComposeError) -> Self {
        PolicyError::new(e.to_string())
    }
}

/// A named access-control policy for one user group.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Group name (e.g. `"analysts"`).
    pub group: String,
    /// Document name the policy's transforms read (`doc("…")`).
    pub doc_name: String,
    rules: Vec<DenyRule>,
}

/// A violation found by [`Policy::audit`]: a rule whose path still
/// selects nodes in the materialized view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the violated rule.
    pub rule: String,
    /// Number of surviving matches.
    pub surviving: usize,
}

impl Policy {
    /// Creates an empty policy for a user group over `doc_name`.
    pub fn new(group: impl Into<String>, doc_name: impl Into<String>) -> Policy {
        Policy {
            group: group.into(),
            doc_name: doc_name.into(),
            rules: Vec::new(),
        }
    }

    /// Adds a hide rule (builder style).
    pub fn hide(mut self, name: impl Into<String>, path: &str) -> Result<Policy, PolicyError> {
        let path = parse_path(path).map_err(|e| PolicyError::new(e.to_string()))?;
        self.rules.push(DenyRule {
            name: name.into(),
            path,
            action: RuleAction::Hide,
        });
        Ok(self)
    }

    /// Adds a redact rule with a placeholder element.
    pub fn redact(
        mut self,
        name: impl Into<String>,
        path: &str,
        placeholder_xml: &str,
    ) -> Result<Policy, PolicyError> {
        let path = parse_path(path).map_err(|e| PolicyError::new(e.to_string()))?;
        let placeholder =
            Document::parse(placeholder_xml).map_err(|e| PolicyError::new(e.to_string()))?;
        self.rules.push(DenyRule {
            name: name.into(),
            path,
            action: RuleAction::Redact { placeholder },
        });
        Ok(self)
    }

    /// Adds a relabel rule.
    pub fn relabel(
        mut self,
        name: impl Into<String>,
        path: &str,
        to: impl Into<String>,
    ) -> Result<Policy, PolicyError> {
        let path = parse_path(path).map_err(|e| PolicyError::new(e.to_string()))?;
        self.rules.push(DenyRule {
            name: name.into(),
            path,
            action: RuleAction::Relabel { to: to.into() },
        });
        Ok(self)
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[DenyRule] {
        &self.rules
    }

    /// Compiles the policy into a multi-update transform query with
    /// snapshot semantics (all rule paths read the original document, as
    /// an access-control matrix would).
    pub fn compile(&self) -> MultiTransformQuery {
        MultiTransformQuery::new(
            self.doc_name.clone(),
            self.rules
                .iter()
                .map(|r| {
                    let op = match &r.action {
                        RuleAction::Hide => UpdateOp::Delete,
                        RuleAction::Redact { placeholder } => UpdateOp::Replace {
                            elem: placeholder.clone(),
                        },
                        RuleAction::Relabel { to } => UpdateOp::Rename {
                            name: to.as_str().into(),
                        },
                    };
                    (r.path.clone(), op)
                })
                .collect(),
        )
    }

    /// Single-rule policies compile to a plain transform query — the
    /// form the Compose Method and the streaming composition accept.
    pub fn compile_single(&self) -> Option<TransformQuery> {
        match self.rules.as_slice() {
            [_r] => {
                let mq = self.compile();
                let (path, op) = mq.updates.into_iter().next().expect("one rule");
                Some(TransformQuery {
                    var: "a".into(),
                    doc_name: self.doc_name.clone(),
                    path,
                    op,
                })
            }
            _ => None,
        }
    }

    /// Materializes the view (the fused automaton plan; the source is
    /// untouched).
    pub fn view(&self, doc: &Document) -> Document {
        multi_top_down(doc, &self.compile())
    }

    /// Answers `user_query` against the *virtual* view. Single-rule
    /// policies go through the Compose Method — one composed query that
    /// reads only what the user query needs; multi-rule policies fall
    /// back to transform-then-query (the paper's naive composition,
    /// against the materialized view).
    pub fn answer(&self, doc: &Document, user_query: &str) -> Result<String, PolicyError> {
        let uq = UserQuery::parse(user_query)?;
        if uq.doc_name != self.doc_name {
            return Err(PolicyError::new(format!(
                "query reads doc(\"{}\") but the policy governs doc(\"{}\")",
                uq.doc_name, self.doc_name
            )));
        }
        if let Some(qt) = self.compile_single() {
            let qc = compose(&qt, &uq)?;
            return Ok(qc.execute_to_string(doc)?);
        }
        // Multi-rule: materialize the view once, run the query on it —
        // exactly the sequential semantics the composition must equal.
        let view = self.view(doc);
        let mut engine = xust_xquery::Engine::new();
        engine.load_doc(self.doc_name.clone(), view);
        let v = engine
            .eval_expr(&uq.to_expr(), &[])
            .map_err(|e| PolicyError::new(e.to_string()))?;
        Ok(engine.serialize_value(&v))
    }

    /// Answers against a serialized document without building a DOM of
    /// it (single-rule policies only — the streaming composition takes
    /// one embedded transform).
    pub fn answer_streaming(&self, xml: &str, user_query: &str) -> Result<String, PolicyError> {
        let qt = self.compile_single().ok_or_else(|| {
            PolicyError::new("streaming enforcement requires a single-rule policy")
        })?;
        let uq = UserQuery::parse(user_query)?;
        Ok(compose_sax_str(xml, &qt, &uq)?)
    }

    /// Sequential reference for [`Policy::answer`] on single-rule
    /// policies (used by tests and benches).
    pub fn answer_sequential(
        &self,
        doc: &Document,
        user_query: &str,
    ) -> Result<String, PolicyError> {
        let qt = self
            .compile_single()
            .ok_or_else(|| PolicyError::new("sequential reference is single-rule"))?;
        let uq = UserQuery::parse(user_query)?;
        Ok(naive_composition_to_string(doc, &qt, &uq)?)
    }

    /// Non-disclosure audit: materializes the view and re-evaluates
    /// every *hide* rule's path on it. Any surviving match is reported.
    /// (Redact rules are audited by checking the placeholder replaced
    /// the original, i.e. the path matches only placeholder roots.)
    pub fn audit(&self, doc: &Document) -> Vec<Violation> {
        let view = self.view(doc);
        let mut violations = Vec::new();
        for r in &self.rules {
            if !matches!(r.action, RuleAction::Hide) {
                continue;
            }
            let surviving = eval_path_root(&view, &r.path).len();
            if surviving > 0 {
                violations.push(Violation {
                    rule: r.name.clone(),
                    surviving,
                });
            }
        }
        violations
    }
}

/// A set of per-group policies over the same document — "a number of
/// user groups with access to T₀ may be subject to different
/// access-control policies".
#[derive(Debug, Clone, Default)]
pub struct PolicySet {
    policies: Vec<Policy>,
}

impl PolicySet {
    /// Empty set.
    pub fn new() -> PolicySet {
        PolicySet::default()
    }

    /// Registers a group policy.
    pub fn add(&mut self, policy: Policy) {
        self.policies.push(policy);
    }

    /// Looks a policy up by group name.
    pub fn for_group(&self, group: &str) -> Option<&Policy> {
        self.policies.iter().find(|p| p.group == group)
    }

    /// All registered groups.
    pub fn groups(&self) -> impl Iterator<Item = &str> {
        self.policies.iter().map(|p| p.group.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>kb</pname><supplier><sname>HP</sname><price>12</price><country>A</country></supplier><supplier><sname>IBM</sname><price>20</price><country>B</country></supplier></part></db>",
        )
        .unwrap()
    }

    #[test]
    fn example_11_price_hiding_view() {
        // Example 1.1: everything except price.
        let p = Policy::new("g", "foo").hide("no-price", "//price").unwrap();
        let v = p.view(&doc());
        let s = v.serialize();
        assert!(!s.contains("price"));
        assert!(s.contains("HP") && s.contains("IBM"));
        assert!(p.audit(&doc()).is_empty());
    }

    #[test]
    fn example_11_country_scoped_policy() {
        // The per-country variant: hide prices of suppliers from A or B.
        let p = Policy::new("g", "foo")
            .hide(
                "country-prices",
                "//supplier[country = 'A' or country = 'B']/price",
            )
            .unwrap();
        let v = p.view(&doc());
        assert!(!v.serialize().contains("<price>"));
        assert!(p.audit(&doc()).is_empty());
    }

    #[test]
    fn composed_answer_equals_sequential() {
        let p = Policy::new("g", "foo")
            .hide("no-a", "//supplier[country = 'A']")
            .unwrap();
        let q =
            "<result>{ for $x in doc(\"foo\")/db/part[pname = 'kb']/supplier return $x }</result>";
        let composed = p.answer(&doc(), q).unwrap();
        let sequential = p.answer_sequential(&doc(), q).unwrap();
        assert_eq!(composed, sequential);
        assert!(composed.contains("IBM"));
        assert!(!composed.contains("HP"));
    }

    #[test]
    fn streaming_answer_agrees() {
        let p = Policy::new("g", "foo")
            .hide("no-a", "//supplier[country = 'A']")
            .unwrap();
        let q = "<result>{ for $x in doc(\"foo\")/db/part/supplier/sname return $x }</result>";
        let streamed = p.answer_streaming(&doc().serialize(), q).unwrap();
        assert_eq!(streamed, p.answer_sequential(&doc(), q).unwrap());
    }

    #[test]
    fn redact_keeps_shape() {
        let p = Policy::new("g", "foo")
            .redact("veil", "//price", "<price>—</price>")
            .unwrap();
        let v = p.view(&doc());
        assert_eq!(v.serialize().matches("<price>—</price>").count(), 2);
        assert!(!v.serialize().contains("12"));
    }

    #[test]
    fn relabel_hides_taxonomy() {
        let p = Policy::new("g", "foo")
            .relabel("flatten", "//supplier", "source")
            .unwrap();
        let v = p.view(&doc());
        assert!(!v.serialize().contains("<supplier>"));
        assert_eq!(v.serialize().matches("<source>").count(), 2);
    }

    #[test]
    fn multi_rule_policy_composes_all_rules() {
        let p = Policy::new("g", "foo")
            .hide("no-price", "//price")
            .unwrap()
            .relabel("flatten", "//supplier", "source")
            .unwrap();
        let v = p.view(&doc());
        assert!(!v.serialize().contains("price"));
        assert!(v.serialize().contains("<source>"));
        let ans = p
            .answer(&doc(), "for $x in doc(\"foo\")//source/sname return $x")
            .unwrap();
        assert!(ans.contains("HP"));
    }

    #[test]
    fn audit_reports_ineffective_rule() {
        // A rule whose path matches nodes the *view* still contains:
        // hiding //supplier[country='A'] leaves //sname of others —
        // simulate a misconfigured overlapping pair where the second
        // rule's targets are re-introduced by a redact placeholder.
        let p = Policy::new("g", "foo")
            .redact("veil", "//price", "<price>9</price>")
            .unwrap()
            .hide("no-price", "//price[. = '9']")
            .unwrap();
        // Snapshot semantics: hide sees the *original* prices (12, 20),
        // not the placeholder 9 — so the placeholder survives in the
        // view and the audit flags the hide rule.
        let violations = p.audit(&doc());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "no-price");
        assert_eq!(violations[0].surviving, 2);
    }

    #[test]
    fn policy_set_routing() {
        let mut set = PolicySet::new();
        set.add(Policy::new("analysts", "foo").hide("h", "//price").unwrap());
        set.add(
            Policy::new("auditors", "foo")
                .hide("h", "//country")
                .unwrap(),
        );
        assert_eq!(set.groups().count(), 2);
        let a = set.for_group("analysts").unwrap().view(&doc());
        let b = set.for_group("auditors").unwrap().view(&doc());
        assert!(!a.serialize().contains("price"));
        assert!(a.serialize().contains("country"));
        assert!(b.serialize().contains("price"));
        assert!(!b.serialize().contains("country"));
        assert!(set.for_group("nobody").is_none());
    }

    #[test]
    fn wrong_doc_name_rejected() {
        let p = Policy::new("g", "foo").hide("h", "//price").unwrap();
        assert!(p
            .answer(&doc(), "for $x in doc(\"bar\")//sname return $x")
            .is_err());
    }

    #[test]
    fn bad_paths_rejected_at_build_time() {
        assert!(Policy::new("g", "d").hide("h", "//[").is_err());
        assert!(Policy::new("g", "d")
            .redact("r", "//x", "<unclosed>")
            .is_err());
    }

    #[test]
    fn source_never_modified() {
        let d = doc();
        let before = d.serialize();
        let p = Policy::new("g", "foo").hide("h", "//price").unwrap();
        let _ = p.view(&d);
        let _ = p.answer(&d, "for $x in doc(\"foo\")//sname return $x");
        assert_eq!(d.serialize(), before);
    }
}
