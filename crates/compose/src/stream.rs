//! Streaming composition of user and transform queries — the paper's
//! §9 future work ("extend our composition techniques to work with the
//! SAX based two-pass algorithm"), built from `xust-core`'s push-based
//! pass machinery.
//!
//! The transformed document `Qt(T)` is never materialized. Instead the
//! input is streamed three times:
//!
//! 1. **transform pass 1** — evaluate the qualifiers of `Qt`'s embedded
//!    path bottom-up ([`xust_core::PreparedTransform::prepare`]);
//! 2. **transform pass 2 → user pass 1** — replay the transform as an
//!    event stream and pipe it straight into a qualifier prepass for the
//!    *user* path ρ ([`xust_core::PathPrepass`]), producing the user
//!    path's own truth list over `Qt(T)`;
//! 3. **transform pass 2 → binding selector** — replay again; a
//!    [`xust_core::PathSelector`] replays the user truths, and each
//!    element selected by ρ is buffered as a small DOM on which the
//!    `where`/`return` body is evaluated with `$x` bound.
//!
//! Memory is O(depth · (|p| + |ρ|)) + |Ld| + the largest *matched
//! binding subtree* — still independent of |T| whenever the user query
//! selects bounded fragments (the usual case; a user query selecting the
//! root degenerates to buffering the document).
//!
//! Caveat (serialization): atomic items returned by the body are emitted
//! unescaped, exactly like [`Engine::serialize_value`]; bodies returning
//! raw strings containing XML metacharacters inside a wrapper element
//! may serialize differently than the DOM composition.

use std::io::{Read, Write};

use xust_core::{
    EventSink, LdStorage, PathPrepass, PathSelector, PreparedTransform, SaxStats,
    SaxTransformError, TransformQuery,
};
use xust_sax::{escape_attr, SaxEvent, SaxParser};
use xust_tree::{Document, NodeId};
use xust_xquery::{Engine, Item};

use crate::user::{ComposeError, UserQuery};

/// Statistics from a streaming composition run.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamComposeStats {
    /// Transform pass-1/2 statistics.
    pub transform: SaxStats,
    /// User-path prepass statistics (over the transformed stream).
    pub user_prepass: SaxStats,
    /// Number of `$x` bindings produced.
    pub bindings: u64,
    /// Nodes in the largest buffered binding subtree (the memory bound
    /// beyond the automata stacks).
    pub peak_buffer_nodes: usize,
}

/// Streaming composition over three independent reads of the same input.
pub fn compose_two_pass_sax<R1: Read, R2: Read, R3: Read, W: Write>(
    pass1: SaxParser<R1>,
    pass2: SaxParser<R2>,
    pass3: SaxParser<R3>,
    qt: &TransformQuery,
    uq: &UserQuery,
    mut out: W,
) -> Result<StreamComposeStats, ComposeError> {
    if qt.doc_name != uq.doc_name {
        return Err(ComposeError::new(format!(
            "transform reads doc(\"{}\") but user query reads doc(\"{}\")",
            qt.doc_name, uq.doc_name
        )));
    }
    let ce = |e: SaxTransformError| ComposeError::new(e.to_string());

    // Pass 1: transform qualifiers.
    let mut prepared = PreparedTransform::prepare(pass1, qt, LdStorage::Memory).map_err(ce)?;

    // Pass 2: user-path qualifiers over the transformed stream.
    let mut upre = PathPrepass::new(&uq.source, LdStorage::Memory);
    prepared.replay_into(pass2, &mut upre).map_err(ce)?;
    let upath = upre.finish().map_err(ce)?;

    // Pass 3: select bindings, evaluate the body per binding.
    let mut body_out = String::new();
    let mut stats = StreamComposeStats {
        user_prepass: upath.stats,
        ..Default::default()
    };
    {
        let mut sink = BindingSink {
            sel: upath.selector(),
            buf: None,
            uq,
            out: &mut body_out,
            prev_atomic: false,
            bindings: &mut stats.bindings,
            peak: &mut stats.peak_buffer_nodes,
        };
        prepared.replay_into(pass3, &mut sink).map_err(ce)?;
    }
    stats.transform = prepared.stats;

    match &uq.wrapper {
        Some((name, attrs)) => {
            let mut open = format!("<{name}");
            for (k, v) in attrs {
                open.push_str(&format!(" {k}=\"{}\"", escape_attr(v)));
            }
            if body_out.is_empty() {
                open.push_str("/>");
                out.write_all(open.as_bytes()).map_err(io_err)?;
            } else {
                open.push('>');
                out.write_all(open.as_bytes()).map_err(io_err)?;
                out.write_all(body_out.as_bytes()).map_err(io_err)?;
                out.write_all(format!("</{name}>").as_bytes())
                    .map_err(io_err)?;
            }
        }
        None => out.write_all(body_out.as_bytes()).map_err(io_err)?,
    }
    Ok(stats)
}

fn io_err(e: std::io::Error) -> ComposeError {
    ComposeError::new(format!("stream composition output: {e}"))
}

/// Convenience: compose over an in-memory document, returning the
/// serialized result.
pub fn compose_sax_str(
    xml: &str,
    qt: &TransformQuery,
    uq: &UserQuery,
) -> Result<String, ComposeError> {
    let mut out = Vec::new();
    compose_two_pass_sax(
        SaxParser::from_str(xml),
        SaxParser::from_str(xml),
        SaxParser::from_str(xml),
        qt,
        uq,
        &mut out,
    )?;
    Ok(String::from_utf8(out).expect("output is UTF-8"))
}

/// Convenience: compose file → file with bounded memory.
pub fn compose_sax_files(
    input: impl AsRef<std::path::Path>,
    qt: &TransformQuery,
    uq: &UserQuery,
    output: impl AsRef<std::path::Path>,
) -> Result<StreamComposeStats, ComposeError> {
    let open =
        |p: &std::path::Path| SaxParser::from_file(p).map_err(|e| ComposeError::new(e.to_string()));
    let out = std::io::BufWriter::new(std::fs::File::create(output).map_err(io_err)?);
    compose_two_pass_sax(
        open(input.as_ref())?,
        open(input.as_ref())?,
        open(input.as_ref())?,
        qt,
        uq,
        out,
    )
}

/// Buffer for one in-flight binding subtree.
struct BufState {
    doc: Document,
    stack: Vec<NodeId>,
    /// Binding nodes inside the buffer, in start (= document) order.
    marks: Vec<NodeId>,
}

/// Sink for pass 3: drives the user-path selector over the transformed
/// stream, buffers selected subtrees, evaluates the body per binding.
struct BindingSink<'a> {
    sel: PathSelector<'a>,
    buf: Option<BufState>,
    uq: &'a UserQuery,
    out: &'a mut String,
    /// Whether the last emitted item was atomic (for space-joining, as
    /// in `Engine::serialize_value`).
    prev_atomic: bool,
    bindings: &'a mut u64,
    peak: &'a mut usize,
}

impl BindingSink<'_> {
    fn flush(&mut self, buf: BufState) -> Result<(), SaxTransformError> {
        *self.peak = (*self.peak).max(buf.doc.node_count());
        let mut engine = Engine::new();
        let did = engine.load_doc("__xust_binding", buf.doc);
        for &m in &buf.marks {
            *self.bindings += 1;
            let v = engine
                .eval_expr(
                    &self.uq.body,
                    &[(self.uq.var.clone(), vec![Item::Node(did, m)])],
                )
                .map_err(|e| SaxTransformError::Sink(e.to_string()))?;
            let first_atomic = v.first().is_some_and(is_atomic);
            if self.prev_atomic && first_atomic {
                self.out.push(' ');
            }
            self.out.push_str(&engine.serialize_value(&v));
            if let Some(last) = v.last() {
                self.prev_atomic = is_atomic(last);
            }
        }
        Ok(())
    }
}

fn is_atomic(item: &Item) -> bool {
    !matches!(
        item,
        Item::DocNode(_) | Item::Node(_, _) | Item::Attr(_, _, _)
    )
}

impl EventSink for BindingSink<'_> {
    fn event(&mut self, ev: SaxEvent) -> Result<(), SaxTransformError> {
        match ev {
            SaxEvent::StartDocument | SaxEvent::EndDocument => {}
            SaxEvent::StartElement { name, attrs } => {
                let selected = self.sel.start_element(name);
                match &mut self.buf {
                    Some(buf) => {
                        let parent = *buf.stack.last().expect("buffer stack non-empty");
                        let n = buf.doc.create_element_with_attrs(name, attrs);
                        buf.doc.append_child(parent, n);
                        buf.stack.push(n);
                        if selected {
                            buf.marks.push(n);
                        }
                    }
                    None if selected => {
                        let mut doc = Document::new();
                        let n = doc.create_element_with_attrs(name, attrs);
                        doc.set_root(n);
                        self.buf = Some(BufState {
                            doc,
                            stack: vec![n],
                            marks: vec![n],
                        });
                    }
                    None => {}
                }
            }
            SaxEvent::Text(t) => {
                if let Some(buf) = &mut self.buf {
                    let parent = *buf.stack.last().expect("buffer stack non-empty");
                    let n = buf.doc.create_text(t);
                    buf.doc.append_child(parent, n);
                }
            }
            SaxEvent::EndElement(_) => {
                self.sel.end_element();
                if let Some(buf) = &mut self.buf {
                    buf.stack.pop();
                    if buf.stack.is_empty() {
                        let buf = self.buf.take().expect("just matched");
                        self.flush(buf)?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compose, naive_composition_to_string};
    use xust_core::top_down;
    use xust_xpath::parse_path;

    fn doc_xml() -> &'static str {
        "<db><part><pname>keyboard</pname><supplier><sname>HP</sname><price>12</price><country>A</country></supplier></part><part><pname>mouse</pname><supplier><sname>IBM</sname><price>20</price><country>B</country></supplier></part></db>"
    }

    fn check(qt: &TransformQuery, uq_text: &str) {
        let uq = UserQuery::parse(uq_text).unwrap();
        let d = Document::parse(doc_xml()).unwrap();
        let expect = naive_composition_to_string(&d, qt, &uq).unwrap();
        let got = compose_sax_str(doc_xml(), qt, &uq).unwrap();
        assert_eq!(got, expect, "stream compose deviates for user {uq_text}");
        // And the DOM composition agrees too (three-way).
        let qc = compose(qt, &uq).unwrap();
        assert_eq!(qc.execute_to_string(&d).unwrap(), expect);
    }

    #[test]
    fn example_41_security_view() {
        // Example 4.1: delete suppliers from country A, then ask for
        // keyboard suppliers.
        let qt = TransformQuery::delete("foo", parse_path("//supplier[country = 'A']").unwrap());
        check(
            &qt,
            "<result>{ for $x in doc(\"foo\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
        );
        check(
            &qt,
            "<result>{ for $x in doc(\"foo\")/db/part[pname = 'mouse']/supplier return $x }</result>",
        );
    }

    #[test]
    fn insert_transform_with_descendant_user_path() {
        let qt = TransformQuery::insert(
            "foo",
            parse_path("//part[pname = 'keyboard']").unwrap(),
            Document::parse("<supplier><sname>New</sname></supplier>").unwrap(),
        );
        check(&qt, "for $x in doc(\"foo\")//supplier/sname return $x");
    }

    #[test]
    fn rename_transform_streamed() {
        let qt = TransformQuery::rename("foo", parse_path("//supplier").unwrap(), "vendor");
        check(&qt, "for $x in doc(\"foo\")//vendor/sname return $x");
    }

    #[test]
    fn replace_transform_streamed() {
        let qt = TransformQuery::replace(
            "foo",
            parse_path("//supplier[price < 15]").unwrap(),
            Document::parse("<supplier><sname>cheap</sname></supplier>").unwrap(),
        );
        check(&qt, "for $x in doc(\"foo\")//supplier/sname return $x");
    }

    #[test]
    fn nested_bindings_buffer_once() {
        // ρ = //part with nested parts: outer buffer holds both bindings.
        let xml = "<db><part><pname>a</pname><part><pname>b</pname></part></part></db>";
        let qt = TransformQuery::delete("d", parse_path("//pname[. = 'zzz']").unwrap());
        let uq = UserQuery::parse("for $x in doc(\"d\")//part/pname return $x").unwrap();
        let d = Document::parse(xml).unwrap();
        let expect = naive_composition_to_string(&d, &qt, &uq).unwrap();
        assert_eq!(compose_sax_str(xml, &qt, &uq).unwrap(), expect);
    }

    #[test]
    fn where_clause_body_on_buffered_binding() {
        let qt = TransformQuery::delete("d", parse_path("//country").unwrap());
        check(
            &qt,
            "<out>{ for $x in doc(\"d\")/db/part/supplier where $x/price = '12' return $x/sname }</out>",
        );
    }

    #[test]
    fn empty_result_wrapper_collapses() {
        let qt = TransformQuery::delete("d", parse_path("//part").unwrap());
        let uq = UserQuery::parse("<out>{ for $x in doc(\"d\")//part return $x }</out>").unwrap();
        let d = Document::parse(doc_xml()).unwrap();
        let expect = naive_composition_to_string(&d, &qt, &uq).unwrap();
        assert_eq!(compose_sax_str(doc_xml(), &qt, &uq).unwrap(), expect);
        assert_eq!(expect, "<out/>");
    }

    #[test]
    fn root_deleted_stream_is_empty() {
        let qt = TransformQuery::delete("d", parse_path("//db").unwrap());
        let uq = UserQuery::parse("for $x in doc(\"d\")//part return $x").unwrap();
        assert_eq!(compose_sax_str(doc_xml(), &qt, &uq).unwrap(), "");
    }

    #[test]
    fn stats_report_bindings_and_buffer_bound() {
        let qt = TransformQuery::delete("d", parse_path("//country").unwrap());
        let uq = UserQuery::parse("for $x in doc(\"d\")//supplier return $x").unwrap();
        let mut out = Vec::new();
        let stats = compose_two_pass_sax(
            SaxParser::from_str(doc_xml()),
            SaxParser::from_str(doc_xml()),
            SaxParser::from_str(doc_xml()),
            &qt,
            &uq,
            &mut out,
        )
        .unwrap();
        assert_eq!(stats.bindings, 2);
        // Each supplier subtree (post-delete) has 5 nodes: supplier,
        // sname, text, price, text.
        assert_eq!(stats.peak_buffer_nodes, 5);
        // The result itself reflects the transform: no country elements.
        assert!(!String::from_utf8(out).unwrap().contains("country"));
    }

    #[test]
    fn matches_dom_transform_then_query() {
        // End-to-end sanity against the DOM pipeline on a larger doc.
        let xml = xust_xmark::generate_string(xust_xmark::XmarkConfig::new(0.003).with_seed(7));
        let qt = TransformQuery::delete("x", parse_path("//price").unwrap());
        let uq = UserQuery::parse(
            "<result>{ for $x in doc(\"x\")/site/regions//item/location return $x }</result>",
        )
        .unwrap();
        let d = Document::parse(&xml).unwrap();
        let transformed = top_down(&d, &qt);
        let mut engine = Engine::new();
        engine.load_doc("x", transformed);
        let expect = {
            let v = engine.eval_expr(&uq.to_expr(), &[]).unwrap();
            engine.serialize_value(&v)
        };
        assert_eq!(compose_sax_str(&xml, &qt, &uq).unwrap(), expect);
    }
}
