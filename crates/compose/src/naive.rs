//! The Naive Composition Method (Section 4):
//!
//! ```text
//! let $d := Qt(T)  let $d′ := Q($d)  return $d′
//! ```
//!
//! — evaluate the transform query first (with GENTOP, the fastest
//! on-top-of-engine method per Section 7.1), then run the user query over
//! the materialized result. This is the baseline the Compose Method is
//! measured against in Fig. 15.

use xust_core::{top_down, TransformQuery};
use xust_tree::Document;
use xust_xquery::Engine;

use crate::user::{ComposeError, UserQuery};

/// Evaluates `Q(Qt(T))` sequentially.
pub fn naive_composition(
    doc: &Document,
    qt: &TransformQuery,
    uq: &UserQuery,
) -> Result<Document, ComposeError> {
    let transformed = top_down(doc, qt);
    let mut engine = Engine::new();
    engine.load_doc(uq.doc_name.clone(), transformed);
    let v = engine
        .eval_expr(&uq.to_expr(), &[])
        .map_err(|e| ComposeError::new(e.to_string()))?;
    engine
        .value_to_document(&v)
        .map_err(|e| ComposeError::new(e.to_string()))
}

/// Naive composition against a pre-loaded engine: evaluates `Qt` over
/// the stored document with GENTOP (no copy of the source), stores the
/// result, and runs `Q` over it — the engine-side rendering of
/// `let $d := Qt(T) let $d′ := Q($d) return $d′`.
pub fn naive_composition_in_engine(
    engine: &mut Engine,
    qt: &TransformQuery,
    uq: &UserQuery,
) -> Result<String, ComposeError> {
    use xust_xquery::{Expr, Item};
    let d = engine
        .store
        .resolve(&uq.doc_name)
        .ok_or_else(|| ComposeError::new(format!("doc(\"{}\") not loaded", uq.doc_name)))?;
    let src = std::mem::take(engine.store.doc_mut(d));
    let transformed = top_down(&src, qt);
    *engine.store.doc_mut(d) = src;
    let new_id = engine.store.add_anonymous(transformed);
    // Q with its doc(…) base rebased onto the transformed document.
    let inner = Expr::For {
        var: uq.var.clone(),
        seq: Box::new(Expr::path(Expr::var("xust-base"), uq.source.clone())),
        body: Box::new(uq.body.clone()),
    };
    let expr = match &uq.wrapper {
        Some((name, attrs)) => Expr::DirectElem {
            name: name.clone(),
            attrs: attrs.clone(),
            content: vec![inner],
        },
        None => inner,
    };
    let v = engine
        .eval_expr(
            &expr,
            &[("xust-base".to_string(), vec![Item::DocNode(new_id)])],
        )
        .map_err(|e| ComposeError::new(e.to_string()))?;
    Ok(engine.serialize_value(&v))
}

/// String-result variant (for queries without a single-root wrapper).
pub fn naive_composition_to_string(
    doc: &Document,
    qt: &TransformQuery,
    uq: &UserQuery,
) -> Result<String, ComposeError> {
    let transformed = top_down(doc, qt);
    let mut engine = Engine::new();
    engine.load_doc(uq.doc_name.clone(), transformed);
    let v = engine
        .eval_expr(&uq.to_expr(), &[])
        .map_err(|e| ComposeError::new(e.to_string()))?;
    Ok(engine.serialize_value(&v))
}
