//! User queries (Section 4):
//!
//! ```text
//! for $x in ρ
//! where ρ′1 = ρ″1 and … and ρ′k = ρ″k
//! return exp(ϱ1, …, ϱm)
//! ```
//!
//! where ρ is an X expression and `exp` is an element template. We accept
//! the concrete XQuery form via `xust-xquery`'s parser and pattern-match
//! it into [`UserQuery`]; the `where` clause (already desugared into an
//! `if` by the parser) and the template are carried as expressions and
//! re-anchored on the transformed binding by the composition.

use std::fmt;

use xust_xpath::Path;
use xust_xquery::{parse_expr, Expr};

/// A parsed user query.
#[derive(Debug, Clone)]
pub struct UserQuery {
    /// The bound variable (the `$x`).
    pub var: String,
    /// ρ — the absolute source path (rooted at `doc(name)`).
    pub source: Path,
    /// Name of the queried document.
    pub doc_name: String,
    /// The body: everything after `return` (with any `where` folded in as
    /// an `if`), referencing `$x`.
    pub body: Expr,
    /// Optional literal element wrapper (`<result> { … } </result>`).
    pub wrapper: Option<(String, Vec<(String, String)>)>,
}

/// Error constructing or composing a user query.
#[derive(Debug, Clone)]
pub struct ComposeError {
    /// Human-readable description.
    pub message: String,
}

impl ComposeError {
    /// Wraps a message.
    pub fn new(m: impl Into<String>) -> ComposeError {
        ComposeError { message: m.into() }
    }
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "composition error: {}", self.message)
    }
}

impl std::error::Error for ComposeError {}

impl UserQuery {
    /// Builds a user query programmatically.
    pub fn new(
        doc_name: impl Into<String>,
        source: Path,
        var: impl Into<String>,
        body: Expr,
    ) -> UserQuery {
        UserQuery {
            var: var.into(),
            source,
            doc_name: doc_name.into(),
            body,
            wrapper: None,
        }
    }

    /// Parses the restricted concrete form, e.g.
    ///
    /// ```text
    /// <result> { for $x in doc("xmark")/site/people/person[@id = "person10"]
    ///            return $x } </result>
    /// ```
    pub fn parse(text: &str) -> Result<UserQuery, ComposeError> {
        let expr = parse_expr(text).map_err(|e| ComposeError::new(e.to_string()))?;
        Self::from_expr(expr)
    }

    fn from_expr(expr: Expr) -> Result<UserQuery, ComposeError> {
        // Optional <wrapper>{ flwor }</wrapper>
        let (wrapper, inner) = match expr {
            Expr::DirectElem {
                name,
                attrs,
                mut content,
            } if content.len() == 1 => (Some((name, attrs)), content.remove(0)),
            other => (None, other),
        };
        match inner {
            Expr::For { var, seq, body } => {
                let (doc_name, source) = match *seq {
                    Expr::PathExpr { base, path } => match *base {
                        Expr::Doc(name) => (name, path),
                        _ => return Err(ComposeError::new("user query must iterate doc(\"…\")/ρ")),
                    },
                    _ => {
                        return Err(ComposeError::new(
                            "user query must iterate a path expression",
                        ))
                    }
                };
                Ok(UserQuery {
                    var,
                    source,
                    doc_name,
                    body: *body,
                    wrapper,
                })
            }
            _ => Err(ComposeError::new(
                "user query must be `for $x in ρ (where …)? return exp`",
            )),
        }
    }

    /// Reconstructs the plain (uncomposed) query expression — what the
    /// naive composition evaluates against the transformed document.
    pub fn to_expr(&self) -> Expr {
        let inner = Expr::For {
            var: self.var.clone(),
            seq: Box::new(Expr::path(
                Expr::Doc(self.doc_name.clone()),
                self.source.clone(),
            )),
            body: Box::new(self.body.clone()),
        };
        match &self.wrapper {
            Some((name, attrs)) => Expr::DirectElem {
                name: name.clone(),
                attrs: attrs.clone(),
                content: vec![inner],
            },
            None => inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_minimal() {
        let q = UserQuery::parse("for $x in doc(\"d\")/site/people/person return $x").unwrap();
        assert_eq!(q.var, "x");
        assert_eq!(q.doc_name, "d");
        assert_eq!(q.source.to_string(), "site/people/person");
        assert!(q.wrapper.is_none());
        assert_eq!(q.body, Expr::Var("x".into()));
    }

    #[test]
    fn parse_with_wrapper_and_where() {
        let q = UserQuery::parse(
            "<result>{ for $x in doc(\"d\")/a/b where $x/c = 'v' return $x }</result>",
        )
        .unwrap();
        assert_eq!(q.wrapper.as_ref().unwrap().0, "result");
        assert!(matches!(q.body, Expr::If { .. }));
    }

    #[test]
    fn parse_example_41() {
        // The user query of Example 4.1: suppliers for keyboard.
        let q = UserQuery::parse(
            "<result>{ for $x in doc(\"foo\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
        )
        .unwrap();
        assert_eq!(q.source.steps.len(), 3);
    }

    #[test]
    fn parse_rejects_non_flwor() {
        assert!(UserQuery::parse("doc(\"d\")/a").is_err());
        assert!(UserQuery::parse("for $x in (1,2) return $x").is_err());
    }

    #[test]
    fn to_expr_roundtrip() {
        let q = UserQuery::parse("<r>{ for $x in doc(\"d\")/a where $x/b = '1' return $x }</r>")
            .unwrap();
        let e = q.to_expr();
        assert!(matches!(e, Expr::DirectElem { .. }));
        // Re-deriving the user query from the reconstruction agrees.
        let q2 = UserQuery::from_expr(e).unwrap();
        assert_eq!(q2.source.to_string(), q.source.to_string());
    }
}
