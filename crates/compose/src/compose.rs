//! The Compose Method (Section 4).
//!
//! Given a transform query `Qt` (with selecting NFA `Mp`) and a user
//! query `Q`, produce a single query `Qc` with `Qc(T) = Q(Qt(T))`. The
//! path expressions of `Q` are treated as *words* and run through `Mp`
//! (via the δ′ extensions for `*` and `//`); where the automaton's
//! progress is statically known the update is folded into the query:
//!
//! * a qualified state entered at a user step becomes a runtime branch
//!   `if (empty($y[q])) then F1 else F2` (Example 4.2 line 5);
//! * the final state entered at a user step applies the update to that
//!   binding: `()` for delete, compile-time–evaluated matches inside the
//!   constant element `e` for insert/replace continuations;
//! * a binding whose subtree may still contain selected nodes is wrapped
//!   in an inlined `topDown(Mp, S, Qt, $z)` call — registered as a native
//!   function on the XQuery engine (the paper includes `topDown` as a
//!   user-defined function in the rewritten query);
//! * steps where `Mp` is *disjoint* need no rewriting at all — the case
//!   that makes (U9, U1) in Fig. 15 so much faster than naive
//!   composition.
//!
//! Where a static account is impossible (a `//` user step whose
//! descendant closure could select or qualify *intermediate* nodes, a
//! user-step qualifier whose paths the update can reach, rename/label
//! collisions), we degrade gracefully: the *prefix subtree reached so
//! far* is transformed with the inlined `topDown` and the remainder of
//! the user query runs over it untouched. This "semi-fallback" keeps
//! `Qc` correct on all inputs while still confining the transform to the
//! part of the document the user query visits.

use xust_automata::{SelectingNfa, StateSet};
use xust_core::{top_down_subtree, InsertPos, TransformQuery, UpdateOp};
use xust_tree::Document;
use xust_xpath::{eval_path, Path, Qualifier, Step, StepKind};
use xust_xquery::{parse_expr, Engine, Expr, Item, QueryError, Store, Value};

use crate::user::{ComposeError, UserQuery};

/// A composed query: a standard-XQuery expression plus the inlined
/// `topDown` call sites it references.
#[derive(Debug, Clone)]
pub struct ComposedQuery {
    /// The composed expression `Qc` (references natives `xust:tdK`).
    pub expr: Expr,
    /// The transform it folds in.
    qt: TransformQuery,
    /// State sets captured by each `xust:tdK` call.
    calls: Vec<StateSet>,
    /// Number of semi-fallback sites (0 ⇒ fully static composition).
    pub fallback_sites: usize,
    doc_name: String,
}

impl ComposedQuery {
    /// Size of the composed expression — the paper argues it is linear in
    /// |Qt| + |Q|.
    pub fn size(&self) -> usize {
        self.expr.size()
    }

    /// Number of inlined `topDown` call sites.
    pub fn transform_sites(&self) -> usize {
        self.calls.len()
    }

    /// Registers the natives and evaluates `Qc` against `doc`, returning
    /// the result value serialized by the engine.
    pub fn execute_to_string(&self, doc: &Document) -> Result<String, ComposeError> {
        let mut engine = self.prepare(doc);
        let v = engine
            .eval_expr(&self.expr, &[])
            .map_err(|e| ComposeError::new(e.to_string()))?;
        Ok(engine.serialize_value(&v))
    }

    /// Evaluates `Qc` and materializes the (single-rooted) result.
    pub fn execute(&self, doc: &Document) -> Result<Document, ComposeError> {
        let mut engine = self.prepare(doc);
        let v = engine
            .eval_expr(&self.expr, &[])
            .map_err(|e| ComposeError::new(e.to_string()))?;
        engine
            .value_to_document(&v)
            .map_err(|e| ComposeError::new(e.to_string()))
    }

    fn prepare(&self, doc: &Document) -> Engine {
        let mut engine = Engine::new();
        engine.load_doc(self.doc_name.clone(), doc.clone());
        self.register_natives(&mut engine);
        engine
    }

    /// Registers the `xust:tdK` natives on an engine that already holds
    /// the queried document.
    pub fn register_natives(&self, engine: &mut Engine) {
        let nfa = SelectingNfa::new(&self.qt.path);
        for (k, states) in self.calls.iter().enumerate() {
            let nfa = nfa.clone();
            let states = states.clone();
            let qt = self.qt.clone();
            engine.register_native(call_name(k), move |store, args| {
                run_inlined_topdown(store, args, &nfa, &states, &qt)
            });
        }
    }

    /// Evaluates `Qc` against a pre-loaded engine (the document must be
    /// registered under the transform's `doc_name`). This is the fair
    /// fixture for benchmarks: both composition strategies then query the
    /// same loaded store, as in the paper's Qizx setup.
    pub fn execute_in_engine(&self, engine: &mut Engine) -> Result<String, ComposeError> {
        self.register_natives(engine);
        let v = engine
            .eval_expr(&self.expr, &[])
            .map_err(|e| ComposeError::new(e.to_string()))?;
        Ok(engine.serialize_value(&v))
    }
}

fn call_name(k: usize) -> String {
    format!("xust:td{k}")
}

/// The native body of an inlined `topDown(Mp, S, Qt, $z)` call.
fn run_inlined_topdown(
    store: &mut Store,
    args: &[Value],
    nfa: &SelectingNfa,
    states: &StateSet,
    qt: &TransformQuery,
) -> Result<Value, QueryError> {
    let arg = args
        .first()
        .ok_or_else(|| QueryError::new("xust:td needs one argument"))?;
    match arg.as_slice() {
        [] => Ok(vec![]),
        [Item::Node(d, n)] => {
            let src = std::mem::take(store.doc_mut(*d));
            let out = top_down_subtree(&src, *n, nfa, states, qt);
            *store.doc_mut(*d) = src;
            match out.root() {
                Some(_) => {
                    let id = store.add_anonymous(out);
                    let root = store.doc(id).root().expect("just checked");
                    Ok(vec![Item::Node(id, root)])
                }
                None => Ok(vec![]),
            }
        }
        [Item::DocNode(d)] => {
            // Whole-document transform (semi-fallback at step 0).
            let src = std::mem::take(store.doc_mut(*d));
            let out = xust_core::top_down(&src, qt);
            *store.doc_mut(*d) = src;
            let id = store.add_anonymous(out);
            Ok(vec![Item::DocNode(id)])
        }
        _ => Err(QueryError::new("xust:td expects a single node")),
    }
}

/// Composes `Q ∘ Qt` into a single query.
pub fn compose(qt: &TransformQuery, uq: &UserQuery) -> Result<ComposedQuery, ComposeError> {
    if qt.doc_name != uq.doc_name {
        return Err(ComposeError::new(format!(
            "transform reads doc(\"{}\") but user query reads doc(\"{}\")",
            qt.doc_name, uq.doc_name
        )));
    }
    let nfa = SelectingNfa::new(&qt.path);
    let mut g = Gen {
        nfa: &nfa,
        qt,
        uq,
        calls: Vec::new(),
        fallback_sites: 0,
        fresh: 0,
    };
    // Rename/replace collision: renamed (or replaced-in) nodes could start
    // matching user label tests by their *new* label even though the
    // original label never takes the corresponding NFA transition; no
    // static account, transform everything the query touches.
    let expr = if rename_collides(qt, uq) || replace_collides(qt, uq) || insert_collides(qt, uq) {
        g.semi_fallback(0, &nfa.initial(), Expr::Doc(uq.doc_name.clone()))
    } else {
        g.steps(0, nfa.initial(), Expr::Doc(uq.doc_name.clone()), false)
    };
    let inner = expr;
    let expr = match &uq.wrapper {
        Some((name, attrs)) => Expr::DirectElem {
            name: name.clone(),
            attrs: attrs.clone(),
            content: vec![inner],
        },
        None => inner,
    };
    Ok(ComposedQuery {
        expr,
        qt: qt.clone(),
        calls: g.calls,
        fallback_sites: g.fallback_sites,
        doc_name: uq.doc_name.clone(),
    })
}

fn rename_collides(qt: &TransformQuery, uq: &UserQuery) -> bool {
    let UpdateOp::Rename { name } = &qt.op else {
        return false;
    };
    user_mentions_label(uq, name.as_str())
}

/// `replace p with e` makes every selected node appear under e's root
/// label. A user step carrying that label could then match a node whose
/// *original* label never drives the NFA transition (e.g. `replace r/c
/// with <b/>` followed by `for $x in r/b`), so the per-step word
/// simulation is unsound and we must fall back.
fn replace_collides(qt: &TransformQuery, uq: &UserQuery) -> bool {
    let UpdateOp::Replace { elem } = &qt.op else {
        return false;
    };
    let Some(name) = elem.root().and_then(|r| elem.name(r)) else {
        return false;
    };
    user_mentions_label(uq, name)
}

/// Does the user source path mention `name` anywhere — as a step label,
/// or inside a step qualifier (qualifiers are evaluated against the
/// *original* document, so a label the update can mint must force the
/// fallback there too)? The return body is exempt: `tail()` binds `$x`
/// to the already-transformed subtree.
/// `insert e before|after p` makes e a *sibling* of each selected node,
/// so e can be matched by the same user step that matched the node —
/// including steps whose label never drives the corresponding NFA
/// transition (the replace-collision situation). Child positions
/// (`into` / `as first into`) are handled statically in `consumed`.
fn insert_collides(qt: &TransformQuery, uq: &UserQuery) -> bool {
    let UpdateOp::Insert { elem, pos } = &qt.op else {
        return false;
    };
    if !pos.is_sibling() {
        return false;
    }
    let Some(name) = elem.root().and_then(|r| elem.name(r)) else {
        return false;
    };
    user_mentions_label(uq, name)
}

fn user_mentions_label(uq: &UserQuery, name: &str) -> bool {
    uq.source.steps.iter().any(|s| step_mentions_label(s, name))
}

fn step_mentions_label(s: &Step, name: &str) -> bool {
    if matches!(&s.kind, StepKind::Label(l) if l == name) {
        return true;
    }
    s.qualifier
        .as_ref()
        .is_some_and(|q| qual_mentions_label(q, name))
}

fn qual_mentions_label(q: &Qualifier, name: &str) -> bool {
    match q {
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qual_mentions_label(a, name) || qual_mentions_label(b, name)
        }
        Qualifier::Not(a) => qual_mentions_label(a, name),
        Qualifier::LabelIs(l) => l == name,
        Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => {
            qp.path.steps.iter().any(|s| step_mentions_label(s, name))
        }
    }
}

struct Gen<'a> {
    nfa: &'a SelectingNfa,
    qt: &'a TransformQuery,
    uq: &'a UserQuery,
    calls: Vec<StateSet>,
    fallback_sites: usize,
    fresh: usize,
}

impl Gen<'_> {
    fn fresh_var(&mut self) -> String {
        self.fresh += 1;
        format!("y{}", self.fresh)
    }

    fn register_call(&mut self, states: &StateSet) -> String {
        self.calls.push(states.clone());
        call_name(self.calls.len() - 1)
    }

    /// Generates the remainder of the composed query from user step `i`,
    /// given automaton states `s` at the current binding and `prev`, the
    /// expression yielding that binding. `pending_desc` records a `//`
    /// user step waiting to be fused into the next labelled step.
    fn steps(&mut self, i: usize, s: StateSet, prev: Expr, pending_desc: bool) -> Expr {
        let user_steps = &self.uq.source.steps;
        if i == user_steps.len() {
            return self.tail(&s, prev);
        }
        let step = &user_steps[i];
        match &step.kind {
            StepKind::Descendant => {
                // δ′(S, //): everything reachable over any label sequence.
                // Whether a state gained by the closure actually holds at
                // a given binding depends on the labels of the unknown
                // intermediate nodes, so the step is only statically
                // composable when the closure is a fixpoint already.
                //
                // Even at a fixpoint, if the final state is reachable an
                // *intermediate* node skipped by `//` can be selected and
                // receive inserted content that the rest of the user path
                // would match inside — content no loop over the original
                // document can bind. (Delete/replace are safe: an
                // unconditionally-final previous step returned early in
                // `consumed`, and a conditional final breaks the fixpoint
                // in the qualifier-false branch. Rename is safe: `//`
                // skips labels, and bound renamed nodes are handled at
                // their own step.)
                let closure = self.nfa.desc_closure(&s);
                let insert_leak = matches!(self.qt.op, UpdateOp::Insert { .. })
                    && closure.contains(self.nfa.final_state);
                if closure == s && !insert_leak {
                    self.steps(i + 1, closure, prev, true)
                } else {
                    self.semi_fallback(i, &s, prev)
                }
            }
            StepKind::Label(_) | StepKind::Wildcard => {
                // The user-step qualifier is evaluated on the *original*
                // document inside the loop; that is only sound if the
                // update cannot reach the qualifier's paths.
                if let Some(q) = &step.qualifier {
                    if self.qualifier_affected(&s, q, pending_desc) {
                        return self.semi_fallback_desc(i, &s, prev, pending_desc);
                    }
                }
                let (entered, qualified) = self.enter_targets(&s, &step.kind, pending_desc);
                let prev_for_fallback = prev.clone();
                let var = self.fresh_var();
                let mut seq_steps = Vec::new();
                if pending_desc {
                    seq_steps.push(Step::plain(StepKind::Descendant));
                }
                seq_steps.push(step.clone());
                let seq = Expr::path(prev, Path { steps: seq_steps });

                let body = match qualified.as_slice() {
                    [] => self.consumed(i, self.close(&entered), &var),
                    [(t, q)] => {
                        let t = *t;
                        // Example 4.2 line 5: branch on the qualifier.
                        let with = self.close(&entered);
                        let without_vec: Vec<usize> =
                            entered.iter().copied().filter(|&x| x != t).collect();
                        let without = self.close(&without_vec);
                        let f2 = self.consumed(i, with, &var);
                        let f1 = self.consumed(i, without, &var);
                        Expr::if_then_else(
                            Expr::empty_call(Expr::Filter {
                                base: Box::new(Expr::var(&var)),
                                qualifier: q.clone(),
                            }),
                            f1,
                            f2,
                        )
                    }
                    _ => {
                        // Several qualifiers would need simultaneous
                        // branching — degrade.
                        return self.semi_fallback_desc(i, &s, prev_for_fallback, pending_desc);
                    }
                };
                Expr::For {
                    var,
                    seq: Box::new(seq),
                    body: Box::new(body),
                }
            }
        }
    }

    /// Handles the consequences of having consumed user step `i` with
    /// resulting states `s` at binding `$var` (the update's final-state
    /// actions of Section 4).
    fn consumed(&mut self, i: usize, s: StateSet, var: &str) -> Expr {
        let selected = s.contains(self.nfa.final_state);
        let remaining = &self.uq.source.steps[i + 1..];
        if selected {
            match &self.qt.op {
                UpdateOp::Delete => return Expr::empty(),
                UpdateOp::Replace { elem } => {
                    // e stands in *place* of the node: this step's node
                    // test re-matches against e's root (label collisions
                    // were excluded by `replace_collides`, qualified
                    // steps by `qualifier_affected`), and the remaining
                    // user path continues inside e — all decidable at
                    // compile time, so the whole contribution of this
                    // binding becomes a constant continuation rooted at
                    // step i.
                    return self.const_continuation(elem, &self.uq.source.steps[i..]);
                }
                UpdateOp::Insert { elem, pos } => {
                    // Where does e land, and which user steps does it face?
                    // * child positions (`into` / `as first into`): e is a
                    //   child of the selected node, matched by the *next*
                    //   user step — compile-time matches inside e continue
                    //   at `remaining` (empty ⇒ the tail's inlined topDown
                    //   splices e into `$x` itself).
                    // * sibling positions (`before` / `after`): e sits
                    //   beside the selected node and is re-matched by
                    //   *this* step, so the constant continuation starts
                    //   at step `i` (its node test and qualifier evaluate
                    //   against e at compile time).
                    let consts = if pos.is_sibling() {
                        Some(self.const_continuation(elem, &self.uq.source.steps[i..]))
                    } else if remaining.is_empty() {
                        None
                    } else {
                        Some(self.const_continuation(elem, remaining))
                    };
                    if let Some(consts) = consts {
                        // The insert at *this* binding is now fully
                        // accounted for by `consts`; drop the final state
                        // so downstream fallbacks / inlined topDown calls
                        // don't re-apply it (the final state has no
                        // outgoing transitions, so nothing else is lost).
                        let mut s_rest = s.clone();
                        s_rest.remove(self.nfa.final_state);
                        let normal = self.steps(i + 1, s_rest, Expr::var(var), false);
                        // Sequence order = document order of Qt(T).
                        return match pos {
                            InsertPos::LastInto | InsertPos::After => {
                                Expr::Seq(vec![normal, consts])
                            }
                            InsertPos::FirstInto | InsertPos::Before => {
                                Expr::Seq(vec![consts, normal])
                            }
                        };
                    }
                }
                UpdateOp::Rename { name } => {
                    // Collisions were excluded up front; a selected node
                    // that the user step matched by its *old* label no
                    // longer matches after the rename.
                    if let StepKind::Label(l) = &self.uq.source.steps[i].kind {
                        if l.as_str() != name.as_str() {
                            return Expr::empty();
                        }
                    }
                }
            }
        }
        self.steps(i + 1, s, Expr::var(var), false)
    }

    /// Compile-time evaluation of the remaining user path inside the
    /// constant element `e` — "the qualifier in Q′2 is already evaluated
    /// … at compile time" generalized to path continuations.
    fn const_continuation(&mut self, elem: &Document, remaining: &[Step]) -> Expr {
        let Some(e_root) = elem.root() else {
            return Expr::empty();
        };
        // e becomes a *child* of the updated node, so the first remaining
        // step is matched against e's root: wrap in a scratch parent.
        let mut wrapper = Document::new();
        let w_root = wrapper.create_element("xust-wrap");
        let copy = wrapper.deep_copy_from(elem, e_root);
        wrapper.append_child(w_root, copy);
        wrapper.set_root(w_root);
        let rest = Path {
            steps: remaining.to_vec(),
        };
        let matches = eval_path(&wrapper, w_root, &rest);
        let mut parts = Vec::new();
        for m in matches {
            if let Ok(e) = parse_expr(&wrapper.serialize_subtree(m)) {
                parts.push(Expr::let_in(self.uq.var.clone(), e, self.uq.body.clone()));
            }
        }
        Expr::Seq(parts)
    }

    /// The value-to-be-returned rewriting: binds `$x` to the (possibly
    /// transformed) node and applies the user body.
    fn tail(&mut self, s: &StateSet, prev: Expr) -> Expr {
        let needs_transform = !s.is_empty()
            && (s.contains(self.nfa.final_state) || s.iter().any(|id| self.state_live(id)));
        let value = if needs_transform {
            let name = self.register_call(s);
            Expr::Call {
                name,
                args: vec![prev],
            }
        } else {
            prev
        };
        Expr::let_in(self.uq.var.clone(), value, self.uq.body.clone())
    }

    fn state_live(&self, id: usize) -> bool {
        let st = &self.nfa.states[id];
        st.self_loop || st.star_trans.is_some() || st.label_trans.is_some() || st.eps.is_some()
    }

    /// Degraded composition: transform the subtree(s) reached so far with
    /// the inlined topDown, then run the remaining user path untouched.
    fn semi_fallback(&mut self, i: usize, s: &StateSet, prev: Expr) -> Expr {
        self.fallback_sites += 1;
        let name = self.register_call(s);
        let rest = Path {
            steps: self.uq.source.steps[i..].to_vec(),
        };
        let fz = self.fresh_var();
        let transformed = Expr::Call {
            name,
            args: vec![Expr::var(&fz)],
        };
        let inner = Expr::For {
            var: self.uq.var.clone(),
            seq: Box::new(Expr::path(transformed, rest)),
            body: Box::new(self.uq.body.clone()),
        };
        Expr::For {
            var: fz,
            seq: Box::new(prev),
            body: Box::new(inner),
        }
    }

    fn semi_fallback_desc(
        &mut self,
        i: usize,
        s: &StateSet,
        prev: Expr,
        pending_desc: bool,
    ) -> Expr {
        if pending_desc {
            // Re-attach the pending `//` to the residual path.
            let mut steps = vec![Step::plain(StepKind::Descendant)];
            steps.extend_from_slice(&self.uq.source.steps[i..]);
            self.fallback_sites += 1;
            let name = self.register_call(s);
            let fz = self.fresh_var();
            let transformed = Expr::Call {
                name,
                args: vec![Expr::var(&fz)],
            };
            let inner = Expr::For {
                var: self.uq.var.clone(),
                seq: Box::new(Expr::path(transformed, Path { steps })),
                body: Box::new(self.uq.body.clone()),
            };
            Expr::For {
                var: fz,
                seq: Box::new(prev),
                body: Box::new(inner),
            }
        } else {
            self.semi_fallback(i, s, prev)
        }
    }

    /// Targets entered by consuming one user letter from `s`, before
    /// ε-closure. Each conditional target carries the runtime check that
    /// gates it: its step qualifier, and — for a wildcard user step taking
    /// a *label* transition — a `label() = l` test, since only bindings
    /// with that label actually make the move.
    fn enter_targets(
        &self,
        s: &StateSet,
        kind: &StepKind,
        pending_desc: bool,
    ) -> (Vec<usize>, Vec<(usize, Qualifier)>) {
        // When a `//` was fused in, the effective source set is the
        // descendant closure, which `steps()` already applied: here `s`
        // is that closure.
        let _ = pending_desc;
        let mut entered: Vec<(usize, Option<Qualifier>)> = Vec::new();
        let push =
            |t: usize, label_cond: Option<&str>, entered: &mut Vec<(usize, Option<Qualifier>)>| {
                let mut cond = self.nfa.qualifier(t).cloned();
                if let Some(l) = label_cond {
                    let lab = Qualifier::LabelIs(l.to_string());
                    cond = Some(match cond {
                        Some(q) => Qualifier::and(lab, q),
                        None => lab,
                    });
                }
                if let Some(slot) = entered.iter_mut().find(|(x, _)| *x == t) {
                    // Entered both conditionally and unconditionally: the
                    // weaker (unconditional) entry wins only if genuinely
                    // unconditional; otherwise keep the first condition (the
                    // two paths are the same transition in our NFAs).
                    if cond.is_none() {
                        slot.1 = None;
                    }
                } else {
                    entered.push((t, cond));
                }
            };
        for id in s.iter() {
            let st = &self.nfa.states[id];
            if st.self_loop {
                push(id, None, &mut entered);
            }
            if let Some(t) = st.star_trans {
                push(t, None, &mut entered);
            }
            if let Some((l, t)) = &st.label_trans {
                match kind {
                    StepKind::Label(user_l) if l.as_str() == user_l => push(*t, None, &mut entered),
                    StepKind::Label(_) => {}
                    // A wildcard step only takes the transition when the
                    // bound node happens to carry the label.
                    StepKind::Wildcard => push(*t, Some(l.as_str()), &mut entered),
                    StepKind::Descendant => unreachable!("handled in steps()"),
                }
            }
        }
        let ids: Vec<usize> = entered.iter().map(|(t, _)| *t).collect();
        let qualified = entered
            .into_iter()
            .filter_map(|(t, cond)| cond.map(|q| (t, q)))
            .collect();
        (ids, qualified)
    }

    fn close(&self, entered: &[usize]) -> StateSet {
        let mut s = StateSet::new(self.nfa.len());
        for &t in entered {
            s.insert(t);
        }
        self.nfa.eps_closure(&mut s);
        s
    }

    /// Can the update reach any path mentioned in a user-step qualifier
    /// anchored at states `s`? (If so the qualifier's original-document
    /// evaluation would be unsound.)
    fn qualifier_affected(&self, s: &StateSet, q: &Qualifier, pending_desc: bool) -> bool {
        // The qualifier is evaluated at the *target* node of this step;
        // approximate its automaton context by one wildcard consumption
        // (superset of the label consumption).
        let mut at_node = self.nfa.next_states_wild(s);
        if pending_desc {
            at_node = self.nfa.desc_closure(&at_node);
        }
        // If the bound node itself can be selected: a replace rewrites it
        // wholesale; a child-position insert adds an element child, which
        // can only change qualifiers that look at child/descendant
        // *elements* (attribute and text() tests are untouched); a
        // sibling-position insert leaves the node's own downward-only
        // qualifier scope intact; a rename flips `label() = l` tests.
        if at_node.contains(self.nfa.final_state) {
            match &self.qt.op {
                UpdateOp::Replace { .. } => return true,
                UpdateOp::Insert { pos, .. } if !pos.is_sibling() && qual_has_element_path(q) => {
                    return true
                }
                UpdateOp::Rename { .. } if qual_has_label_test(q) => return true,
                _ => {}
            }
        }
        self.qual_walk_hits_final(&at_node, q)
    }

    fn qual_walk_hits_final(&self, s: &StateSet, q: &Qualifier) -> bool {
        match q {
            Qualifier::And(a, b) | Qualifier::Or(a, b) => {
                self.qual_walk_hits_final(s, a) || self.qual_walk_hits_final(s, b)
            }
            Qualifier::Not(a) => self.qual_walk_hits_final(s, a),
            Qualifier::LabelIs(_) => false,
            Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => {
                let mut cur = s.clone();
                for step in &qp.path.steps {
                    cur = match &step.kind {
                        StepKind::Label(l) => {
                            self.nfa.next_states_unchecked(&cur, xust_intern::intern(l))
                        }
                        StepKind::Wildcard => self.nfa.next_states_wild(&cur),
                        StepKind::Descendant => self.nfa.desc_closure(&cur),
                    };
                    if cur.contains(self.nfa.final_state) {
                        return true;
                    }
                    // Nested qualifiers inside the qualifier path.
                    if let Some(nested) = &step.qualifier {
                        if self.qual_walk_hits_final(&cur, nested) {
                            return true;
                        }
                    }
                    if cur.is_empty() {
                        break;
                    }
                }
                false
            }
        }
    }
}

/// Does the qualifier contain a `label() = l` test anywhere? (Rename can
/// flip those at a selected node.)
fn qual_has_label_test(q: &Qualifier) -> bool {
    match q {
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qual_has_label_test(a) || qual_has_label_test(b)
        }
        Qualifier::Not(a) => qual_has_label_test(a),
        Qualifier::LabelIs(_) => true,
        Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => qp
            .path
            .steps
            .iter()
            .any(|s| s.qualifier.as_ref().is_some_and(qual_has_label_test)),
    }
}

/// Does the qualifier contain a path atom that descends into element
/// children (as opposed to attribute-only or text()-only tests)?
fn qual_has_element_path(q: &Qualifier) -> bool {
    match q {
        Qualifier::And(a, b) | Qualifier::Or(a, b) => {
            qual_has_element_path(a) || qual_has_element_path(b)
        }
        Qualifier::Not(a) => qual_has_element_path(a),
        Qualifier::LabelIs(_) => false,
        Qualifier::Exists(qp) | Qualifier::Cmp(qp, _, _) => !qp.path.is_empty(),
    }
}
