#![warn(missing_docs)]
//! `xust-compose` — composition of user queries with transform queries
//! (Section 4 of *Querying XML with Update Syntax*).
//!
//! Given a transform query `Qt` and a user query
//! `Q = for $x in ρ where … return exp(…)`, [`compose`] produces a single
//! query `Qc` in (our subset of) standard XQuery with
//! `Qc(T) = Q(Qt(T))` — the key enabler for hypothetical queries and for
//! querying "updated" virtual views without materializing them.
//! [`naive_composition`] is the sequential baseline of Fig. 15.
//!
//! # Example (the paper's Examples 4.1/4.2)
//!
//! ```
//! use xust_tree::Document;
//! use xust_core::parse_transform;
//! use xust_compose::{compose, naive_composition, UserQuery};
//!
//! let doc = Document::parse(
//!     "<db><part><pname>keyboard</pname>\
//!      <supplier><sname>s1</sname><country>A</country></supplier>\
//!      <supplier><sname>s2</sname><country>B</country></supplier></part></db>",
//! ).unwrap();
//! // Qt: the security view deleting suppliers from country A.
//! let qt = parse_transform(
//!     r#"transform copy $a := doc("foo") modify do delete $a//supplier[country = 'A'] return $a"#,
//! ).unwrap();
//! // Q: suppliers for keyboard, over the view.
//! let q = UserQuery::parse(
//!     "<result>{ for $x in doc(\"foo\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
//! ).unwrap();
//! let qc = compose(&qt, &q).unwrap();
//! let composed = qc.execute(&doc).unwrap();
//! let sequential = naive_composition(&doc, &qt, &q).unwrap();
//! assert_eq!(composed.serialize(), sequential.serialize());
//! assert_eq!(
//!     composed.serialize(),
//!     "<result><supplier><sname>s2</sname><country>B</country></supplier></result>"
//! );
//! ```

mod compose;
mod naive;
pub mod stream;
mod user;

pub use compose::{compose, ComposedQuery};
pub use naive::{naive_composition, naive_composition_in_engine, naive_composition_to_string};
pub use stream::{compose_sax_files, compose_sax_str, compose_two_pass_sax, StreamComposeStats};
pub use user::{ComposeError, UserQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use xust_core::TransformQuery;
    use xust_tree::Document;
    use xust_xpath::parse_path;

    fn doc() -> Document {
        Document::parse(
            "<db><part><pname>keyboard</pname><supplier><sname>s1</sname><country>A</country><price>10</price></supplier><supplier><sname>s2</sname><country>B</country><price>20</price></supplier><part><pname>key</pname><supplier><sname>s3</sname><country>A</country></supplier></part></part><part><pname>mouse</pname><supplier><sname>s4</sname><country>B</country></supplier></part></db>",
        )
        .unwrap()
    }

    fn agree(qt: &TransformQuery, uq_text: &str) -> ComposedQuery {
        let uq = UserQuery::parse(uq_text).unwrap();
        let qc = compose(qt, &uq).unwrap();
        let composed = qc.execute_to_string(&doc()).unwrap();
        let sequential = naive_composition_to_string(&doc(), qt, &uq).unwrap();
        assert_eq!(
            composed,
            sequential,
            "Qc(T) != Q(Qt(T)) for {} {} / {uq_text}",
            qt.op.kind(),
            qt.path
        );
        qc
    }

    #[test]
    fn example_42_delete_supplier_by_country() {
        let qt = TransformQuery::delete("d", parse_path("//supplier[country = 'A']").unwrap());
        let qc = agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
        );
        // Fully static: one qualifier branch, no fallback.
        assert_eq!(qc.fallback_sites, 0);
    }

    #[test]
    fn example_43_q1_delete_with_qualifier() {
        // Q1: delete a/b[q]; Q′1: for $x in a/b/c.
        let d = Document::parse("<a><b><flag/><c>1</c></b><b><c>2</c></b></a>").unwrap();
        let qt = TransformQuery::delete("f", parse_path("a/b[flag]").unwrap());
        let uq = UserQuery::parse("<r>{ for $x in doc(\"f\")/a/b/c return $x }</r>").unwrap();
        let qc = compose(&qt, &uq).unwrap();
        assert_eq!(qc.fallback_sites, 0);
        let got = qc.execute(&d).unwrap();
        assert_eq!(got.serialize(), "<r><c>2</c></r>");
        let seq = naive_composition(&d, &qt, &uq).unwrap();
        assert_eq!(got.serialize(), seq.serialize());
    }

    #[test]
    fn example_43_q2_qualifier_affected_by_delete() {
        // Q2: delete a/b/c; Q′2: for $x in a/b[not(./c = 'A')] — the
        // user qualifier mentions the deleted c's; must still agree
        // (via semi-fallback where the paper folds it at compile time).
        let d = Document::parse("<a><b><c>A</c></b><b><c>B</c></b><b/></a>").unwrap();
        let qt = TransformQuery::delete("f", parse_path("a/b/c").unwrap());
        let uq = UserQuery::parse("<r>{ for $x in doc(\"f\")/a/b[not(c = 'A')] return $x }</r>")
            .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        let got = qc.execute(&d).unwrap();
        let seq = naive_composition(&d, &qt, &uq).unwrap();
        assert_eq!(got.serialize(), seq.serialize());
        // All three b's survive with c deleted.
        assert_eq!(got.serialize(), "<r><b/><b/><b/></r>");
    }

    #[test]
    fn example_43_q3_insert_needs_inlined_topdown() {
        // Q3: insert e into a//c; Q′3: for $x in a/b return $x — the
        // returned subtree may contain c's, so topDown is inlined.
        let d = Document::parse("<a><b><c>x</c></b><b>plain</b></a>").unwrap();
        let qt = TransformQuery::insert(
            "f",
            parse_path("a//c").unwrap(),
            Document::parse("<e/>").unwrap(),
        );
        let uq = UserQuery::parse("<r>{ for $x in doc(\"f\")/a/b return $x }</r>").unwrap();
        let qc = compose(&qt, &uq).unwrap();
        assert!(qc.transform_sites() >= 1, "expected an inlined topDown");
        let got = qc.execute(&d).unwrap();
        let seq = naive_composition(&d, &qt, &uq).unwrap();
        assert_eq!(got.serialize(), seq.serialize());
        assert_eq!(got.serialize(), "<r><b><c>x<e/></c></b><b>plain</b></r>");
    }

    #[test]
    fn disjoint_paths_no_rewriting() {
        // The (U9, U1) effect: transform path disjoint from user path.
        let qt = TransformQuery::insert(
            "d",
            parse_path("db/zone//item[location = 'US']").unwrap(),
            Document::parse("<x/>").unwrap(),
        );
        let qc = agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part/pname return $x }</result>",
        );
        assert_eq!(qc.transform_sites(), 0, "disjoint ⇒ no transform at all");
        assert_eq!(qc.fallback_sites, 0);
    }

    #[test]
    fn insert_at_bound_node_appends_constant() {
        // Final state at the user's last step: e appended to $x itself.
        let qt = TransformQuery::insert(
            "d",
            parse_path("db/part[pname = 'mouse']").unwrap(),
            Document::parse("<note>n</note>").unwrap(),
        );
        agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part return $x }</result>",
        );
    }

    #[test]
    fn insert_with_continuation_into_e() {
        // Final state mid-path: the user path continues *into* e.
        let qt = TransformQuery::insert(
            "d",
            parse_path("db/part").unwrap(),
            Document::parse("<supplier><sname>inserted</sname></supplier>").unwrap(),
        );
        let qc = agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part/supplier/sname return $x }</result>",
        );
        let got = qc.execute_to_string(&doc()).unwrap();
        assert_eq!(got.matches("inserted").count(), 2, "one per top-level part");
    }

    #[test]
    fn replace_at_bound_node() {
        let qt = TransformQuery::replace(
            "d",
            parse_path("//supplier[country = 'A']").unwrap(),
            Document::parse("<redacted/>").unwrap(),
        );
        agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
        );
    }

    #[test]
    fn rename_non_colliding() {
        let qt = TransformQuery::rename("d", parse_path("//supplier").unwrap(), "vendor");
        agree(
            &qt,
            "<result>{ for $x in doc(\"d\")/db/part/pname return $x }</result>",
        );
    }

    #[test]
    fn rename_colliding_forces_fallback() {
        let qt = TransformQuery::rename("d", parse_path("//supplier").unwrap(), "part");
        let uq = UserQuery::parse("<result>{ for $x in doc(\"d\")/db/part return $x }</result>")
            .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        assert!(qc.fallback_sites >= 1);
        let got = qc.execute_to_string(&doc()).unwrap();
        let seq = naive_composition_to_string(&doc(), &qt, &uq).unwrap();
        assert_eq!(got, seq);
    }

    #[test]
    fn descendant_user_step_with_qualified_transform() {
        // The (U9, U4) shape: user `//item`-style step; transform
        // qualifies the same nodes — requires the semi-fallback but must
        // stay correct, including on *nested* matches.
        let d = Document::parse(
            "<a><zone><item><location>US</location><item><location>EU</location></item></item></zone></a>",
        )
        .unwrap();
        let qt = TransformQuery::delete("d", parse_path("a/zone//item[location = 'US']").unwrap());
        let uq =
            UserQuery::parse("<r>{ for $x in doc(\"d\")/a/zone//item return $x }</r>").unwrap();
        let qc = compose(&qt, &uq).unwrap();
        let got = qc.execute(&d).unwrap();
        let seq = naive_composition(&d, &qt, &uq).unwrap();
        // The US item is deleted along with its nested EU item.
        assert_eq!(got.serialize(), seq.serialize());
        assert_eq!(got.serialize(), "<r/>");
    }

    #[test]
    fn where_clause_on_transformed_binding() {
        // The where clause must see the *transformed* subtree: delete the
        // price, then filter on its absence.
        let qt = TransformQuery::delete("d", parse_path("//price").unwrap());
        let uq = UserQuery::parse(
            "<r>{ for $x in doc(\"d\")/db/part/supplier where empty($x/price) return $x/sname }</r>",
        )
        .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        let got = qc.execute(&doc()).unwrap();
        let seq = naive_composition(&doc(), &qt, &uq).unwrap();
        assert_eq!(got.serialize(), seq.serialize());
        // Every supplier on db/part/supplier matches after the delete
        // (the nested part's supplier is not on the path).
        assert_eq!(got.serialize().matches("<sname>").count(), 3);
    }

    #[test]
    fn composed_query_size_linear() {
        let qt = TransformQuery::delete("d", parse_path("//supplier[country = 'A']").unwrap());
        let uq = UserQuery::parse(
            "<result>{ for $x in doc(\"d\")/db/part[pname = 'keyboard']/supplier return $x }</result>",
        )
        .unwrap();
        let qc = compose(&qt, &uq).unwrap();
        // |Qc| is linear in |Qt| + |Q| (coarse bound, the paper's claim).
        assert!(qc.size() < 40, "composed size {}", qc.size());
    }

    #[test]
    fn mismatched_doc_names_rejected() {
        let qt = TransformQuery::delete("one", parse_path("//x").unwrap());
        let uq = UserQuery::parse("for $x in doc(\"two\")/a return $x").unwrap();
        assert!(compose(&qt, &uq).is_err());
    }
}
