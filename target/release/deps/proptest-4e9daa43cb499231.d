/root/repo/target/release/deps/proptest-4e9daa43cb499231.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/proptest-4e9daa43cb499231: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
