/root/repo/target/release/deps/xust_secview-82843a02ee673551.d: crates/secview/src/lib.rs

/root/repo/target/release/deps/xust_secview-82843a02ee673551: crates/secview/src/lib.rs

crates/secview/src/lib.rs:
