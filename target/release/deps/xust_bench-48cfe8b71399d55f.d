/root/repo/target/release/deps/xust_bench-48cfe8b71399d55f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/xust_bench-48cfe8b71399d55f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
