/root/repo/target/release/deps/proptest-4448bd1f6f6cb63a.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-4448bd1f6f6cb63a.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-4448bd1f6f6cb63a.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:
