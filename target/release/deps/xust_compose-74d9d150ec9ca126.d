/root/repo/target/release/deps/xust_compose-74d9d150ec9ca126.d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/release/deps/libxust_compose-74d9d150ec9ca126.rlib: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/release/deps/libxust_compose-74d9d150ec9ca126.rmeta: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

crates/compose/src/lib.rs:
crates/compose/src/compose.rs:
crates/compose/src/naive.rs:
crates/compose/src/stream.rs:
crates/compose/src/user.rs:
