/root/repo/target/release/deps/xust_serve-96f23326622ce703.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

/root/repo/target/release/deps/xust_serve-96f23326622ce703: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/error.rs:
crates/serve/src/executor.rs:
crates/serve/src/planner.rs:
crates/serve/src/registry.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
