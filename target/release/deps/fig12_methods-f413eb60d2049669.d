/root/repo/target/release/deps/fig12_methods-f413eb60d2049669.d: crates/bench/benches/fig12_methods.rs

/root/repo/target/release/deps/fig12_methods-f413eb60d2049669: crates/bench/benches/fig12_methods.rs

crates/bench/benches/fig12_methods.rs:
