/root/repo/target/release/deps/rand-31dcf43768cc4062.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-31dcf43768cc4062.rlib: vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-31dcf43768cc4062.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
