/root/repo/target/release/deps/xust_xpath-7256436980917c02.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/release/deps/libxust_xpath-7256436980917c02.rlib: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/release/deps/libxust_xpath-7256436980917c02.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/eval.rs:
crates/xpath/src/lexer.rs:
crates/xpath/src/normalize.rs:
crates/xpath/src/parser.rs:
