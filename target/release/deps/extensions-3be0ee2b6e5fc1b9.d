/root/repo/target/release/deps/extensions-3be0ee2b6e5fc1b9.d: crates/bench/benches/extensions.rs

/root/repo/target/release/deps/extensions-3be0ee2b6e5fc1b9: crates/bench/benches/extensions.rs

crates/bench/benches/extensions.rs:
