/root/repo/target/release/deps/experiments-682c2c0d8373dbb6.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-682c2c0d8373dbb6: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
