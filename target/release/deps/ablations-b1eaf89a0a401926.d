/root/repo/target/release/deps/ablations-b1eaf89a0a401926.d: crates/bench/benches/ablations.rs

/root/repo/target/release/deps/ablations-b1eaf89a0a401926: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
