/root/repo/target/release/deps/xust-6fa5463e6cb48d35.d: src/lib.rs

/root/repo/target/release/deps/libxust-6fa5463e6cb48d35.rlib: src/lib.rs

/root/repo/target/release/deps/libxust-6fa5463e6cb48d35.rmeta: src/lib.rs

src/lib.rs:
