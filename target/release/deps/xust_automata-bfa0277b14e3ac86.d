/root/repo/target/release/deps/xust_automata-bfa0277b14e3ac86.d: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/release/deps/libxust_automata-bfa0277b14e3ac86.rlib: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/release/deps/libxust_automata-bfa0277b14e3ac86.rmeta: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

crates/automata/src/lib.rs:
crates/automata/src/filtering.rs:
crates/automata/src/selecting.rs:
crates/automata/src/stateset.rs:
