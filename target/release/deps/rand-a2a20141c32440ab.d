/root/repo/target/release/deps/rand-a2a20141c32440ab.d: vendor/rand/src/lib.rs

/root/repo/target/release/deps/rand-a2a20141c32440ab: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
