/root/repo/target/release/deps/xust_sax-2f09b8981382f93b.d: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/release/deps/xust_sax-2f09b8981382f93b: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

crates/sax/src/lib.rs:
crates/sax/src/error.rs:
crates/sax/src/escape.rs:
crates/sax/src/event.rs:
crates/sax/src/parser.rs:
crates/sax/src/writer.rs:
