/root/repo/target/release/deps/experiments-c7ee0f7393bb797d.d: crates/bench/src/bin/experiments.rs

/root/repo/target/release/deps/experiments-c7ee0f7393bb797d: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
