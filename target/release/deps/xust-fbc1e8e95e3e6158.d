/root/repo/target/release/deps/xust-fbc1e8e95e3e6158.d: src/bin/xust.rs

/root/repo/target/release/deps/xust-fbc1e8e95e3e6158: src/bin/xust.rs

src/bin/xust.rs:
