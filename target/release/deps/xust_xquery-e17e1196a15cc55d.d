/root/repo/target/release/deps/xust_xquery-e17e1196a15cc55d.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/release/deps/xust_xquery-e17e1196a15cc55d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/error.rs:
crates/xquery/src/eval.rs:
crates/xquery/src/functions.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/value.rs:
