/root/repo/target/release/deps/criterion-0922e2e06d6eb240.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0922e2e06d6eb240.rlib: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-0922e2e06d6eb240.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
