/root/repo/target/release/deps/xust-33e40aa603dae8be.d: src/bin/xust.rs

/root/repo/target/release/deps/xust-33e40aa603dae8be: src/bin/xust.rs

src/bin/xust.rs:
