/root/repo/target/release/deps/fig15_compose-1793fb6b2da0441d.d: crates/bench/benches/fig15_compose.rs

/root/repo/target/release/deps/fig15_compose-1793fb6b2da0441d: crates/bench/benches/fig15_compose.rs

crates/bench/benches/fig15_compose.rs:
