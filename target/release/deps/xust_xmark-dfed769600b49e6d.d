/root/repo/target/release/deps/xust_xmark-dfed769600b49e6d.d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/release/deps/xust_xmark-dfed769600b49e6d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

crates/xmark/src/lib.rs:
crates/xmark/src/config.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/sink.rs:
crates/xmark/src/vocab.rs:
