/root/repo/target/release/deps/xust_tree-e9e410cb50b37da0.d: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

/root/repo/target/release/deps/libxust_tree-e9e410cb50b37da0.rlib: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

/root/repo/target/release/deps/libxust_tree-e9e410cb50b37da0.rmeta: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

crates/tree/src/lib.rs:
crates/tree/src/build.rs:
crates/tree/src/document.rs:
crates/tree/src/eq.rs:
crates/tree/src/iter.rs:
crates/tree/src/node.rs:
crates/tree/src/parse.rs:
crates/tree/src/serialize.rs:
