/root/repo/target/release/deps/xust_xmark-dc90b520176a22a7.d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/release/deps/libxust_xmark-dc90b520176a22a7.rlib: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/release/deps/libxust_xmark-dc90b520176a22a7.rmeta: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

crates/xmark/src/lib.rs:
crates/xmark/src/config.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/sink.rs:
crates/xmark/src/vocab.rs:
