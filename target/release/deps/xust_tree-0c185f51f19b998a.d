/root/repo/target/release/deps/xust_tree-0c185f51f19b998a.d: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

/root/repo/target/release/deps/xust_tree-0c185f51f19b998a: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

crates/tree/src/lib.rs:
crates/tree/src/build.rs:
crates/tree/src/document.rs:
crates/tree/src/eq.rs:
crates/tree/src/iter.rs:
crates/tree/src/node.rs:
crates/tree/src/parse.rs:
crates/tree/src/serialize.rs:
