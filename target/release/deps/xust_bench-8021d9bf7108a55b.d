/root/repo/target/release/deps/xust_bench-8021d9bf7108a55b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxust_bench-8021d9bf7108a55b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libxust_bench-8021d9bf7108a55b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
