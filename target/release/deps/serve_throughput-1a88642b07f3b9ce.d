/root/repo/target/release/deps/serve_throughput-1a88642b07f3b9ce.d: crates/bench/benches/serve_throughput.rs

/root/repo/target/release/deps/serve_throughput-1a88642b07f3b9ce: crates/bench/benches/serve_throughput.rs

crates/bench/benches/serve_throughput.rs:
