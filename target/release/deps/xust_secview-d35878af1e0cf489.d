/root/repo/target/release/deps/xust_secview-d35878af1e0cf489.d: crates/secview/src/lib.rs

/root/repo/target/release/deps/libxust_secview-d35878af1e0cf489.rlib: crates/secview/src/lib.rs

/root/repo/target/release/deps/libxust_secview-d35878af1e0cf489.rmeta: crates/secview/src/lib.rs

crates/secview/src/lib.rs:
