/root/repo/target/release/deps/xust-a21919506560823a.d: src/lib.rs

/root/repo/target/release/deps/xust-a21919506560823a: src/lib.rs

src/lib.rs:
