/root/repo/target/release/deps/fig14_sax_large-fbab8a3ba3c06977.d: crates/bench/benches/fig14_sax_large.rs

/root/repo/target/release/deps/fig14_sax_large-fbab8a3ba3c06977: crates/bench/benches/fig14_sax_large.rs

crates/bench/benches/fig14_sax_large.rs:
