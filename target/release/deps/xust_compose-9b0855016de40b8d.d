/root/repo/target/release/deps/xust_compose-9b0855016de40b8d.d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/release/deps/xust_compose-9b0855016de40b8d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

crates/compose/src/lib.rs:
crates/compose/src/compose.rs:
crates/compose/src/naive.rs:
crates/compose/src/stream.rs:
crates/compose/src/user.rs:
