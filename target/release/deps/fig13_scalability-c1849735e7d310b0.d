/root/repo/target/release/deps/fig13_scalability-c1849735e7d310b0.d: crates/bench/benches/fig13_scalability.rs

/root/repo/target/release/deps/fig13_scalability-c1849735e7d310b0: crates/bench/benches/fig13_scalability.rs

crates/bench/benches/fig13_scalability.rs:
