/root/repo/target/release/deps/xust_automata-7829f84d6c753b97.d: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/release/deps/xust_automata-7829f84d6c753b97: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

crates/automata/src/lib.rs:
crates/automata/src/filtering.rs:
crates/automata/src/selecting.rs:
crates/automata/src/stateset.rs:
