/root/repo/target/release/deps/xust_xquery-7e3acc44c2956b09.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/release/deps/libxust_xquery-7e3acc44c2956b09.rlib: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/release/deps/libxust_xquery-7e3acc44c2956b09.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/error.rs:
crates/xquery/src/eval.rs:
crates/xquery/src/functions.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/value.rs:
