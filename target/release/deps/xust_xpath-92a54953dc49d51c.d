/root/repo/target/release/deps/xust_xpath-92a54953dc49d51c.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/release/deps/xust_xpath-92a54953dc49d51c: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/eval.rs:
crates/xpath/src/lexer.rs:
crates/xpath/src/normalize.rs:
crates/xpath/src/parser.rs:
