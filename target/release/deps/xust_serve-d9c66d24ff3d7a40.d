/root/repo/target/release/deps/xust_serve-d9c66d24ff3d7a40.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

/root/repo/target/release/deps/libxust_serve-d9c66d24ff3d7a40.rlib: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

/root/repo/target/release/deps/libxust_serve-d9c66d24ff3d7a40.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/error.rs:
crates/serve/src/executor.rs:
crates/serve/src/planner.rs:
crates/serve/src/registry.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
