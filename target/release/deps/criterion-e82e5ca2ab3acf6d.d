/root/repo/target/release/deps/criterion-e82e5ca2ab3acf6d.d: vendor/criterion/src/lib.rs

/root/repo/target/release/deps/criterion-e82e5ca2ab3acf6d: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
