/root/repo/target/release/deps/xust_sax-696fdc47c8e87739.d: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/release/deps/libxust_sax-696fdc47c8e87739.rlib: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/release/deps/libxust_sax-696fdc47c8e87739.rmeta: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

crates/sax/src/lib.rs:
crates/sax/src/error.rs:
crates/sax/src/escape.rs:
crates/sax/src/event.rs:
crates/sax/src/parser.rs:
crates/sax/src/writer.rs:
