/root/repo/target/release/deps/xust_core-cd75347d9da93d37.d: crates/core/src/lib.rs crates/core/src/bottomup.rs crates/core/src/copy_update.rs crates/core/src/engine.rs crates/core/src/multi.rs crates/core/src/multi_sax.rs crates/core/src/naive.rs crates/core/src/prepared.rs crates/core/src/query.rs crates/core/src/sax2pass.rs crates/core/src/topdown.rs crates/core/src/twopass.rs

/root/repo/target/release/deps/libxust_core-cd75347d9da93d37.rlib: crates/core/src/lib.rs crates/core/src/bottomup.rs crates/core/src/copy_update.rs crates/core/src/engine.rs crates/core/src/multi.rs crates/core/src/multi_sax.rs crates/core/src/naive.rs crates/core/src/prepared.rs crates/core/src/query.rs crates/core/src/sax2pass.rs crates/core/src/topdown.rs crates/core/src/twopass.rs

/root/repo/target/release/deps/libxust_core-cd75347d9da93d37.rmeta: crates/core/src/lib.rs crates/core/src/bottomup.rs crates/core/src/copy_update.rs crates/core/src/engine.rs crates/core/src/multi.rs crates/core/src/multi_sax.rs crates/core/src/naive.rs crates/core/src/prepared.rs crates/core/src/query.rs crates/core/src/sax2pass.rs crates/core/src/topdown.rs crates/core/src/twopass.rs

crates/core/src/lib.rs:
crates/core/src/bottomup.rs:
crates/core/src/copy_update.rs:
crates/core/src/engine.rs:
crates/core/src/multi.rs:
crates/core/src/multi_sax.rs:
crates/core/src/naive.rs:
crates/core/src/prepared.rs:
crates/core/src/query.rs:
crates/core/src/sax2pass.rs:
crates/core/src/topdown.rs:
crates/core/src/twopass.rs:
