/root/repo/target/debug/examples/security_view-0e004306aa8998d5.d: examples/security_view.rs

/root/repo/target/debug/examples/security_view-0e004306aa8998d5: examples/security_view.rs

examples/security_view.rs:
