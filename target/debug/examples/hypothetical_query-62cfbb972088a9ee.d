/root/repo/target/debug/examples/hypothetical_query-62cfbb972088a9ee.d: examples/hypothetical_query.rs Cargo.toml

/root/repo/target/debug/examples/libhypothetical_query-62cfbb972088a9ee.rmeta: examples/hypothetical_query.rs Cargo.toml

examples/hypothetical_query.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
