/root/repo/target/debug/examples/update_virtual_view-fd7222153bad7710.d: examples/update_virtual_view.rs Cargo.toml

/root/repo/target/debug/examples/libupdate_virtual_view-fd7222153bad7710.rmeta: examples/update_virtual_view.rs Cargo.toml

examples/update_virtual_view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
