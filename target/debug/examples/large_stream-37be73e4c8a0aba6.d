/root/repo/target/debug/examples/large_stream-37be73e4c8a0aba6.d: examples/large_stream.rs

/root/repo/target/debug/examples/large_stream-37be73e4c8a0aba6: examples/large_stream.rs

examples/large_stream.rs:
