/root/repo/target/debug/examples/policy_views-7f4702ebbcce394e.d: examples/policy_views.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_views-7f4702ebbcce394e.rmeta: examples/policy_views.rs Cargo.toml

examples/policy_views.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
