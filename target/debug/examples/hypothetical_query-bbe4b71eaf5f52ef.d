/root/repo/target/debug/examples/hypothetical_query-bbe4b71eaf5f52ef.d: examples/hypothetical_query.rs

/root/repo/target/debug/examples/hypothetical_query-bbe4b71eaf5f52ef: examples/hypothetical_query.rs

examples/hypothetical_query.rs:
