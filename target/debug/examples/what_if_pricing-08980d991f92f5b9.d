/root/repo/target/debug/examples/what_if_pricing-08980d991f92f5b9.d: examples/what_if_pricing.rs Cargo.toml

/root/repo/target/debug/examples/libwhat_if_pricing-08980d991f92f5b9.rmeta: examples/what_if_pricing.rs Cargo.toml

examples/what_if_pricing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
