/root/repo/target/debug/examples/multi_update-9179d703f7bcdb8c.d: examples/multi_update.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_update-9179d703f7bcdb8c.rmeta: examples/multi_update.rs Cargo.toml

examples/multi_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
