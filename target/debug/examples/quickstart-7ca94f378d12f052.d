/root/repo/target/debug/examples/quickstart-7ca94f378d12f052.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7ca94f378d12f052.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
