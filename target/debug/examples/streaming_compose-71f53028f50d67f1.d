/root/repo/target/debug/examples/streaming_compose-71f53028f50d67f1.d: examples/streaming_compose.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_compose-71f53028f50d67f1.rmeta: examples/streaming_compose.rs Cargo.toml

examples/streaming_compose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
