/root/repo/target/debug/examples/update_virtual_view-bb02a927e4a07f0e.d: examples/update_virtual_view.rs

/root/repo/target/debug/examples/update_virtual_view-bb02a927e4a07f0e: examples/update_virtual_view.rs

examples/update_virtual_view.rs:
