/root/repo/target/debug/examples/multi_update-d855f0b51bc3fd54.d: examples/multi_update.rs

/root/repo/target/debug/examples/multi_update-d855f0b51bc3fd54: examples/multi_update.rs

examples/multi_update.rs:
