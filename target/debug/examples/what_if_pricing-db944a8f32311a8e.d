/root/repo/target/debug/examples/what_if_pricing-db944a8f32311a8e.d: examples/what_if_pricing.rs

/root/repo/target/debug/examples/what_if_pricing-db944a8f32311a8e: examples/what_if_pricing.rs

examples/what_if_pricing.rs:
