/root/repo/target/debug/examples/message_transform-a26b5d7b550aad1d.d: examples/message_transform.rs Cargo.toml

/root/repo/target/debug/examples/libmessage_transform-a26b5d7b550aad1d.rmeta: examples/message_transform.rs Cargo.toml

examples/message_transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
