/root/repo/target/debug/examples/security_view-251a587671b94069.d: examples/security_view.rs Cargo.toml

/root/repo/target/debug/examples/libsecurity_view-251a587671b94069.rmeta: examples/security_view.rs Cargo.toml

examples/security_view.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
