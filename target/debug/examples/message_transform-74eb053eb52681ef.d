/root/repo/target/debug/examples/message_transform-74eb053eb52681ef.d: examples/message_transform.rs

/root/repo/target/debug/examples/message_transform-74eb053eb52681ef: examples/message_transform.rs

examples/message_transform.rs:
