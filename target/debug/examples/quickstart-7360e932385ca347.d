/root/repo/target/debug/examples/quickstart-7360e932385ca347.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7360e932385ca347: examples/quickstart.rs

examples/quickstart.rs:
