/root/repo/target/debug/examples/streaming_compose-1d5a134bf289346c.d: examples/streaming_compose.rs

/root/repo/target/debug/examples/streaming_compose-1d5a134bf289346c: examples/streaming_compose.rs

examples/streaming_compose.rs:
