/root/repo/target/debug/examples/large_stream-56653017069511c7.d: examples/large_stream.rs Cargo.toml

/root/repo/target/debug/examples/liblarge_stream-56653017069511c7.rmeta: examples/large_stream.rs Cargo.toml

examples/large_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
