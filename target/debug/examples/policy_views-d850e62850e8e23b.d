/root/repo/target/debug/examples/policy_views-d850e62850e8e23b.d: examples/policy_views.rs

/root/repo/target/debug/examples/policy_views-d850e62850e8e23b: examples/policy_views.rs

examples/policy_views.rs:
