/root/repo/target/debug/deps/equivalence-d369d0fdd5679de6.d: tests/equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libequivalence-d369d0fdd5679de6.rmeta: tests/equivalence.rs Cargo.toml

tests/equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
