/root/repo/target/debug/deps/xquery_golden-3d86b01ad795393a.d: tests/xquery_golden.rs

/root/repo/target/debug/deps/xquery_golden-3d86b01ad795393a: tests/xquery_golden.rs

tests/xquery_golden.rs:
