/root/repo/target/debug/deps/multi_update-1d33ac3d10590b34.d: tests/multi_update.rs Cargo.toml

/root/repo/target/debug/deps/libmulti_update-1d33ac3d10590b34.rmeta: tests/multi_update.rs Cargo.toml

tests/multi_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
