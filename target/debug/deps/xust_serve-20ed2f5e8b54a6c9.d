/root/repo/target/debug/deps/xust_serve-20ed2f5e8b54a6c9.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libxust_serve-20ed2f5e8b54a6c9.rmeta: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs Cargo.toml

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/error.rs:
crates/serve/src/executor.rs:
crates/serve/src/planner.rs:
crates/serve/src/registry.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
