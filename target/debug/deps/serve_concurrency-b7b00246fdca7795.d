/root/repo/target/debug/deps/serve_concurrency-b7b00246fdca7795.d: tests/serve_concurrency.rs

/root/repo/target/debug/deps/serve_concurrency-b7b00246fdca7795: tests/serve_concurrency.rs

tests/serve_concurrency.rs:
