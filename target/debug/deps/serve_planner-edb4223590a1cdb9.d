/root/repo/target/debug/deps/serve_planner-edb4223590a1cdb9.d: tests/serve_planner.rs

/root/repo/target/debug/deps/serve_planner-edb4223590a1cdb9: tests/serve_planner.rs

tests/serve_planner.rs:
