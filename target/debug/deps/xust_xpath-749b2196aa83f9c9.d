/root/repo/target/debug/deps/xust_xpath-749b2196aa83f9c9.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/debug/deps/libxust_xpath-749b2196aa83f9c9.rlib: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/debug/deps/libxust_xpath-749b2196aa83f9c9.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/eval.rs:
crates/xpath/src/lexer.rs:
crates/xpath/src/normalize.rs:
crates/xpath/src/parser.rs:
