/root/repo/target/debug/deps/xust-a991f7d1f49d1cea.d: src/bin/xust.rs

/root/repo/target/debug/deps/xust-a991f7d1f49d1cea: src/bin/xust.rs

src/bin/xust.rs:
