/root/repo/target/debug/deps/serve_throughput-0048b2ea222677ba.d: crates/bench/benches/serve_throughput.rs Cargo.toml

/root/repo/target/debug/deps/libserve_throughput-0048b2ea222677ba.rmeta: crates/bench/benches/serve_throughput.rs Cargo.toml

crates/bench/benches/serve_throughput.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
