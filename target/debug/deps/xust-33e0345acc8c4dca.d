/root/repo/target/debug/deps/xust-33e0345acc8c4dca.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxust-33e0345acc8c4dca.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
