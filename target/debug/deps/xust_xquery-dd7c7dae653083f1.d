/root/repo/target/debug/deps/xust_xquery-dd7c7dae653083f1.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libxust_xquery-dd7c7dae653083f1.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs Cargo.toml

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/error.rs:
crates/xquery/src/eval.rs:
crates/xquery/src/functions.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
