/root/repo/target/debug/deps/secview_properties-a9169cdb7edc62b0.d: tests/secview_properties.rs

/root/repo/target/debug/deps/secview_properties-a9169cdb7edc62b0: tests/secview_properties.rs

tests/secview_properties.rs:
