/root/repo/target/debug/deps/xust_automata-56636a5067bc9b4c.d: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs Cargo.toml

/root/repo/target/debug/deps/libxust_automata-56636a5067bc9b4c.rmeta: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs Cargo.toml

crates/automata/src/lib.rs:
crates/automata/src/filtering.rs:
crates/automata/src/selecting.rs:
crates/automata/src/stateset.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
