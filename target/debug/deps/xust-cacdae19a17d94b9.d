/root/repo/target/debug/deps/xust-cacdae19a17d94b9.d: src/lib.rs

/root/repo/target/debug/deps/xust-cacdae19a17d94b9: src/lib.rs

src/lib.rs:
