/root/repo/target/debug/deps/compose_correctness-8c233c6c8f57ed90.d: tests/compose_correctness.rs

/root/repo/target/debug/deps/compose_correctness-8c233c6c8f57ed90: tests/compose_correctness.rs

tests/compose_correctness.rs:
