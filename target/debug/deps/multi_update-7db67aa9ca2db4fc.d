/root/repo/target/debug/deps/multi_update-7db67aa9ca2db4fc.d: tests/multi_update.rs

/root/repo/target/debug/deps/multi_update-7db67aa9ca2db4fc: tests/multi_update.rs

tests/multi_update.rs:
