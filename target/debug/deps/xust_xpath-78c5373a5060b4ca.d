/root/repo/target/debug/deps/xust_xpath-78c5373a5060b4ca.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

/root/repo/target/debug/deps/xust_xpath-78c5373a5060b4ca: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/eval.rs:
crates/xpath/src/lexer.rs:
crates/xpath/src/normalize.rs:
crates/xpath/src/parser.rs:
