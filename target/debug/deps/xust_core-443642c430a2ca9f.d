/root/repo/target/debug/deps/xust_core-443642c430a2ca9f.d: crates/core/src/lib.rs crates/core/src/bottomup.rs crates/core/src/copy_update.rs crates/core/src/engine.rs crates/core/src/multi.rs crates/core/src/multi_sax.rs crates/core/src/naive.rs crates/core/src/prepared.rs crates/core/src/query.rs crates/core/src/sax2pass.rs crates/core/src/topdown.rs crates/core/src/twopass.rs Cargo.toml

/root/repo/target/debug/deps/libxust_core-443642c430a2ca9f.rmeta: crates/core/src/lib.rs crates/core/src/bottomup.rs crates/core/src/copy_update.rs crates/core/src/engine.rs crates/core/src/multi.rs crates/core/src/multi_sax.rs crates/core/src/naive.rs crates/core/src/prepared.rs crates/core/src/query.rs crates/core/src/sax2pass.rs crates/core/src/topdown.rs crates/core/src/twopass.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bottomup.rs:
crates/core/src/copy_update.rs:
crates/core/src/engine.rs:
crates/core/src/multi.rs:
crates/core/src/multi_sax.rs:
crates/core/src/naive.rs:
crates/core/src/prepared.rs:
crates/core/src/query.rs:
crates/core/src/sax2pass.rs:
crates/core/src/topdown.rs:
crates/core/src/twopass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
