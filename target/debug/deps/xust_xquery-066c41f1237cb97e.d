/root/repo/target/debug/deps/xust_xquery-066c41f1237cb97e.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/debug/deps/xust_xquery-066c41f1237cb97e: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/error.rs:
crates/xquery/src/eval.rs:
crates/xquery/src/functions.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/value.rs:
