/root/repo/target/debug/deps/xust_xquery-9335bf837a7e4e52.d: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/debug/deps/libxust_xquery-9335bf837a7e4e52.rlib: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

/root/repo/target/debug/deps/libxust_xquery-9335bf837a7e4e52.rmeta: crates/xquery/src/lib.rs crates/xquery/src/ast.rs crates/xquery/src/error.rs crates/xquery/src/eval.rs crates/xquery/src/functions.rs crates/xquery/src/lexer.rs crates/xquery/src/parser.rs crates/xquery/src/value.rs

crates/xquery/src/lib.rs:
crates/xquery/src/ast.rs:
crates/xquery/src/error.rs:
crates/xquery/src/eval.rs:
crates/xquery/src/functions.rs:
crates/xquery/src/lexer.rs:
crates/xquery/src/parser.rs:
crates/xquery/src/value.rs:
