/root/repo/target/debug/deps/xust_compose-cbc271f40fd9dad8.d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/debug/deps/libxust_compose-cbc271f40fd9dad8.rlib: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/debug/deps/libxust_compose-cbc271f40fd9dad8.rmeta: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

crates/compose/src/lib.rs:
crates/compose/src/compose.rs:
crates/compose/src/naive.rs:
crates/compose/src/stream.rs:
crates/compose/src/user.rs:
