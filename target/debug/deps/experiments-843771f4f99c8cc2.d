/root/repo/target/debug/deps/experiments-843771f4f99c8cc2.d: crates/bench/src/bin/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-843771f4f99c8cc2.rmeta: crates/bench/src/bin/experiments.rs Cargo.toml

crates/bench/src/bin/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
