/root/repo/target/debug/deps/fig13_scalability-dbb946aba38d4f8c.d: crates/bench/benches/fig13_scalability.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_scalability-dbb946aba38d4f8c.rmeta: crates/bench/benches/fig13_scalability.rs Cargo.toml

crates/bench/benches/fig13_scalability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
