/root/repo/target/debug/deps/xust_tree-dac3ec7fd0bbe1dc.d: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

/root/repo/target/debug/deps/libxust_tree-dac3ec7fd0bbe1dc.rlib: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

/root/repo/target/debug/deps/libxust_tree-dac3ec7fd0bbe1dc.rmeta: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs

crates/tree/src/lib.rs:
crates/tree/src/build.rs:
crates/tree/src/document.rs:
crates/tree/src/eq.rs:
crates/tree/src/iter.rs:
crates/tree/src/node.rs:
crates/tree/src/parse.rs:
crates/tree/src/serialize.rs:
