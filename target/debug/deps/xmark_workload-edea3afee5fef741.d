/root/repo/target/debug/deps/xmark_workload-edea3afee5fef741.d: tests/xmark_workload.rs

/root/repo/target/debug/deps/xmark_workload-edea3afee5fef741: tests/xmark_workload.rs

tests/xmark_workload.rs:
