/root/repo/target/debug/deps/automata_equivalence-a653226ab89286e3.d: tests/automata_equivalence.rs

/root/repo/target/debug/deps/automata_equivalence-a653226ab89286e3: tests/automata_equivalence.rs

tests/automata_equivalence.rs:
