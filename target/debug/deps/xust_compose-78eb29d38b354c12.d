/root/repo/target/debug/deps/xust_compose-78eb29d38b354c12.d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs Cargo.toml

/root/repo/target/debug/deps/libxust_compose-78eb29d38b354c12.rmeta: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs Cargo.toml

crates/compose/src/lib.rs:
crates/compose/src/compose.rs:
crates/compose/src/naive.rs:
crates/compose/src/stream.rs:
crates/compose/src/user.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
