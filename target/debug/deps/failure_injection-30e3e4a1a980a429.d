/root/repo/target/debug/deps/failure_injection-30e3e4a1a980a429.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-30e3e4a1a980a429: tests/failure_injection.rs

tests/failure_injection.rs:
