/root/repo/target/debug/deps/xust_automata-1516f6f7cf8c2c18.d: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/debug/deps/xust_automata-1516f6f7cf8c2c18: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

crates/automata/src/lib.rs:
crates/automata/src/filtering.rs:
crates/automata/src/selecting.rs:
crates/automata/src/stateset.rs:
