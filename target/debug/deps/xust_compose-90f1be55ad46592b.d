/root/repo/target/debug/deps/xust_compose-90f1be55ad46592b.d: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

/root/repo/target/debug/deps/xust_compose-90f1be55ad46592b: crates/compose/src/lib.rs crates/compose/src/compose.rs crates/compose/src/naive.rs crates/compose/src/stream.rs crates/compose/src/user.rs

crates/compose/src/lib.rs:
crates/compose/src/compose.rs:
crates/compose/src/naive.rs:
crates/compose/src/stream.rs:
crates/compose/src/user.rs:
