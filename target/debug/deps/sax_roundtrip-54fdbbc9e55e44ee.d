/root/repo/target/debug/deps/sax_roundtrip-54fdbbc9e55e44ee.d: tests/sax_roundtrip.rs Cargo.toml

/root/repo/target/debug/deps/libsax_roundtrip-54fdbbc9e55e44ee.rmeta: tests/sax_roundtrip.rs Cargo.toml

tests/sax_roundtrip.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
