/root/repo/target/debug/deps/xust_automata-250f302edbd66232.d: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/debug/deps/libxust_automata-250f302edbd66232.rlib: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

/root/repo/target/debug/deps/libxust_automata-250f302edbd66232.rmeta: crates/automata/src/lib.rs crates/automata/src/filtering.rs crates/automata/src/selecting.rs crates/automata/src/stateset.rs

crates/automata/src/lib.rs:
crates/automata/src/filtering.rs:
crates/automata/src/selecting.rs:
crates/automata/src/stateset.rs:
