/root/repo/target/debug/deps/serve_concurrency-76f24c6713a67abc.d: tests/serve_concurrency.rs Cargo.toml

/root/repo/target/debug/deps/libserve_concurrency-76f24c6713a67abc.rmeta: tests/serve_concurrency.rs Cargo.toml

tests/serve_concurrency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
