/root/repo/target/debug/deps/xust_xmark-ae9475cabd5f39af.d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/debug/deps/libxust_xmark-ae9475cabd5f39af.rlib: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/debug/deps/libxust_xmark-ae9475cabd5f39af.rmeta: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

crates/xmark/src/lib.rs:
crates/xmark/src/config.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/sink.rs:
crates/xmark/src/vocab.rs:
