/root/repo/target/debug/deps/xust_tree-c316dc987fd28d57.d: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libxust_tree-c316dc987fd28d57.rmeta: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs Cargo.toml

crates/tree/src/lib.rs:
crates/tree/src/build.rs:
crates/tree/src/document.rs:
crates/tree/src/eq.rs:
crates/tree/src/iter.rs:
crates/tree/src/node.rs:
crates/tree/src/parse.rs:
crates/tree/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
