/root/repo/target/debug/deps/xust-558d25d6fd870390.d: src/bin/xust.rs Cargo.toml

/root/repo/target/debug/deps/libxust-558d25d6fd870390.rmeta: src/bin/xust.rs Cargo.toml

src/bin/xust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
