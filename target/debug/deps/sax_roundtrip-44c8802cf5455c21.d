/root/repo/target/debug/deps/sax_roundtrip-44c8802cf5455c21.d: tests/sax_roundtrip.rs

/root/repo/target/debug/deps/sax_roundtrip-44c8802cf5455c21: tests/sax_roundtrip.rs

tests/sax_roundtrip.rs:
