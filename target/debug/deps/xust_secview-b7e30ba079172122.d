/root/repo/target/debug/deps/xust_secview-b7e30ba079172122.d: crates/secview/src/lib.rs

/root/repo/target/debug/deps/libxust_secview-b7e30ba079172122.rlib: crates/secview/src/lib.rs

/root/repo/target/debug/deps/libxust_secview-b7e30ba079172122.rmeta: crates/secview/src/lib.rs

crates/secview/src/lib.rs:
