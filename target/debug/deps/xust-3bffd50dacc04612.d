/root/repo/target/debug/deps/xust-3bffd50dacc04612.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxust-3bffd50dacc04612.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
