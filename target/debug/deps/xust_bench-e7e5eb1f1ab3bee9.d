/root/repo/target/debug/deps/xust_bench-e7e5eb1f1ab3bee9.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxust_bench-e7e5eb1f1ab3bee9.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
