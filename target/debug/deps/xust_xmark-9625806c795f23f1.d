/root/repo/target/debug/deps/xust_xmark-9625806c795f23f1.d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

/root/repo/target/debug/deps/xust_xmark-9625806c795f23f1: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs

crates/xmark/src/lib.rs:
crates/xmark/src/config.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/sink.rs:
crates/xmark/src/vocab.rs:
