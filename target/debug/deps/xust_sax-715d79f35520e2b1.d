/root/repo/target/debug/deps/xust_sax-715d79f35520e2b1.d: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/debug/deps/libxust_sax-715d79f35520e2b1.rlib: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/debug/deps/libxust_sax-715d79f35520e2b1.rmeta: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

crates/sax/src/lib.rs:
crates/sax/src/error.rs:
crates/sax/src/escape.rs:
crates/sax/src/event.rs:
crates/sax/src/parser.rs:
crates/sax/src/writer.rs:
