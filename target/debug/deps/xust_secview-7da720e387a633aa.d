/root/repo/target/debug/deps/xust_secview-7da720e387a633aa.d: crates/secview/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxust_secview-7da720e387a633aa.rmeta: crates/secview/src/lib.rs Cargo.toml

crates/secview/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
