/root/repo/target/debug/deps/xust_secview-140a0d65f9894155.d: crates/secview/src/lib.rs

/root/repo/target/debug/deps/libxust_secview-140a0d65f9894155.rlib: crates/secview/src/lib.rs

/root/repo/target/debug/deps/libxust_secview-140a0d65f9894155.rmeta: crates/secview/src/lib.rs

crates/secview/src/lib.rs:
