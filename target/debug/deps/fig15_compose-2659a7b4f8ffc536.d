/root/repo/target/debug/deps/fig15_compose-2659a7b4f8ffc536.d: crates/bench/benches/fig15_compose.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_compose-2659a7b4f8ffc536.rmeta: crates/bench/benches/fig15_compose.rs Cargo.toml

crates/bench/benches/fig15_compose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
