/root/repo/target/debug/deps/serve_planner-e5f40a04955cd847.d: tests/serve_planner.rs Cargo.toml

/root/repo/target/debug/deps/libserve_planner-e5f40a04955cd847.rmeta: tests/serve_planner.rs Cargo.toml

tests/serve_planner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
