/root/repo/target/debug/deps/automata_equivalence-0edd41fadb78feb9.d: tests/automata_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libautomata_equivalence-0edd41fadb78feb9.rmeta: tests/automata_equivalence.rs Cargo.toml

tests/automata_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
