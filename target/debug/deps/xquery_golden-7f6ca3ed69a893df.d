/root/repo/target/debug/deps/xquery_golden-7f6ca3ed69a893df.d: tests/xquery_golden.rs Cargo.toml

/root/repo/target/debug/deps/libxquery_golden-7f6ca3ed69a893df.rmeta: tests/xquery_golden.rs Cargo.toml

tests/xquery_golden.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
