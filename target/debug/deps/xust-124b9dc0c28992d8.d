/root/repo/target/debug/deps/xust-124b9dc0c28992d8.d: src/bin/xust.rs Cargo.toml

/root/repo/target/debug/deps/libxust-124b9dc0c28992d8.rmeta: src/bin/xust.rs Cargo.toml

src/bin/xust.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
