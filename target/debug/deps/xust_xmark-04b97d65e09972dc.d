/root/repo/target/debug/deps/xust_xmark-04b97d65e09972dc.d: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs Cargo.toml

/root/repo/target/debug/deps/libxust_xmark-04b97d65e09972dc.rmeta: crates/xmark/src/lib.rs crates/xmark/src/config.rs crates/xmark/src/gen.rs crates/xmark/src/sink.rs crates/xmark/src/vocab.rs Cargo.toml

crates/xmark/src/lib.rs:
crates/xmark/src/config.rs:
crates/xmark/src/gen.rs:
crates/xmark/src/sink.rs:
crates/xmark/src/vocab.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
