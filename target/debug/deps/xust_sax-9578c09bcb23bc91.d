/root/repo/target/debug/deps/xust_sax-9578c09bcb23bc91.d: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

/root/repo/target/debug/deps/xust_sax-9578c09bcb23bc91: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs

crates/sax/src/lib.rs:
crates/sax/src/error.rs:
crates/sax/src/escape.rs:
crates/sax/src/event.rs:
crates/sax/src/parser.rs:
crates/sax/src/writer.rs:
