/root/repo/target/debug/deps/xmark_workload-080652bdcb8329b4.d: tests/xmark_workload.rs Cargo.toml

/root/repo/target/debug/deps/libxmark_workload-080652bdcb8329b4.rmeta: tests/xmark_workload.rs Cargo.toml

tests/xmark_workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
