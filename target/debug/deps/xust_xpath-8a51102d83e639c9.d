/root/repo/target/debug/deps/xust_xpath-8a51102d83e639c9.d: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs Cargo.toml

/root/repo/target/debug/deps/libxust_xpath-8a51102d83e639c9.rmeta: crates/xpath/src/lib.rs crates/xpath/src/ast.rs crates/xpath/src/eval.rs crates/xpath/src/lexer.rs crates/xpath/src/normalize.rs crates/xpath/src/parser.rs Cargo.toml

crates/xpath/src/lib.rs:
crates/xpath/src/ast.rs:
crates/xpath/src/eval.rs:
crates/xpath/src/lexer.rs:
crates/xpath/src/normalize.rs:
crates/xpath/src/parser.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
