/root/repo/target/debug/deps/xust_tree-3cbe03decc3215b3.d: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs Cargo.toml

/root/repo/target/debug/deps/libxust_tree-3cbe03decc3215b3.rmeta: crates/tree/src/lib.rs crates/tree/src/build.rs crates/tree/src/document.rs crates/tree/src/eq.rs crates/tree/src/iter.rs crates/tree/src/node.rs crates/tree/src/parse.rs crates/tree/src/serialize.rs Cargo.toml

crates/tree/src/lib.rs:
crates/tree/src/build.rs:
crates/tree/src/document.rs:
crates/tree/src/eq.rs:
crates/tree/src/iter.rs:
crates/tree/src/node.rs:
crates/tree/src/parse.rs:
crates/tree/src/serialize.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
