/root/repo/target/debug/deps/equivalence-4edb6a405ccf4fad.d: tests/equivalence.rs

/root/repo/target/debug/deps/equivalence-4edb6a405ccf4fad: tests/equivalence.rs

tests/equivalence.rs:
