/root/repo/target/debug/deps/xust_bench-1d97c12b6a01f7bd.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxust_bench-1d97c12b6a01f7bd.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libxust_bench-1d97c12b6a01f7bd.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
