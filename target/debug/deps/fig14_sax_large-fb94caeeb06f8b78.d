/root/repo/target/debug/deps/fig14_sax_large-fb94caeeb06f8b78.d: crates/bench/benches/fig14_sax_large.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_sax_large-fb94caeeb06f8b78.rmeta: crates/bench/benches/fig14_sax_large.rs Cargo.toml

crates/bench/benches/fig14_sax_large.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
