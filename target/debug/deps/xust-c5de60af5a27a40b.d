/root/repo/target/debug/deps/xust-c5de60af5a27a40b.d: src/lib.rs

/root/repo/target/debug/deps/libxust-c5de60af5a27a40b.rlib: src/lib.rs

/root/repo/target/debug/deps/libxust-c5de60af5a27a40b.rmeta: src/lib.rs

src/lib.rs:
