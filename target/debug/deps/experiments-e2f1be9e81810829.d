/root/repo/target/debug/deps/experiments-e2f1be9e81810829.d: crates/bench/src/bin/experiments.rs

/root/repo/target/debug/deps/experiments-e2f1be9e81810829: crates/bench/src/bin/experiments.rs

crates/bench/src/bin/experiments.rs:
