/root/repo/target/debug/deps/extensions-e24f3c5032cfc282.d: crates/bench/benches/extensions.rs Cargo.toml

/root/repo/target/debug/deps/libextensions-e24f3c5032cfc282.rmeta: crates/bench/benches/extensions.rs Cargo.toml

crates/bench/benches/extensions.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
