/root/repo/target/debug/deps/xust_bench-a5348541f2e77e5f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/xust_bench-a5348541f2e77e5f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
