/root/repo/target/debug/deps/xust_sax-81c640d8071641f0.d: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs Cargo.toml

/root/repo/target/debug/deps/libxust_sax-81c640d8071641f0.rmeta: crates/sax/src/lib.rs crates/sax/src/error.rs crates/sax/src/escape.rs crates/sax/src/event.rs crates/sax/src/parser.rs crates/sax/src/writer.rs Cargo.toml

crates/sax/src/lib.rs:
crates/sax/src/error.rs:
crates/sax/src/escape.rs:
crates/sax/src/event.rs:
crates/sax/src/parser.rs:
crates/sax/src/writer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
