/root/repo/target/debug/deps/xust-3b819be0f7cbba25.d: src/bin/xust.rs

/root/repo/target/debug/deps/xust-3b819be0f7cbba25: src/bin/xust.rs

src/bin/xust.rs:
