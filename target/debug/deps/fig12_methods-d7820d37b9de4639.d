/root/repo/target/debug/deps/fig12_methods-d7820d37b9de4639.d: crates/bench/benches/fig12_methods.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_methods-d7820d37b9de4639.rmeta: crates/bench/benches/fig12_methods.rs Cargo.toml

crates/bench/benches/fig12_methods.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
