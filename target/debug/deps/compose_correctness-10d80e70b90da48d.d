/root/repo/target/debug/deps/compose_correctness-10d80e70b90da48d.d: tests/compose_correctness.rs Cargo.toml

/root/repo/target/debug/deps/libcompose_correctness-10d80e70b90da48d.rmeta: tests/compose_correctness.rs Cargo.toml

tests/compose_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
