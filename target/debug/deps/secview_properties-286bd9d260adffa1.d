/root/repo/target/debug/deps/secview_properties-286bd9d260adffa1.d: tests/secview_properties.rs Cargo.toml

/root/repo/target/debug/deps/libsecview_properties-286bd9d260adffa1.rmeta: tests/secview_properties.rs Cargo.toml

tests/secview_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
