/root/repo/target/debug/deps/xust_serve-40c6a9439e297ed2.d: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

/root/repo/target/debug/deps/xust_serve-40c6a9439e297ed2: crates/serve/src/lib.rs crates/serve/src/cache.rs crates/serve/src/error.rs crates/serve/src/executor.rs crates/serve/src/planner.rs crates/serve/src/registry.rs crates/serve/src/server.rs crates/serve/src/stats.rs

crates/serve/src/lib.rs:
crates/serve/src/cache.rs:
crates/serve/src/error.rs:
crates/serve/src/executor.rs:
crates/serve/src/planner.rs:
crates/serve/src/registry.rs:
crates/serve/src/server.rs:
crates/serve/src/stats.rs:
