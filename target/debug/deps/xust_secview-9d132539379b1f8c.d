/root/repo/target/debug/deps/xust_secview-9d132539379b1f8c.d: crates/secview/src/lib.rs

/root/repo/target/debug/deps/xust_secview-9d132539379b1f8c: crates/secview/src/lib.rs

crates/secview/src/lib.rs:
