/root/repo/target/debug/deps/xust_bench-418739fd0d7bbbf4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libxust_bench-418739fd0d7bbbf4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
