//! `xust` — command-line front end for transform queries.
//!
//! ```text
//! xust transform -q 'transform copy $a := doc("d") modify do delete $a//price return $a' \
//!                -i catalog.xml [-o out.xml] [--method dom|stream|naive|copy]
//! xust compose   -q '<transform …>' -u 'for $x in doc("d")/db/part return $x' \
//!                -i catalog.xml [--stream]
//! xust generate  --factor 0.1 [--seed 1] -o xmark.xml
//! xust validate  -i file.xml
//! xust exec      -q <transform|@file> -i catalog.xml [--stats]
//! xust serve     --doc db=catalog.xml --view 'public=@view.xq' [--port 7878 | --stdio]
//! ```
//!
//! `-q`/`-u` accept either inline text or `@path/to/file`. Multi-update
//! transforms (`modify do (u1, u2, …)`) are detected automatically and
//! routed to the fused multi-automaton (DOM) or the streaming
//! multi-pass (stream) evaluator.
//!
//! `exec` runs a transform through `xust-serve`'s adaptive planner
//! (printing the chosen method with `--stats`); `serve` starts the
//! concurrent view service speaking a line protocol over TCP or
//! stdin/stdout (see [`serve_connection`]).

use std::io::{BufRead, Write};
use std::process::ExitCode;

use xust::compose::{compose, compose_sax_files, compose_sax_str, UserQuery};
use xust::core::{
    multi_top_down, multi_two_pass_sax_files, multi_two_pass_sax_str, parse_multi_transform,
    two_pass_sax_files, two_pass_sax_str, LdStorage, Method, MultiTransformQuery, TransformQuery,
};
use xust::sax::SaxParser;
use xust::serve::{serve_pipelined, PipelineOptions, Request, Server};
use xust::tree::Document;
use xust::xmark::{generate_to_file, XmarkConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xust: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err(USAGE.trim().to_string());
    };
    let opts = Opts::parse(&args[1..])?;
    match cmd.as_str() {
        "transform" => cmd_transform(&opts),
        "compose" => cmd_compose(&opts),
        "generate" => cmd_generate(&opts),
        "validate" => cmd_validate(&opts),
        "exec" => cmd_exec(&opts),
        "stream" => cmd_stream(&opts),
        "serve" => cmd_serve(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", USAGE.trim());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{}", USAGE.trim())),
    }
}

const USAGE: &str = r#"
usage:
  xust transform -q <query|@file> -i <input.xml> [-o <out.xml>] [--method dom|stream|naive|copy]
  xust compose   -q <transform|@file> -u <user-query|@file> -i <input.xml> [-o <out.xml>] [--stream]
  xust generate  --factor <f> [--seed <n>] -o <out.xml>
  xust validate  -i <input.xml>
  xust exec      -q <transform|@file> -i <input.xml> [-o <out.xml>] [--stats] [--stats-json]
  xust stream    -q <transform|@file> -i <input.xml> [-o <out.xml>] [--stats] [--stats-json]
  xust serve     [--doc <name>=<path>]… [--view <name>=<query|@file>]…
                 [--port <p> | --stdio] [--threads <n>] [--shards <n>] [--no-trace]
                 [--wal <path> | --no-wal]

serve protocol (one request per line, answers framed as `OK <len>`/`ERR <msg>`;
requests may be pipelined — replies always come back in request order, and
write verbs act as barriers, so a read after an UPDATE sees the update):
  VIEW <view> <doc>               materialize a registered view
  QUERY <view> <doc> <xquery…>    answer a user query over the virtual view
  TRANSFORM <doc> <transform…>    run an ad-hoc transform (prepared cache + planner)
  UPDATE <doc> <transform…>       apply the embedded update(s) to the stored doc
                                  (COW version bump + delta-aware cache maintenance)
  LOAD <doc> <path>               load or reload a document from a server-side file
                                  (purges exactly that doc's cached view results)
  REMOVE <doc>                    unload a document (and its cached view results)
  STREAM <doc> <transform…>       stream a file-backed doc through a session;
                                  output arrives incrementally as `OUT <len>`
                                  frames followed by `DONE <total>`
  METRICS                         Prometheus-style text exposition of every
                                  counter, gauge, and latency histogram
  TRACE [n]                       the n most recent request traces (default 8)
                                  plus the slowest requests, phase by phase
  EXPLAIN <view> <doc>            the method the planner would pick for each
                                  link of <view> over <doc>, with the evidence
                                  (EWMA + histogram) — without executing
  ANALYZE <view>                  the registration-time static analysis of
                                  <view>: satisfiability (dead views), NFA
                                  dead states, folded qualifiers, alphabet,
                                  footprint bounds, and its cache family —
                                  without executing
  STATS | LIST | QUIT

durability: --wal <path> attaches a write-ahead log — every applied
UPDATE/LOAD/REMOVE is logged before its reply, and on start the log is
replayed (documents named by both the log and --doc keep their recovered
state). --no-wal wins over --wal.
"#;

/// Parsed command-line options (shared across subcommands).
#[derive(Debug, Default, PartialEq)]
struct Opts {
    query: Option<String>,
    user_query: Option<String>,
    input: Option<String>,
    output: Option<String>,
    method: Option<String>,
    stream: bool,
    factor: Option<f64>,
    seed: Option<u64>,
    stats: bool,
    stats_json: bool,
    no_trace: bool,
    stdio: bool,
    wal: Option<String>,
    no_wal: bool,
    port: Option<u16>,
    threads: Option<usize>,
    shards: Option<usize>,
    docs: Vec<(String, String)>,
    views: Vec<(String, String)>,
}

impl Opts {
    /// Hand-rolled flag parser: `-q/-u/-i/-o/--method/--factor/--seed`
    /// take values, `--stream` is boolean. `@file` values are loaded.
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "-q" | "--query" => o.query = Some(load_arg(&value(a, &mut it)?)?),
                "-u" | "--user-query" => o.user_query = Some(load_arg(&value(a, &mut it)?)?),
                "-i" | "--input" => o.input = Some(value(a, &mut it)?),
                "-o" | "--output" => o.output = Some(value(a, &mut it)?),
                "--method" => o.method = Some(value(a, &mut it)?),
                "--stream" => o.stream = true,
                "--factor" => {
                    o.factor = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|e| format!("--factor: {e}"))?,
                    )
                }
                "--seed" => {
                    o.seed = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?,
                    )
                }
                "--stats" => o.stats = true,
                "--stats-json" => o.stats_json = true,
                "--no-trace" => o.no_trace = true,
                "--stdio" => o.stdio = true,
                "--wal" => o.wal = Some(value(a, &mut it)?),
                "--no-wal" => o.no_wal = true,
                "--port" => {
                    o.port = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|e| format!("--port: {e}"))?,
                    )
                }
                "--threads" => {
                    o.threads = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|e| format!("--threads: {e}"))?,
                    )
                }
                "--shards" => {
                    o.shards = Some(
                        value(a, &mut it)?
                            .parse()
                            .map_err(|e| format!("--shards: {e}"))?,
                    )
                }
                "--doc" => o.docs.push(parse_pair("--doc", &value(a, &mut it)?)?),
                "--view" => {
                    let (name, v) = parse_pair("--view", &value(a, &mut it)?)?;
                    o.views.push((name, load_arg(&v)?));
                }
                other => return Err(format!("unknown flag '{other}'")),
            }
        }
        Ok(o)
    }
}

/// `@path` loads a file; anything else is taken verbatim.
fn load_arg(v: &str) -> Result<String, String> {
    match v.strip_prefix('@') {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}")),
        None => Ok(v.to_string()),
    }
}

/// Splits a `name=value` flag argument.
fn parse_pair(flag: &str, v: &str) -> Result<(String, String), String> {
    match v.split_once('=') {
        Some((name, value)) if !name.is_empty() && !value.is_empty() => {
            Ok((name.to_string(), value.to_string()))
        }
        _ => Err(format!("{flag} takes <name>=<value>, got '{v}'")),
    }
}

fn require<'a>(v: &'a Option<String>, what: &str) -> Result<&'a str, String> {
    v.as_deref().ok_or_else(|| format!("missing {what}"))
}

/// Routes the parsed multi-transform: singleton lists use the
/// single-update machinery (slightly leaner), larger ones the fused
/// multi plans.
enum AnyTransform {
    Single(TransformQuery),
    Multi(MultiTransformQuery),
}

fn parse_any_transform(text: &str) -> Result<AnyTransform, String> {
    let mq = parse_multi_transform(text).map_err(|e| e.to_string())?;
    if mq.updates.len() == 1 {
        let mut mq = mq;
        let (path, op) = mq.updates.remove(0);
        Ok(AnyTransform::Single(TransformQuery {
            var: mq.var,
            doc_name: mq.doc_name,
            path,
            op,
        }))
    } else {
        Ok(AnyTransform::Multi(mq))
    }
}

fn emit(output: &Option<String>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => std::fs::write(path, text).map_err(|e| format!("{path}: {e}")),
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout
                .write_all(text.as_bytes())
                .and_then(|_| stdout.write_all(b"\n"))
                .map_err(|e| e.to_string())
        }
    }
}

fn cmd_transform(o: &Opts) -> Result<(), String> {
    let query = require(&o.query, "-q <transform query>")?;
    let input = require(&o.input, "-i <input.xml>")?;
    let method = o.method.as_deref().unwrap_or("dom");
    let q = parse_any_transform(query)?;

    if method == "stream" {
        // File→file when both ends are files; otherwise via strings.
        return match (&q, &o.output) {
            (AnyTransform::Single(q), Some(out)) => {
                two_pass_sax_files(input, q, out, LdStorage::TempFile)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            (AnyTransform::Multi(q), Some(out)) => {
                multi_two_pass_sax_files(input, q, out, LdStorage::TempFile)
                    .map(|_| ())
                    .map_err(|e| e.to_string())
            }
            (q, None) => {
                let xml = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
                let result = match q {
                    AnyTransform::Single(q) => two_pass_sax_str(&xml, q),
                    AnyTransform::Multi(q) => multi_two_pass_sax_str(&xml, q),
                }
                .map_err(|e| e.to_string())?;
                emit(&None, &result)
            }
        };
    }

    let xml = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let doc = Document::parse(&xml).map_err(|e| e.to_string())?;
    let result = match (&q, method) {
        (AnyTransform::Single(q), "dom") => {
            xust::core::evaluate(&doc, q, Method::TwoPass).map_err(|e| e.to_string())?
        }
        (AnyTransform::Single(q), "naive") => {
            xust::core::evaluate(&doc, q, Method::Naive).map_err(|e| e.to_string())?
        }
        (AnyTransform::Single(q), "copy") => {
            xust::core::evaluate(&doc, q, Method::CopyUpdate).map_err(|e| e.to_string())?
        }
        (AnyTransform::Multi(q), "dom") => multi_top_down(&doc, q),
        (AnyTransform::Multi(_), m) => {
            return Err(format!(
                "multi-update transforms support --method dom|stream, not '{m}'"
            ))
        }
        (_, m) => return Err(format!("unknown method '{m}' (dom|stream|naive|copy)")),
    };
    emit(&o.output, &result.serialize())
}

fn cmd_compose(o: &Opts) -> Result<(), String> {
    let query = require(&o.query, "-q <transform query>")?;
    let user = require(&o.user_query, "-u <user query>")?;
    let input = require(&o.input, "-i <input.xml>")?;
    let AnyTransform::Single(qt) = parse_any_transform(query)? else {
        return Err("composition takes a single-update transform".into());
    };
    let uq = UserQuery::parse(user).map_err(|e| e.to_string())?;

    if o.stream {
        return match &o.output {
            Some(out) => compose_sax_files(input, &qt, &uq, out)
                .map(|_| ())
                .map_err(|e| e.to_string()),
            None => {
                let xml = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
                let result = compose_sax_str(&xml, &qt, &uq).map_err(|e| e.to_string())?;
                emit(&None, &result)
            }
        };
    }

    let xml = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let doc = Document::parse(&xml).map_err(|e| e.to_string())?;
    let qc = compose(&qt, &uq).map_err(|e| e.to_string())?;
    let result = qc.execute_to_string(&doc).map_err(|e| e.to_string())?;
    emit(&o.output, &result)
}

fn cmd_generate(o: &Opts) -> Result<(), String> {
    let factor = o.factor.ok_or("missing --factor")?;
    let output = require(&o.output, "-o <out.xml>")?;
    let mut cfg = XmarkConfig::new(factor);
    if let Some(seed) = o.seed {
        cfg = cfg.with_seed(seed);
    }
    generate_to_file(cfg, output).map_err(|e| e.to_string())?;
    let size = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    eprintln!("wrote {output} ({size} bytes)");
    Ok(())
}

fn cmd_validate(o: &Opts) -> Result<(), String> {
    let input = require(&o.input, "-i <input.xml>")?;
    let mut parser = SaxParser::from_file(input).map_err(|e| e.to_string())?;
    let mut elements = 0u64;
    let mut depth = 0usize;
    let mut max_depth = 0usize;
    loop {
        match parser.next_event() {
            Ok(Some(xust::sax::SaxEvent::StartElement { .. })) => {
                elements += 1;
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            Ok(Some(xust::sax::SaxEvent::EndElement(_))) => depth -= 1,
            Ok(Some(_)) => {}
            Ok(None) => break,
            Err(e) => return Err(format!("{input}: {e}")),
        }
    }
    println!("{input}: well-formed, {elements} elements, depth {max_depth}");
    Ok(())
}

/// `exec`: one-shot planned execution through the serving layer.
fn cmd_exec(o: &Opts) -> Result<(), String> {
    let query = require(&o.query, "-q <transform query>")?;
    let input = require(&o.input, "-i <input.xml>")?;
    let server = Server::builder()
        .threads(o.threads.unwrap_or(1))
        .tracing(!o.no_trace)
        .build();
    // `--stream` keeps the input file-backed (the planner then routes to
    // twoPassSAX); otherwise parse once so DOM methods are candidates.
    if o.stream {
        server
            .load_doc_file("doc", input)
            .map_err(|e| e.to_string())?;
    } else {
        let doc = Document::parse_file(input).map_err(|e| format!("{input}: {e}"))?;
        server.load_doc("doc", doc);
    }
    let resp = server
        .handle(&Request::Transform {
            doc: "doc".into(),
            query: query.into(),
        })
        .map_err(|e| e.to_string())?;
    let method = resp
        .method
        .map(|m| m.to_string())
        .unwrap_or_else(|| "-".into());
    if o.stats {
        eprintln!(
            "method={method} micros={} cache_hit={}",
            resp.micros, resp.cache_hit
        );
        eprintln!("{}", server.stats());
    }
    if o.stats_json {
        // One machine-readable object on stderr; stdout stays the
        // transform result alone so pipelines keep working.
        eprintln!(
            "{{\"command\":\"exec\",\"method\":\"{}\",\"micros\":{},\"cache_hit\":{},\"stats\":{}}}",
            xust::serve::json_escape(&method),
            resp.micros,
            resp.cache_hit,
            server.stats().render_json()
        );
    }
    emit(&o.output, &resp.body)
}

/// `stream`: drive a streaming session over a file, writing transformed
/// output incrementally — the input tree is never materialized.
fn cmd_stream(o: &Opts) -> Result<(), String> {
    let query = require(&o.query, "-q <transform query>")?;
    let input = require(&o.input, "-i <input.xml>")?;
    let server = Server::builder().threads(1).build();
    let mut session = server.begin_stream(query).map_err(|e| e.to_string())?;

    let mut parser = SaxParser::from_file(input).map_err(|e| format!("{input}: {e}"))?;
    while let Some(ev) = parser.next_event().map_err(|e| format!("{input}: {e}"))? {
        session.feed(ev).map_err(|e| e.to_string())?;
    }
    session.begin_replay().map_err(|e| e.to_string())?;

    let mut out: Box<dyn Write> = match &o.output {
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut parser = SaxParser::from_file(input).map_err(|e| format!("{input}: {e}"))?;
    while let Some(ev) = parser.next_event().map_err(|e| format!("{input}: {e}"))? {
        let chunk = session.replay(ev).map_err(|e| e.to_string())?;
        out.write_all(&chunk).map_err(|e| e.to_string())?;
    }
    let emitted = session.bytes_emitted();
    let (tail, stats) = session.finish().map_err(|e| e.to_string())?;
    out.write_all(&tail).map_err(|e| e.to_string())?;
    if o.output.is_none() {
        out.write_all(b"\n").map_err(|e| e.to_string())?;
    }
    out.flush().map_err(|e| e.to_string())?;
    let bytes = emitted + tail.len() as u64;
    if o.stats {
        eprintln!(
            "elements={} ld_entries={} max_depth={} bytes={}",
            stats.elements, stats.ld_entries, stats.max_depth, bytes
        );
    }
    if o.stats_json {
        eprintln!(
            "{{\"command\":\"stream\",\"elements\":{},\"ld_entries\":{},\"max_depth\":{},\"bytes\":{}}}",
            stats.elements, stats.ld_entries, stats.max_depth, bytes
        );
    }
    Ok(())
}

/// `serve`: the concurrent view service over TCP or stdio.
fn cmd_serve(o: &Opts) -> Result<(), String> {
    let wal = if o.no_wal { None } else { o.wal.as_deref() };
    if o.docs.is_empty() && wal.is_none() {
        return Err("serve needs at least one --doc <name>=<path>".into());
    }
    let server = Server::builder()
        .threads(o.threads.unwrap_or(4))
        .shards(o.shards.unwrap_or(8))
        .tracing(!o.no_trace)
        .build();
    // Recovery first: the write-ahead log replays every applied write
    // since it was started, then attaches so new writes are logged.
    // Documents it recreates are *newer* than their --doc seed files,
    // so the seeding below skips names the log already recovered.
    if let Some(path) = wal {
        let rec = server
            .attach_wal(path)
            .map_err(|e| format!("wal {path}: {e}"))?;
        if rec.applied > 0 || rec.truncated {
            eprintln!(
                "xust-serve: wal replay from {path}: recovered={} truncated={}{}",
                rec.applied,
                rec.truncated,
                if rec.truncated {
                    " (dropped a torn tail)"
                } else {
                    ""
                }
            );
        }
    }
    for (name, path) in &o.docs {
        if server.store().get(name).is_some() {
            eprintln!("xust-serve: '{name}' recovered from the WAL; skipping --doc seed {path}");
            continue;
        }
        // Documents small enough to parse eagerly are shared in memory;
        // callers opting into streaming keep them file-backed.
        if o.stream {
            server
                .load_doc_file(name, path)
                .map_err(|e| e.to_string())?;
        } else {
            let doc = Document::parse_file(path).map_err(|e| format!("{path}: {e}"))?;
            server
                .try_load_doc(name.as_str(), doc)
                .map_err(|e| e.to_string())?;
        }
    }
    for (name, query) in &o.views {
        server
            .register_view(name, query)
            .map_err(|e| e.to_string())?;
        // Registration-time analysis already ran; a dead view is almost
        // certainly a typo in the query — serve it (as the identity
        // transform) but tell the operator now, not at request time.
        if let Ok(a) = server.analyze(name) {
            if a.dead {
                eprintln!(
                    "xust-serve: warning: view '{name}' is statically dead \
                     (no rule can ever select a node; it serves the base document)"
                );
            }
        }
    }
    if o.stdio || o.port.is_none() {
        // The pipelined loop's reader runs on its own thread, so it
        // needs an owned (Send) handle — `StdinLock` is not one.
        let stdin = std::io::BufReader::new(std::io::stdin());
        let stdout = std::io::stdout().lock();
        serve_connection(&server, stdin, stdout).map_err(|e| e.to_string())?;
        return Ok(());
    }
    let port = o.port.expect("checked above");
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    eprintln!(
        "xust-serve listening on 127.0.0.1:{port} (docs: {}, views: {})",
        server.doc_names().join(","),
        server.view_names().join(",")
    );
    for conn in listener.incoming() {
        // A failed accept (ECONNABORTED, EMFILE, …) affects one client;
        // the daemon and its other connections must survive it.
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xust-serve: accept failed: {e}");
                continue;
            }
        };
        // Nagle + delayed-ACK adds avoidable latency to every small
        // request/reply round trip; replies are already batched through
        // a buffered writer, so there is nothing for Nagle to save.
        if let Err(e) = stream.set_nodelay(true) {
            eprintln!("xust-serve: set_nodelay failed: {e}");
        }
        let server = server.clone();
        std::thread::spawn(move || {
            let reader = std::io::BufReader::new(match stream.try_clone() {
                Ok(s) => s,
                Err(e) => {
                    // Like a failed accept this costs one client, and
                    // it must be just as visible: a log line for the
                    // operator plus the `conn` error counter METRICS
                    // exports.
                    eprintln!("xust-serve: connection setup failed: {e}");
                    server.record_conn_failure();
                    return;
                }
            });
            let _ = serve_connection(&server, reader, stream);
        });
    }
    Ok(())
}

/// Drives one client connection of the line protocol (see `USAGE`).
/// Returns when the client sends `QUIT` or closes the stream.
///
/// This is a thin front over [`serve_pipelined`]: a reader thread
/// decodes (length-capped) request lines continuously, consecutive
/// read-only requests ride the batch executor as one grouped batch,
/// and replies come back strictly in request order through a buffered
/// writer — see the `xust_serve::pipeline` module docs for the exact
/// pipelining and barrier semantics.
fn serve_connection(
    server: &Server,
    reader: impl BufRead + Send,
    writer: impl Write,
) -> std::io::Result<()> {
    serve_pipelined(server, reader, writer, &PipelineOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_flags() {
        let o = Opts::parse(&s(&[
            "-q", "qtext", "-i", "in.xml", "-o", "out.xml", "--method", "stream",
        ]))
        .unwrap();
        assert_eq!(o.query.as_deref(), Some("qtext"));
        assert_eq!(o.input.as_deref(), Some("in.xml"));
        assert_eq!(o.output.as_deref(), Some("out.xml"));
        assert_eq!(o.method.as_deref(), Some("stream"));
        assert!(!o.stream);
    }

    #[test]
    fn parse_stream_and_numbers() {
        let o = Opts::parse(&s(&["--stream", "--factor", "0.25", "--seed", "7"])).unwrap();
        assert!(o.stream);
        assert_eq!(o.factor, Some(0.25));
        assert_eq!(o.seed, Some(7));
    }

    #[test]
    fn parse_rejects_unknown_and_dangling() {
        assert!(Opts::parse(&s(&["--nope"])).is_err());
        assert!(Opts::parse(&s(&["-q"])).is_err());
        assert!(Opts::parse(&s(&["--factor", "abc"])).is_err());
    }

    #[test]
    fn at_file_loading() {
        let p = std::env::temp_dir().join("xust_cli_q.txt");
        std::fs::write(&p, "query from file").unwrap();
        let loaded = load_arg(&format!("@{}", p.display())).unwrap();
        assert_eq!(loaded, "query from file");
        assert!(load_arg("@/no/such/file").is_err());
        assert_eq!(load_arg("inline").unwrap(), "inline");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn parse_serve_flags() {
        let o = Opts::parse(&s(&[
            "--doc",
            "db=catalog.xml",
            "--doc",
            "aux=other.xml",
            "--view",
            "public=inline query",
            "--port",
            "7878",
            "--threads",
            "8",
            "--shards",
            "16",
            "--stats",
            "--stdio",
        ]))
        .unwrap();
        assert_eq!(o.docs.len(), 2);
        assert_eq!(o.docs[0], ("db".into(), "catalog.xml".into()));
        assert_eq!(o.views, vec![("public".into(), "inline query".into())]);
        assert_eq!(o.port, Some(7878));
        assert_eq!(o.threads, Some(8));
        assert_eq!(o.shards, Some(16));
        assert!(o.stats && o.stdio);
        assert!(Opts::parse(&s(&["--doc", "nosign"])).is_err());
        assert!(Opts::parse(&s(&["--view", "=empty"])).is_err());
    }

    #[test]
    fn parse_wal_flags() {
        let o = Opts::parse(&s(&["--wal", "/tmp/x.wal"])).unwrap();
        assert_eq!(o.wal.as_deref(), Some("/tmp/x.wal"));
        assert!(!o.no_wal);
        let o = Opts::parse(&s(&["--wal", "/tmp/x.wal", "--no-wal"])).unwrap();
        assert!(o.no_wal);
        assert!(Opts::parse(&s(&["--wal"])).is_err(), "--wal needs a value");
    }

    #[test]
    fn parse_observability_flags() {
        let o = Opts::parse(&s(&["--stats-json", "--no-trace"])).unwrap();
        assert!(o.stats_json);
        assert!(o.no_trace);
        let o = Opts::parse(&s(&["--stats"])).unwrap();
        assert!(!o.stats_json && !o.no_trace);
    }

    #[test]
    fn metrics_trace_explain_protocol_verbs() {
        use std::io::Cursor;
        let server = Server::builder().threads(2).build();
        server
            .load_doc_str("db", "<db><part><price>9</price><n>kb</n></part></db>")
            .unwrap();
        server
            .register_view(
                "public",
                r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            )
            .unwrap();
        let input = concat!(
            "VIEW public db\n",
            "VIEW missing db\n",
            "METRICS\n",
            "TRACE\n",
            "TRACE 2\n",
            "TRACE notanumber\n",
            "EXPLAIN public db\n",
            "EXPLAIN public nosuchdoc\n",
            "EXPLAIN public\n",
            "ANALYZE public\n",
            "ANALYZE missing\n",
            "ANALYZE\n",
            "QUIT\n",
        );
        let mut out = Vec::new();
        serve_connection(&server, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // METRICS: Prometheus-style lines with per-verb counters.
        assert!(
            text.contains("xust_verb_requests_total{verb=\"view\"} 2"),
            "verb counter missing: {text}"
        );
        assert!(text.contains("xust_verb_errors_total{verb=\"view\"} 1"));
        assert!(text.contains("# TYPE xust_latency_micros summary"));
        assert!(text.contains("scope=\"verb\",key=\"view\""));
        // TRACE: per-request phase breakdowns, newest first.
        assert!(text.contains("traced="), "trace header missing: {text}");
        assert!(text.contains("view public/db"));
        assert!(text.contains("ERR TRACE [n]"));
        // EXPLAIN: a per-link plan without executing anything.
        assert!(
            text.contains("explain view=public doc=db"),
            "explain missing: {text}"
        );
        assert!(text.contains("link 0: method="));
        assert!(text.contains("ERR unknown document 'nosuchdoc'"));
        assert!(text.contains("ERR EXPLAIN <view> <doc>"));
        // ANALYZE: the registration-time static-analysis report.
        assert!(
            text.contains("analyze view=public doc=db dead=false rules=1"),
            "analyze missing: {text}"
        );
        assert!(text.contains("footprint: structural="));
        assert!(text.contains("family: key=public"));
        assert!(text.contains("ERR unknown view 'missing'"));
        assert!(text.contains("ERR ANALYZE <view>"));
    }

    #[test]
    fn serve_connection_protocol() {
        use std::io::Cursor;
        let server = Server::builder().threads(2).build();
        server
            .load_doc_str("db", "<db><part><price>9</price><n>kb</n></part></db>")
            .unwrap();
        server
            .register_view(
                "public",
                r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            )
            .unwrap();
        let input = concat!(
            "LIST\n",
            "VIEW public db\n",
            "QUERY public db <out>{ for $x in doc(\"db\")/db/part return $x }</out>\n",
            "TRANSFORM db transform copy $a := doc(\"db\") modify do rename $a/db/part as item return $a\n",
            "VIEW missing db\n",
            "STATS\n",
            "nonsense\n",
            "QUIT\n",
            "VIEW public db\n", // after QUIT: never processed
        );
        let mut out = Vec::new();
        serve_connection(&server, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("OK "), "LIST: {}", lines[0]);
        assert!(lines[1].contains("docs: db"));
        let body = "<db><part><n>kb</n></part></db>";
        assert_eq!(lines[3], format!("OK {}", body.len()));
        assert_eq!(lines[4], body);
        assert_eq!(lines[6], "<out><part><n>kb</n></part></out>");
        assert!(text.contains("<item>"));
        assert!(text.contains("ERR unknown view 'missing'"));
        assert!(text.contains("cache: hits="));
        assert!(text.contains("ERR unknown verb 'nonsense'"));
        // QUIT stopped the loop: exactly one successful VIEW of 'public'.
        assert_eq!(text.matches(&format!("OK {}", body.len())).count(), 1);
    }

    #[test]
    fn update_protocol_verb_writes_and_serves_maintained_views() {
        use std::io::Cursor;
        let server = Server::builder().threads(2).build();
        server
            .load_doc_str(
                "db",
                "<db><part><price>9</price><n>kb</n></part><aux><k/></aux></db>",
            )
            .unwrap();
        server
            .register_view(
                "public",
                r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            )
            .unwrap();
        let input = concat!(
            "VIEW public db\n", // warm the result cache
            "UPDATE db transform copy $a := doc(\"db\") modify do insert <spare/> into $a//k return $a\n",
            "VIEW public db\n", // served from the maintained entry
            "UPDATE db garbage\n",
            "UPDATE db transform copy $a := doc(\"other\") modify do delete $a//k return $a\n",
            "UPDATE nosuchdoc transform copy $a := doc(\"nosuchdoc\") modify do delete $a//k return $a\n",
            "STATS\n",
            "QUIT\n",
        );
        let mut out = Vec::new();
        serve_connection(&server, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("updated db epoch=2 version=2 targets=1 retained=1 recomputed=0"),
            "UPDATE report missing: {text}"
        );
        // The post-update view reflects the write and still hides price.
        assert!(text.contains("<db><part><n>kb</n></part><aux><k><spare/></k></aux></db>"));
        assert!(text.contains("ERR parse error"));
        assert!(text.contains("ERR unknown document 'nosuchdoc'"));
        assert!(text.contains("delta_retained=1"));
        // The write is durable: the stored doc itself changed.
        assert_eq!(server.store().epochs().iter().sum::<u64>(), 2);
    }

    #[test]
    fn load_and_remove_protocol_verbs_purge_exactly_one_doc() {
        use std::io::Cursor;
        let dir = std::env::temp_dir();
        let path = dir.join("xust_cli_load_verb.xml");
        std::fs::write(&path, "<db><part><k/></part></db>").unwrap();
        let server = Server::builder().threads(2).shards(1).build();
        server
            .load_doc_str("a", "<db><part><price>1</price></part></db>")
            .unwrap();
        server
            .load_doc_str("b", "<db><part><price>2</price></part></db>")
            .unwrap();
        server
            .register_view(
                "public",
                r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            )
            .unwrap();
        // Warm both docs' cached results, then reload A and remove it;
        // B's entry must survive both (same store shard — shards=1).
        let input = concat!(
            "VIEW public a\n",
            "VIEW public b\n",
            "LOAD a ", // path appended below
        );
        let input = format!(
            "{input}{}\nVIEW public a\nVIEW public b\nREMOVE a\nVIEW public a\nREMOVE a\nVIEW public b\nQUIT\n",
            path.display()
        );
        let hits_before = server.stats().result_hits;
        let mut out = Vec::new();
        serve_connection(&server, Cursor::new(input.as_str()), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("loaded a version="), "LOAD reply: {text}");
        // The reload really replaced a's content (no stale cache serve).
        assert!(text.contains("<db><part><k/></part></db>"));
        assert!(text.contains("removed a"));
        assert!(text.contains("ERR unknown document 'a'"));
        // B's post-warm reads are both cache hits — the reload and
        // removal of A never touched B's entries.
        assert_eq!(server.stats().result_hits, hits_before + 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exec_end_to_end() {
        let dir = std::env::temp_dir();
        let input = dir.join("xust_cli_exec_in.xml");
        let output = dir.join("xust_cli_exec_out.xml");
        std::fs::write(&input, "<db><part><price>9</price><n>kb</n></part></db>").unwrap();
        run(&s(&[
            "exec",
            "-q",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
            "--stats",
            "--stats-json",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&output).unwrap(),
            "<db><part><n>kb</n></part></db>"
        );
        // Streaming variant produces the same bytes.
        run(&s(&[
            "exec",
            "--stream",
            "-q",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&output).unwrap(),
            "<db><part><n>kb</n></part></db>"
        );
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn stream_subcommand_end_to_end() {
        let dir = std::env::temp_dir();
        let input = dir.join("xust_cli_stream_in.xml");
        let output = dir.join("xust_cli_stream_out.xml");
        std::fs::write(&input, "<db><part><price>9</price><n>kb</n></part></db>").unwrap();
        run(&s(&[
            "stream",
            "-q",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
            "--stats-json",
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&output).unwrap(),
            "<db><part><n>kb</n></part></db>"
        );
        // Malformed input surfaces as an error, not a panic.
        std::fs::write(&input, "<db><part>").unwrap();
        assert!(run(&s(&[
            "stream",
            "-q",
            r#"transform copy $a := doc("db") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
        ]))
        .is_err());
        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }

    #[test]
    fn stream_protocol_verb_frames_output() {
        use std::io::Cursor;
        let dir = std::env::temp_dir();
        let path = dir.join("xust_cli_stream_verb.xml");
        std::fs::write(&path, "<db><part><price>9</price><n>kb</n></part></db>").unwrap();
        let server = Server::builder().threads(2).build();
        server.load_doc_file("disk", &path).unwrap();
        server
            .load_doc_str("mem", "<db><part><price>9</price></part></db>")
            .unwrap();
        let input = concat!(
            "STREAM disk transform copy $a := doc(\"db\") modify do delete $a//price return $a\n",
            "STREAM mem transform copy $a := doc(\"db\") modify do delete $a//price return $a\n",
            "STREAM disk garbage query\n",
            "QUIT\n"
        );
        let mut out = Vec::new();
        serve_connection(&server, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // Frames arrive, reassemble to the transformed document.
        let mut body = String::new();
        let mut lines = text.lines();
        let mut done = None;
        while let Some(line) = lines.next() {
            if let Some(n) = line.strip_prefix("OUT ") {
                let n: usize = n.parse().unwrap();
                let payload = lines.next().unwrap();
                assert_eq!(payload.len(), n);
                body.push_str(payload);
            } else if let Some(total) = line.strip_prefix("DONE ") {
                done = Some(total.parse::<usize>().unwrap());
                break;
            }
        }
        assert_eq!(body, "<db><part><n>kb</n></part></db>");
        assert_eq!(done, Some(body.len()));
        // In-memory docs and bad queries degrade to ERR, connection alive.
        assert!(text.contains("ERR STREAM needs a file-backed document"));
        assert!(text.contains("ERR parse error"));
        assert_eq!(server.store().active_snapshots(), 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn any_transform_routing() {
        let single = parse_any_transform(
            r#"transform copy $a := doc("d") modify do delete $a//x return $a"#,
        )
        .unwrap();
        assert!(matches!(single, AnyTransform::Single(_)));
        let multi = parse_any_transform(
            r#"transform copy $a := doc("d") modify do (delete $a//x, delete $a//y) return $a"#,
        )
        .unwrap();
        assert!(matches!(multi, AnyTransform::Multi(_)));
        assert!(parse_any_transform("garbage").is_err());
    }

    #[test]
    fn end_to_end_transform_and_compose() {
        let dir = std::env::temp_dir();
        let input = dir.join("xust_cli_in.xml");
        let output = dir.join("xust_cli_out.xml");
        std::fs::write(&input, "<db><part><price>9</price><n>kb</n></part></db>").unwrap();

        // transform, DOM method, file→file
        run(&s(&[
            "transform",
            "-q",
            r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ]))
        .unwrap();
        let got = std::fs::read_to_string(&output).unwrap();
        assert_eq!(got, "<db><part><n>kb</n></part></db>");

        // same through the streaming path
        run(&s(&[
            "transform",
            "--method",
            "stream",
            "-q",
            r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(std::fs::read_to_string(&output).unwrap(), got);

        // composition
        run(&s(&[
            "compose",
            "-q",
            r#"transform copy $a := doc("d") modify do delete $a//price return $a"#,
            "-u",
            r#"<out>{ for $x in doc("d")/db/part return $x }</out>"#,
            "-i",
            input.to_str().unwrap(),
            "-o",
            output.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&output).unwrap(),
            "<out><part><n>kb</n></part></out>"
        );

        // validate
        run(&s(&["validate", "-i", input.to_str().unwrap()])).unwrap();

        std::fs::remove_file(&input).ok();
        std::fs::remove_file(&output).ok();
    }
}
