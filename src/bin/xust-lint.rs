//! `xust-lint` — offline, token-level concurrency-hygiene lint for this
//! workspace. No external dependencies, no type information: the rules
//! are deliberately textual so the lint stays fast, deterministic, and
//! runnable as a bare CI gate (`cargo run --bin xust-lint`).
//!
//! Rules:
//!
//! 1. **relaxed-rationale** (workspace): every use of the `Relaxed`
//!    memory ordering must carry a `// relaxed: <why>` comment on the
//!    same line or within the two lines above. Relaxed is correct for
//!    monotone counters and staleness-tolerant reads — but only the
//!    author knows which one a given site is, and the rationale is the
//!    review artifact. Import lines (`use …::Ordering::Relaxed`) don't
//!    count as uses.
//! 2. **serve-lock-nesting** (`crates/serve/src`): no `.lock()` /
//!    `.write()` acquisition textually inside the scope of an earlier
//!    guard binding in the same function body, unless the line carries
//!    a `// lock-order: <outer → inner>` annotation naming the
//!    intended order. The serving crate's deadlock-freedom argument is
//!    "no thread holds two of our locks at once"; the annotation marks
//!    the audited exceptions (the store→viewcache outer→inner order on
//!    the write path).
//! 3. **atomic-imports** (workspace): `use std::sync::atomic` is
//!    confined to `crates/serve/src/{stats,obs,executor}.rs` — the
//!    designated lock-free modules — unless the import carries
//!    `// lint: atomic-ok (<why>)`. Scattered ad-hoc atomics are how
//!    unsound orderings creep in.
//!
//! Exit status: 0 when clean, 1 with one `file:line: rule: message`
//! diagnostic per violation otherwise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = workspace_root();
    let mut violations = Vec::new();
    for file in rust_sources(&root) {
        let Ok(text) = std::fs::read_to_string(&file) else {
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(&file)
            .display()
            .to_string();
        lint_file(&rel, &text, &mut violations);
    }
    if violations.is_empty() {
        println!("xust-lint: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("xust-lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: `CARGO_MANIFEST_DIR` when cargo provides it
/// (both `cargo run` and the test harness do), else the current
/// directory.
fn workspace_root() -> PathBuf {
    std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Every `.rs` file under the workspace's source directories.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "benches"] {
        walk(&root.join(top), &mut out);
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // `target/` never appears under the walked roots; vendored
            // sources do not either (vendor/ is a sibling of crates/).
            walk(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Modules allowed to import `std::sync::atomic` without annotation.
const ATOMIC_HOMES: [&str; 3] = [
    "crates/serve/src/stats.rs",
    "crates/serve/src/obs.rs",
    "crates/serve/src/executor.rs",
];

fn lint_file(rel: &str, text: &str, out: &mut Vec<String>) {
    let raw: Vec<&str> = text.lines().collect();
    let code = strip_comments_and_strings(text);
    let stripped: Vec<&str> = code.lines().collect();
    check_relaxed(rel, &raw, &stripped, out);
    check_atomic_imports(rel, &raw, &stripped, out);
    if rel.starts_with("crates/serve/src/") {
        check_lock_nesting(rel, &raw, &stripped, out);
    }
}

/// Rule 1: `Relaxed` uses need a nearby `// relaxed:` rationale.
fn check_relaxed(rel: &str, raw: &[&str], stripped: &[&str], out: &mut Vec<String>) {
    for (i, line) in stripped.iter().enumerate() {
        if !has_word(line, "Relaxed") {
            continue;
        }
        // Imports bring the name in; they are not ordering decisions.
        if line.trim_start().starts_with("use ") || line.trim_start().starts_with("pub use ") {
            continue;
        }
        let annotated = (i.saturating_sub(2)..=i).any(|j| raw[j].contains("// relaxed:"));
        if !annotated {
            out.push(format!(
                "{rel}:{}: relaxed-rationale: `Relaxed` ordering without a \
                 `// relaxed: <why>` comment on this line or the two above",
                i + 1
            ));
        }
    }
}

/// Rule 3: atomic imports live in the designated modules.
fn check_atomic_imports(rel: &str, raw: &[&str], stripped: &[&str], out: &mut Vec<String>) {
    if ATOMIC_HOMES.contains(&rel) {
        return;
    }
    for (i, line) in stripped.iter().enumerate() {
        let t = line.trim_start();
        let is_import = (t.starts_with("use ") || t.starts_with("pub use "))
            && line.contains("std::sync::atomic");
        if is_import && !raw[i].contains("// lint: atomic-ok") {
            out.push(format!(
                "{rel}:{}: atomic-imports: `std::sync::atomic` import outside \
                 stats.rs/obs.rs/executor.rs without `// lint: atomic-ok (<why>)`",
                i + 1
            ));
        }
    }
}

/// Rule 2: in `crates/serve`, no `.lock()`/`.write()` acquisition
/// textually inside another guard's scope, unless annotated with
/// `// lock-order:`.
///
/// A *guard binding* is a line that binds the result of `.lock()`,
/// `.write()`, or `.read()` with `let`. Its scope is the enclosing
/// block for a plain `let` statement, or the block the line itself
/// opens for `if let` / `while let` forms (the guard temporary dies
/// with the statement). This is a textual over-approximation — that is
/// the point: nesting that *looks* risky should either be restructured
/// or carry the audited-order annotation.
fn check_lock_nesting(rel: &str, raw: &[&str], stripped: &[&str], out: &mut Vec<String>) {
    let mut depth: i32 = 0;
    // (scope depth the guard lives at, line it was bound on)
    let mut guards: Vec<(i32, usize)> = Vec::new();
    for (i, line) in stripped.iter().enumerate() {
        let acquires = line.contains(".lock(") || line.contains(".write(");
        let binds = (line.contains("let ") || line.contains("for "))
            && (acquires || line.contains(".read("));
        let lock_ann = (i.saturating_sub(2)..=i).any(|j| raw[j].contains("// lock-order:"));
        if acquires && !binds && !guards.is_empty() && !lock_ann {
            let (_, outer) = guards[guards.len() - 1];
            out.push(format!(
                "{rel}:{}: serve-lock-nesting: acquisition inside the guard scope \
                 opened at line {} without a `// lock-order:` annotation",
                i + 1,
                outer + 1
            ));
        }
        if acquires && binds && !guards.is_empty() && !lock_ann {
            let (_, outer) = guards[guards.len() - 1];
            out.push(format!(
                "{rel}:{}: serve-lock-nesting: guard bound inside the guard scope \
                 opened at line {} without a `// lock-order:` annotation",
                i + 1,
                outer + 1
            ));
        }
        let before = depth;
        for c in line.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if binds {
            // `if let` / `while let` guards die with the block the line
            // opens; a plain `let` guard lives in the enclosing block.
            let scope = if depth > before { depth } else { before };
            guards.push((scope, i));
        }
        guards.retain(|&(scope, _)| depth >= scope);
    }
}

/// True when `word` appears as a standalone identifier token in `line`.
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let end = at + word.len();
        let pre_ok = at == 0 || !is_ident_char(bytes[at - 1]);
        let post_ok = end == bytes.len() || !is_ident_char(bytes[end]);
        if pre_ok && post_ok {
            return true;
        }
        start = end;
    }
    false
}

fn is_ident_char(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comments and string/char-literal contents with spaces,
/// preserving line structure, so the token scans above never match
/// inside prose or literals. Handles `//` line comments, nested `/* */`
/// block comments, plain and `r#"…"#` raw strings, and escapes. Not a
/// full lexer — lifetimes (`'a`) are distinguished from char literals
/// by the closing-quote heuristic, which is enough for this codebase.
fn strip_comments_and_strings(text: &str) -> String {
    let b = text.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            // Line comment: blank to end of line.
            while i < n && b[i] != b'\n' {
                out.push(b' ');
                i += 1;
            }
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut level = 1;
            out.extend_from_slice(b"  ");
            i += 2;
            while i < n && level > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    level += 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    level -= 1;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        } else if c == b'r' && i + 1 < n && (b[i + 1] == b'"' || b[i + 1] == b'#') {
            // Raw string r"…" / r#"…"# / r##"…"##.
            let mut j = i + 1;
            let mut hashes = 0;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < n && b[j] == b'"' {
                out.extend(std::iter::repeat_n(b' ', j - i + 1));
                i = j + 1;
                'raw: while i < n {
                    if b[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < n && seen < hashes && b[k] == b'#' {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out.extend(std::iter::repeat_n(b' ', k - i));
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            } else {
                out.push(c);
                i += 1;
            }
        } else if c == b'"' {
            out.push(b' ');
            i += 1;
            while i < n && b[i] != b'"' {
                if b[i] == b'\\' && i + 1 < n {
                    // A backslash-newline continuation must keep its
                    // newline, or every later line number drifts.
                    out.push(b' ');
                    out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else {
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            if i < n {
                out.push(b' ');
                i += 1;
            }
        } else if c == b'\'' {
            // Char literal vs lifetime: a literal closes within a few
            // bytes ('x', '\n', '\u{…}'); a lifetime has no closing '.
            let close = (i + 1..n.min(i + 12)).find(|&k| b[k] == b'\'' && b[k - 1] != b'\\');
            match close {
                Some(k) if k > i + 1 => {
                    for &byte in &b[i..=k] {
                        out.push(if byte == b'\n' { b'\n' } else { b' ' });
                    }
                    i = k + 1;
                }
                _ => {
                    out.push(c);
                    i += 1;
                }
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripping_preserves_lines_and_blanks_prose() {
        let src =
            "let x = 1; // Relaxed in prose\nlet s = \"Relaxed\";\n/* Relaxed */ let y = 2;\n";
        let out = strip_comments_and_strings(src);
        assert_eq!(out.lines().count(), src.lines().count());
        assert!(!out.contains("Relaxed"));
        assert!(out.contains("let y = 2;"));
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let q = r#\"Ordering::Relaxed\"#; let c = 'R'; let l: &'static str = \"x\";";
        let out = strip_comments_and_strings(src);
        assert!(!out.contains("Relaxed"));
        assert!(out.contains("&'static str"), "{out}");
    }

    #[test]
    fn relaxed_rule_accepts_nearby_rationale_and_imports() {
        let mut v = Vec::new();
        let ok = "use std::sync::atomic::Ordering::Relaxed;\n\
                  // relaxed: monotone counter\n\
                  c.fetch_add(1, Relaxed);\n\
                  c.fetch_add(1, Relaxed); // relaxed: same\n";
        let raw: Vec<&str> = ok.lines().collect();
        let code = strip_comments_and_strings(ok);
        let stripped: Vec<&str> = code.lines().collect();
        check_relaxed("f.rs", &raw, &stripped, &mut v);
        assert!(v.is_empty(), "{v:?}");
        let bad = "c.load(Ordering::Relaxed);\n";
        let raw: Vec<&str> = bad.lines().collect();
        let code = strip_comments_and_strings(bad);
        let stripped: Vec<&str> = code.lines().collect();
        check_relaxed("f.rs", &raw, &stripped, &mut v);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("relaxed-rationale"));
    }

    #[test]
    fn atomic_import_rule_honors_homes_and_annotations() {
        let src = "use std::sync::atomic::AtomicU64;\n";
        let raw: Vec<&str> = src.lines().collect();
        let code = strip_comments_and_strings(src);
        let stripped: Vec<&str> = code.lines().collect();
        let mut v = Vec::new();
        check_atomic_imports("crates/serve/src/stats.rs", &raw, &stripped, &mut v);
        assert!(v.is_empty());
        check_atomic_imports("crates/serve/src/server.rs", &raw, &stripped, &mut v);
        assert_eq!(v.len(), 1);
        let ann = "use std::sync::atomic::AtomicU64; // lint: atomic-ok (test)\n";
        let raw: Vec<&str> = ann.lines().collect();
        let code = strip_comments_and_strings(ann);
        let stripped: Vec<&str> = code.lines().collect();
        let mut v = Vec::new();
        check_atomic_imports("crates/serve/src/server.rs", &raw, &stripped, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn lock_nesting_flags_inner_acquisition_but_not_sequential() {
        let nested =
            "fn f() {\n    let g = a.lock().unwrap();\n    let h = b.write().unwrap();\n}\n";
        let raw: Vec<&str> = nested.lines().collect();
        let code = strip_comments_and_strings(nested);
        let stripped: Vec<&str> = code.lines().collect();
        let mut v = Vec::new();
        check_lock_nesting("crates/serve/src/x.rs", &raw, &stripped, &mut v);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("serve-lock-nesting"));

        // An `if let` read guard dies with its block: the later write
        // is sequential, not nested.
        let seq = "fn f() {\n    if let Some(x) = m.read().unwrap().get(k) {\n        return x;\n    }\n    let mut w = m.write().unwrap();\n}\n";
        let raw: Vec<&str> = seq.lines().collect();
        let code = strip_comments_and_strings(seq);
        let stripped: Vec<&str> = code.lines().collect();
        let mut v = Vec::new();
        check_lock_nesting("crates/serve/src/x.rs", &raw, &stripped, &mut v);
        assert!(v.is_empty(), "{v:?}");

        // The annotation is the audited escape hatch.
        let ann = "fn f() {\n    let g = a.lock().unwrap();\n    let h = b.lock().unwrap(); // lock-order: a → b\n}\n";
        let raw: Vec<&str> = ann.lines().collect();
        let code = strip_comments_and_strings(ann);
        let stripped: Vec<&str> = code.lines().collect();
        let mut v = Vec::new();
        check_lock_nesting("crates/serve/src/x.rs", &raw, &stripped, &mut v);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn word_boundaries_matter() {
        assert!(has_word("load(Relaxed)", "Relaxed"));
        assert!(!has_word("RelaxedFoo", "Relaxed"));
        assert!(!has_word("NotRelaxed", "Relaxed"));
    }
}
