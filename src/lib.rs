#![warn(missing_docs)]
//! `xust` — facade crate for the *Querying XML with Update Syntax*
//! (SIGMOD 2007) reproduction.
//!
//! Re-exports the public API of every workspace crate so examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use xust_analyze as analyze;
pub use xust_automata as automata;
pub use xust_compose as compose;
pub use xust_core as core;
pub use xust_sax as sax;
pub use xust_secview as secview;
pub use xust_serve as serve;
pub use xust_tree as tree;
pub use xust_xmark as xmark;
pub use xust_xpath as xpath;
pub use xust_xquery as xquery;
